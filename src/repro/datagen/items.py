"""A synthetic store-item catalogue (books, CDs, DVDs).

Section VI extends the customer relation with "information about items
bought by different customers ... such as books, CDs and DVDs, from online
stores".  As with the geography data, the scraped catalogue is unavailable;
this module synthesises a deterministic one with the properties the
workload needs:

* three item types (``book``, ``cd``, ``dvd``), so an eCFD can restrict the
  admissible type set (a natural disjunction pattern);
* titles unique within a type and disjoint across types, so
  ``ITEM_TITLE -> ITEM_TYPE`` is a reasonable embedded FD;
* a deterministic price per title drawn from a type-specific band, so
  ``ITEM_TYPE -> price band`` constraints can be expressed with value-set
  patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ItemRecord", "ITEM_TYPES", "item_catalog", "titles_by_type", "price_band"]

#: The admissible item types, used by the workload's disjunction patterns.
ITEM_TYPES: tuple[str, ...] = ("book", "cd", "dvd")

#: Price bands per item type (whole-dollar strings; the data is string-typed).
_PRICE_BANDS: dict[str, tuple[int, int]] = {
    "book": (8, 40),
    "cd": (5, 25),
    "dvd": (10, 35),
}

_TITLE_HEADS = [
    "Midnight", "Silent", "Golden", "Broken", "Hidden", "Electric", "Distant",
    "Crimson", "Forgotten", "Wandering", "Silver", "Burning",
]
_TITLE_TAILS = [
    "Garden", "River", "Sky", "Mirror", "Road", "Harbor", "Letters", "Echo",
    "Winter", "Voyage", "Signal", "Orchard",
]


@dataclass(frozen=True)
class ItemRecord:
    """One catalogue item: its type, title and (string) price."""

    item_type: str
    title: str
    price: str


def price_band(item_type: str) -> tuple[int, int]:
    """The inclusive (low, high) whole-dollar price band of an item type."""
    return _PRICE_BANDS[item_type]


def item_catalog(per_type: int = 100) -> list[ItemRecord]:
    """A deterministic catalogue with ``per_type`` items of each type."""
    records: list[ItemRecord] = []
    for type_index, item_type in enumerate(ITEM_TYPES):
        low, high = _PRICE_BANDS[item_type]
        span = high - low
        for index in range(per_type):
            head = _TITLE_HEADS[index % len(_TITLE_HEADS)]
            tail = _TITLE_TAILS[(index // len(_TITLE_HEADS)) % len(_TITLE_TAILS)]
            serial = index // (len(_TITLE_HEADS) * len(_TITLE_TAILS))
            suffix = "" if serial == 0 else f" {serial + 1}"
            title = f"{head} {tail}{suffix} ({item_type})"
            price = str(low + (index * 7 + type_index * 3) % (span + 1))
            records.append(ItemRecord(item_type, title, price))
    return records


def titles_by_type(catalog: list[ItemRecord] | None = None) -> dict[str, list[str]]:
    """Mapping ``item type -> titles`` for a catalogue."""
    records = catalog if catalog is not None else item_catalog()
    result: dict[str, list[str]] = {item_type: [] for item_type in ITEM_TYPES}
    for record in records:
        result[record.item_type].append(record.title)
    return result
