"""Renders and generated markdown must be byte-identical across runs.

This is the property the docs staleness check stands on: regenerating
from the same committed inputs must reproduce the committed bytes on any
machine, so nothing here may depend on time, dict iteration accidents or
float repr noise.
"""

from repro.reports import (
    ReportContext,
    figure_markdown,
    markdown_table,
    render_svg,
    resolve_figure,
    select_figures,
    trajectory_table,
)
from repro.reports.markdown import extract_block, fmt_number, inject_block


def _context(bench_dir):
    return ReportContext.load(bench_dirs=[bench_dir])


def test_svg_render_is_byte_identical_across_two_loads(bench_dir):
    spec = resolve_figure("fig8")
    first = [render_svg(f) for f in spec.generator(_context(bench_dir))]
    second = [render_svg(f) for f in spec.generator(_context(bench_dir))]
    assert first == second
    assert all(svg.startswith("<svg") for svg in first)
    assert all(svg.endswith("\n") for svg in first)


def test_all_figures_render_deterministically(bench_dir):
    def render_all():
        ctx = _context(bench_dir)
        out = {}
        for spec in select_figures(["paper", "growth", "trajectory"]):
            try:
                for figure in spec.generator(ctx):
                    out[figure.name] = render_svg(figure)
            except Exception:  # noqa: BLE001 - synthetic artifacts don't feed every figure
                continue
        return out

    first, second = render_all(), render_all()
    assert first == second
    assert "fig8_parallel_scaling" in first
    assert "perf_trajectory" in first


def test_trajectory_markdown_is_byte_identical(bench_dir):
    def table():
        ctx = _context(bench_dir)
        headers, rows = trajectory_table(ctx.runs)
        return markdown_table(headers, rows)

    first, second = table(), table()
    assert first == second
    assert "`aaaaaaa`" in first and "`bbbbbbb`" in first


def test_figure_markdown_is_stable(bench_dir):
    ctx = _context(bench_dir)
    figure = resolve_figure("fig8").generator(ctx)[0]
    assert figure_markdown(figure) == figure_markdown(figure)


def test_fmt_number_has_no_repr_noise():
    assert fmt_number(1000) == "1000"
    assert fmt_number(1000.0) == "1000"
    assert fmt_number(0.1 + 0.2) == "0.3"
    assert fmt_number(1.23456, 2) == "1.23"


def test_inject_then_extract_roundtrip():
    doc = "before\n<!-- generated: x -->\nold\n<!-- /generated: x -->\nafter\n"
    updated = inject_block(doc, "x", "| a |\n|---|\n| 1 |")
    assert extract_block(updated, "x").strip() == "| a |\n|---|\n| 1 |"
    assert inject_block(updated, "x", "| a |\n|---|\n| 1 |") == updated  # idempotent
