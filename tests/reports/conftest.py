from pathlib import Path

import pytest

from synthetic_artifacts import SHA_NEW, SHA_OLD, write_artifact


@pytest.fixture
def bench_dir(tmp_path: Path) -> Path:
    """Two commits of synthetic artifacts (enough for a trajectory)."""
    directory = tmp_path / "artifacts"
    write_artifact(directory, SHA_OLD, "2026-01-01T00:00:00+00:00")
    write_artifact(directory, SHA_NEW, "2026-02-01T00:00:00+00:00")
    return directory
