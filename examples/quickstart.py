"""Quickstart: the paper's running example (Fig. 1 and Fig. 2), end to end.

Builds the ``cust`` relation instance D0 of Fig. 1, expresses the two eCFDs
ψ1 / ψ2 of Fig. 2 in the textual syntax, and detects the violations both
with the pure-Python reference semantics and with the SQL-based BATCHDETECT
algorithm running on SQLite.

Run with::

    python examples/quickstart.py
"""

from repro import Relation, cust_schema, parse_ecfd
from repro.core import ECFDSet
from repro.detection import BatchDetector, ECFDDatabase, NaiveDetector

#: The six tuples of Fig. 1 (t1 .. t6).
FIG1_ROWS = [
    {"AC": "718", "PN": "1111111", "NM": "Mike", "STR": "Tree Ave.", "CT": "Albany", "ZIP": "12238"},
    {"AC": "518", "PN": "2222222", "NM": "Joe", "STR": "Elm Str.", "CT": "Colonie", "ZIP": "12205"},
    {"AC": "518", "PN": "2222222", "NM": "Jim", "STR": "Oak Ave.", "CT": "Troy", "ZIP": "12181"},
    {"AC": "100", "PN": "1111111", "NM": "Rick", "STR": "8th Ave.", "CT": "NYC", "ZIP": "10001"},
    {"AC": "212", "PN": "3333333", "NM": "Ben", "STR": "5th Ave.", "CT": "NYC", "ZIP": "10016"},
    {"AC": "646", "PN": "4444444", "NM": "Ian", "STR": "High St.", "CT": "NYC", "ZIP": "10011"},
]

#: The two eCFDs of Fig. 2 in the library's textual syntax.
PSI1 = "(cust: [CT] -> [AC], { (!{NYC, LI} || _); ({Albany, Colonie, Troy} || {518}) })"
PSI2 = "(cust: [CT] -> [] | [AC], { ({NYC} || {212, 347, 646, 718, 917}) })"


def main() -> None:
    schema = cust_schema()
    d0 = Relation(schema, FIG1_ROWS)
    sigma = ECFDSet([parse_ecfd(PSI1, schema), parse_ecfd(PSI2, schema)])

    print("Constraints:")
    for ecfd in sigma:
        print(f"  {ecfd}")

    # Reference (pure Python) semantics.
    naive = NaiveDetector(sigma).detect(d0)
    print("\nReference semantics:")
    print(f"  single-tuple violations (SV): tuples {sorted(naive.sv_tids)}")
    print(f"  multi-tuple violations  (MV): tuples {sorted(naive.mv_tids)}")

    # SQL-based BATCHDETECT on SQLite.
    with ECFDDatabase(schema) as db:
        db.load_relation(d0)
        sql = BatchDetector(db, sigma).detect()
        print("\nBATCHDETECT (SQLite):")
        print(f"  dirty tuples: {sorted(sql.violating_tids)}")
        print(f"  agrees with the reference semantics: {sql == naive}")

    print("\nAs in Example 2.2 of the paper, t1 (Albany with area code 718) and")
    print("t4 (NYC with area code 100) are the two dirty tuples.")


if __name__ == "__main__":
    main()
