"""GSAT / WalkSAT-style local search for MAXGSAT.

Local search is the workhorse approximation method for maximum
satisfiability problems.  The variant implemented here follows the standard
GSAT scheme with WalkSAT-style random walk moves (Selman, Kautz & Cohen):

1. start from a random assignment (several restarts);
2. repeatedly pick a move: with probability ``noise`` flip a random variable
   occurring in some unsatisfied expression (the random-walk move); otherwise
   flip the variable that yields the largest increase in the number of
   satisfied expressions (the greedy move, side-ways moves allowed);
3. keep the best assignment seen across all restarts and iterations.

Because the expressions are arbitrary (not clauses), the "variable occurring
in an unsatisfied expression" heuristic uses :meth:`Expression.variables`
rather than clause literals; everything else is the textbook algorithm.
The search is deterministic given ``seed``.
"""

from __future__ import annotations

import random

from repro.sat.maxgsat import MaxGSATInstance, MaxGSATResult

__all__ = ["solve_walksat"]


def solve_walksat(
    instance: MaxGSATInstance,
    max_flips: int = 400,
    restarts: int = 4,
    noise: float = 0.3,
    seed: int = 0,
) -> MaxGSATResult:
    """WalkSAT-style local search for MAXGSAT.

    Parameters
    ----------
    max_flips:
        Maximum number of variable flips per restart.
    restarts:
        Number of independent random restarts.
    noise:
        Probability of taking a random-walk move instead of a greedy move.
    seed:
        Seed for the pseudo-random generator; fixed seeds give reproducible
        results, which the experiment harness relies on.
    """
    rng = random.Random(seed)
    variables = instance.variables()
    if not variables:
        assignment: dict[str, bool] = {}
        return MaxGSATResult(assignment=assignment, satisfied=instance.satisfied_indices(assignment))

    best_assignment = {name: False for name in variables}
    best_score = instance.score(best_assignment)

    for _ in range(restarts):
        assignment = {name: rng.random() < 0.5 for name in variables}
        score = instance.score(assignment)
        if score > best_score:
            best_assignment, best_score = dict(assignment), score
        for _ in range(max_flips):
            if score == instance.size:
                break
            unsatisfied = [
                expression
                for index, expression in enumerate(instance.expressions)
                if index not in instance.satisfied_indices(assignment)
            ]
            if not unsatisfied:
                break
            if rng.random() < noise:
                target = rng.choice(unsatisfied)
                candidates = sorted(target.variables()) or variables
                flip = rng.choice(candidates)
            else:
                flip = _best_flip(instance, assignment, rng)
            assignment[flip] = not assignment[flip]
            score = instance.score(assignment)
            if score > best_score:
                best_assignment, best_score = dict(assignment), score
        if best_score == instance.size:
            break

    return MaxGSATResult(
        assignment=dict(best_assignment),
        satisfied=instance.satisfied_indices(best_assignment),
    )


def _best_flip(
    instance: MaxGSATInstance, assignment: dict[str, bool], rng: random.Random
) -> str:
    """The variable whose flip maximises the satisfied-expression count."""
    best_variables: list[str] = []
    best_score = -1
    for name in instance.variables():
        assignment[name] = not assignment[name]
        score = instance.score(assignment)
        assignment[name] = not assignment[name]
        if score > best_score:
            best_score = score
            best_variables = [name]
        elif score == best_score:
            best_variables.append(name)
    return rng.choice(best_variables)
