"""Synthetic ``BENCH_<sha>.json`` payload builders shared by the reports tests.

The payloads mimic what CI's ``perf`` job uploads: a pytest-benchmark
document with ``commit_info`` and parametrized entries carrying
``extra_info`` readings.  Everything is tiny and hand-written so the
tests exercise the loaders' tolerance policy, not the benchmark suite.
"""

from __future__ import annotations

import json
from pathlib import Path

SHA_OLD = "a" * 40
SHA_NEW = "b" * 40


def bench_entry(name: str, mean: float, extra: dict | None = None) -> dict:
    return {
        "name": name,
        "stats": {"mean": mean, "stddev": mean / 10.0, "rounds": 3,
                  "min": mean * 0.9, "max": mean * 1.1},
        "extra_info": extra or {},
    }


def make_payload(sha: str, date: str, benchmarks: list[dict]) -> dict:
    return {
        "machine_info": {"python_version": "3.11.0", "system": "Linux"},
        "commit_info": {"id": sha, "time": date},
        "datetime": date,
        "benchmarks": benchmarks,
    }


def default_benchmarks() -> list[dict]:
    """A small but figure-complete benchmark set (fig5a, fig8–fig11)."""
    entries = [
        bench_entry("test_fig5a_batchdetect_scalability_in_tuples[100]", 0.010,
                    {"tuples": 100, "dirty": 7}),
        bench_entry("test_fig5a_batchdetect_scalability_in_tuples[200]", 0.021,
                    {"tuples": 200, "dirty": 15}),
        bench_entry("test_fig10_repair_convergence[greedy]", 0.120,
                    {"strategy": "greedy", "rounds": 2, "cells_changed": 30,
                     "full_detects": 3, "tuples": 1000}),
        bench_entry("test_fig10_repair_convergence[incremental]", 0.030,
                    {"strategy": "incremental", "rounds": 2, "cells_changed": 30,
                     "full_detects": 0, "redetect_rows_avoided": 2000,
                     "tuples": 1000}),
        # A benchmark unknown to every figure: loaders must carry it
        # harmlessly, figures must never select it.
        bench_entry("test_some_future_benchmark[1]", 0.001),
    ]
    for workers, mean in ((1, 0.050), (2, 0.030), (4, 0.020)):
        entries.append(bench_entry(
            f"test_fig8_sharded_batch_detect_scaling[{workers}]", mean,
            {"workers": workers, "tuples": 1000, "replication_factor": 1.0,
             "summary_bytes": 9000, "summary_groups": 40}))
        entries.append(bench_entry(
            f"test_fig9_sharded_incremental_update[{workers}]", mean / 4.0,
            {"workers": workers, "tuples": 1000, "update_size": 20,
             "readback_tids": 18, "summary_groups_touched": 4}))
        entries.append(bench_entry(
            f"test_fig11_service_sustained_throughput[{workers}]", mean / 2.0,
            {"workers": workers, "tuples": 1000, "updates_per_second": 9000.0,
             "p99_latency_ms": 18.5, "mean_latency_ms": 6.2,
             "ships": 1, "shipped_batches": 2, "coalesced_away": 12}))
    return entries


def write_artifact(directory: Path, sha: str, date: str,
                   benchmarks: list[dict] | None = None) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{sha}.json"
    payload = make_payload(sha, date, benchmarks if benchmarks is not None
                           else default_benchmarks())
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
