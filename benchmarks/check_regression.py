#!/usr/bin/env python3
"""CI perf-regression gate over pytest-benchmark JSON output.

Usage
-----
Compare a fresh benchmark run against the committed baseline (exit 1 on a
regression beyond the tolerance)::

    python benchmarks/check_regression.py --results BENCH_<sha>.json

Regenerate the baseline after an intentional perf change (commit the file)::

    python benchmarks/check_regression.py --results BENCH_<sha>.json --update-baseline

The gate tracks designated *hot paths*, not every micro-benchmark: tiny
benchmarks drown in runner noise and would make CI flaky.  The tracked set
lives in the baseline file so it versions together with the numbers.  The
default tolerance (30% slower than baseline) can be overridden per run with
``--tolerance`` or the ``REPRO_PERF_TOLERANCE`` environment variable.

Baseline timings come from whatever machine regenerated them; keep the
tolerance generous enough to absorb runner-to-runner variance, and regenerate
the baseline from a CI artifact when the runner fleet changes materially.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

# The gate runs as a plain script in CI (no PYTHONPATH, no installed
# package); resolve the library relative to this file so the artifact
# schema is shared with the reports layer instead of duplicated here.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.reports.schema import (  # noqa: E402
    OPTIONAL_BENCHMARK_REQUIRES,
    TRACKED_BENCHMARKS as _TRACKED,
    validate_benchmark_payload,
)

#: Hot paths tracked when (re)generating a baseline.  The set (and each
#: path's description) lives in :mod:`repro.reports.schema` so the gate,
#: the trajectory report and the generated documentation tables version
#: together.
TRACKED_BENCHMARKS = tuple(_TRACKED)

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_TOLERANCE = 0.30

#: The fig8 benchmarks record the sharded backend's row-replication factor
#: in ``extra_info``; the single-pass summary-merge plan ships every stored
#: row to exactly one shard, so anything above 1.0 is a regression to the
#: old per-cluster replication and fails the gate outright (no tolerance).
REPLICATION_GATE_PREFIX = "test_fig8_sharded_batch_detect_scaling"
REPLICATION_LIMIT = 1.0

#: The fig13 cross-engine benchmarks record ``speedup_vs_sqlite`` in
#: ``extra_info``; the columnar engine must deliver at least this factor
#: over the SQLite batch path at paper scale (|D| >= SPEEDUP_MIN_TUPLES).
#: Smaller runs (correctness CI at reduced REPRO_BENCH_SIZE) report the
#: reading without gating on it — per-statement overhead dominates there.
SPEEDUP_GATE_PREFIX = "test_fig13"
SPEEDUP_LIMIT = 3.0
SPEEDUP_MIN_TUPLES = 100_000


def load_results(results_path: Path) -> dict:
    """The parsed, schema-validated pytest-benchmark JSON payload."""
    with results_path.open() as handle:
        payload = json.load(handle)
    problems = validate_benchmark_payload(payload)
    if problems:
        for problem in problems:
            print(f"schema error: {results_path}: {problem}", file=sys.stderr)
        raise SystemExit(1)
    return payload


def load_means(payload: dict) -> dict[str, float]:
    """Benchmark name -> mean seconds from a parsed pytest-benchmark payload."""
    return {
        entry["name"]: entry["stats"]["mean"]
        for entry in payload.get("benchmarks", [])
    }


def check_replication(payload: dict) -> list[str]:
    """Replication-factor failures recorded in the results' ``extra_info``.

    Every fig8 benchmark entry (the paper workload at every worker count)
    must report ``replication_factor <= 1.0``.  Absence of the field on a
    fig8 entry also fails — a silently dropped metric must not pass the
    gate it feeds.
    """
    failures = []
    checked = 0
    for entry in payload.get("benchmarks", []):
        if not entry["name"].startswith(REPLICATION_GATE_PREFIX):
            continue
        factor = entry.get("extra_info", {}).get("replication_factor")
        if factor is None:
            failures.append(
                f"{entry['name']}: replication_factor missing from extra_info"
            )
            continue
        checked += 1
        verdict = "ok" if factor <= REPLICATION_LIMIT else "REGRESSED"
        print(f"  {verdict:9} {entry['name']}: replication factor {factor:.2f}x "
              f"(limit {REPLICATION_LIMIT:.1f}x)")
        if factor > REPLICATION_LIMIT:
            failures.append(
                f"{entry['name']}: replication factor {factor:.2f}x exceeds "
                f"{REPLICATION_LIMIT:.1f}x — rows are being re-shipped per cluster"
            )
    if checked:
        print(f"replication gate: {checked} fig8 entries checked")
    return failures


def check_cross_engine_speedup(payload: dict) -> list[str]:
    """Cross-engine speedup failures recorded in the fig13 ``extra_info``.

    Every fig13 entry timed on the duckdb engine at paper scale
    (``tuples >= SPEEDUP_MIN_TUPLES``) must report
    ``speedup_vs_sqlite >= SPEEDUP_LIMIT``; smaller runs print the reading
    without gating.  Absence of the field on a gated entry fails — a
    silently dropped metric must not pass the gate it feeds.
    """
    failures = []
    checked = 0
    for entry in payload.get("benchmarks", []):
        if not entry["name"].startswith(SPEEDUP_GATE_PREFIX):
            continue
        extra = entry.get("extra_info", {})
        if extra.get("engine") != "duckdb":
            continue
        tuples = extra.get("tuples") or 0
        speedup = extra.get("speedup_vs_sqlite")
        if tuples < SPEEDUP_MIN_TUPLES:
            if speedup is not None:
                print(f"  reported {entry['name']}: {speedup:.2f}x vs sqlite "
                      f"at {tuples} tuples (gate applies from "
                      f"{SPEEDUP_MIN_TUPLES} tuples)")
            continue
        if speedup is None:
            failures.append(
                f"{entry['name']}: speedup_vs_sqlite missing from extra_info"
            )
            continue
        checked += 1
        verdict = "ok" if speedup >= SPEEDUP_LIMIT else "REGRESSED"
        print(f"  {verdict:9} {entry['name']}: {speedup:.2f}x vs sqlite at "
              f"{tuples} tuples (floor {SPEEDUP_LIMIT:.1f}x)")
        if speedup < SPEEDUP_LIMIT:
            failures.append(
                f"{entry['name']}: {speedup:.2f}x vs sqlite at {tuples} tuples "
                f"is below the {SPEEDUP_LIMIT:.1f}x columnar-engine floor"
            )
    if checked:
        print(f"cross-engine gate: {checked} fig13 duckdb entries checked")
    return failures


def write_baseline(baseline_path: Path, means: dict[str, float], bench_size: str) -> int:
    tracked = {name: means[name] for name in TRACKED_BENCHMARKS if name in means}
    missing = [name for name in TRACKED_BENCHMARKS if name not in means]
    hard_missing = [name for name in missing if name not in OPTIONAL_BENCHMARK_REQUIRES]
    if hard_missing:
        print(f"error: tracked benchmarks missing from results: {hard_missing}",
              file=sys.stderr)
        return 1

    entries: dict[str, dict] = {
        name: {"mean": tracked[name]} for name in tracked
    }
    # Optional hot paths absent from this run (their package was not
    # installed) keep a provisional entry so the tracked set stays complete:
    # mean null means "reported, not timing-compared" until a baseline is
    # regenerated on a runner that has the dependency.
    for name in missing:
        requires = OPTIONAL_BENCHMARK_REQUIRES[name]
        entries[name] = {"mean": None, "requires": requires}
        print(f"note: {name} absent from results (requires {requires}); "
              f"written as provisional")
    for name in tracked:
        if name in OPTIONAL_BENCHMARK_REQUIRES:
            entries[name]["requires"] = OPTIONAL_BENCHMARK_REQUIRES[name]

    baseline_path.write_text(
        json.dumps(
            {
                "bench_size": bench_size,
                "tolerance": DEFAULT_TOLERANCE,
                "benchmarks": {name: entries[name] for name in sorted(entries)},
            },
            indent=2,
        )
        + "\n"
    )
    print(f"baseline written: {baseline_path} ({len(entries)} tracked benchmarks)")
    return 0


def check(results_path: Path, baseline_path: Path, tolerance: float | None) -> int:
    payload = load_results(results_path)
    means = load_means(payload)
    with baseline_path.open() as handle:
        baseline = json.load(handle)
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))

    current_size = os.environ.get("REPRO_BENCH_SIZE", "5000")
    baseline_size = str(baseline.get("bench_size", ""))
    if baseline_size and baseline_size != current_size:
        print(
            f"perf gate ERROR: this run used REPRO_BENCH_SIZE={current_size} but the "
            f"baseline was recorded at {baseline_size}; timings are not comparable.\n"
            f"Regenerate with: python benchmarks/check_regression.py "
            f"--results <run.json> --update-baseline",
            file=sys.stderr,
        )
        return 1

    failures = []
    print(f"perf gate: tolerance +{tolerance:.0%} over baseline "
          f"(bench_size={baseline.get('bench_size')!r})")
    for name, entry in sorted(baseline.get("benchmarks", {}).items()):
        requires = entry.get("requires")
        measured = means.get(name)
        if measured is None:
            if requires:
                # Optional hot path: the run simply did not have the
                # dependency installed; only the `engines` job produces it.
                print(f"  skipped  {name} (requires {requires}; absent from this run)")
                continue
            expected = float(entry["mean"])
            failures.append(f"{name}: tracked hot path missing from this run")
            print(f"  MISSING  {name} (baseline {expected:.4f}s)")
            continue
        if entry.get("mean") is None:
            # Provisional baseline (mean null): the hot path ran but no
            # trusted baseline timing exists yet — report without comparing.
            print(f"  provisional {name}: {measured:.4f}s (no baseline yet; "
                  f"regenerate with --update-baseline on a runner with "
                  f"{requires or 'the dependency'})")
            continue
        expected = float(entry["mean"])
        limit = expected * (1.0 + tolerance)
        ratio = measured / expected if expected else float("inf")
        verdict = "ok" if measured <= limit else "REGRESSED"
        print(f"  {verdict:9} {name}: {measured:.4f}s vs baseline {expected:.4f}s "
              f"({ratio:.2f}x, limit {limit:.4f}s)")
        if measured > limit:
            failures.append(
                f"{name}: {measured:.4f}s exceeds baseline {expected:.4f}s "
                f"by more than {tolerance:.0%}"
            )

    failures.extend(check_replication(payload))
    failures.extend(check_cross_engine_speedup(payload))

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", required=True, type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed slowdown fraction (default: from baseline file)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from these results instead of checking")
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None and os.environ.get("REPRO_PERF_TOLERANCE"):
        tolerance = float(os.environ["REPRO_PERF_TOLERANCE"])

    if args.update_baseline:
        return write_baseline(
            args.baseline,
            load_means(load_results(args.results)),
            bench_size=os.environ.get("REPRO_BENCH_SIZE", "5000"),
        )
    return check(args.results, args.baseline, tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
