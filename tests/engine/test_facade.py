"""End-to-end tests of the DataQualityEngine façade."""

import pytest

from repro.core.schema import cust_ext_schema
from repro.datagen import DatasetGenerator, UpdateGenerator, paper_workload
from repro.engine import DataQualityEngine
from repro.exceptions import EngineError

BACKENDS = ("naive", "batch", "incremental")


@pytest.fixture(scope="module")
def ext_schema():
    return cust_ext_schema()


@pytest.fixture(scope="module")
def workload(ext_schema):
    return paper_workload(ext_schema)


@pytest.fixture(scope="module")
def seeded_rows():
    """The acceptance workload: a seeded 1k-tuple noisy dataset."""
    return DatasetGenerator(seed=42).generate_rows(1_000, 5.0)


class TestBackendEquivalence:
    def test_detect_identical_across_backends_on_1k_workload(
        self, ext_schema, workload, seeded_rows
    ):
        results = {}
        for name in BACKENDS:
            with DataQualityEngine(ext_schema, workload, backend=name) as engine:
                engine.load(seeded_rows)
                results[name] = engine.detect()
        assert results["naive"].violations == results["batch"].violations
        assert results["batch"].violations == results["incremental"].violations
        summaries = {r.dirty_count for r in results.values()}
        assert len(summaries) == 1 and results["batch"].dirty_count > 0

    def test_apply_update_identical_across_backends(self, ext_schema, workload, seeded_rows):
        updates = UpdateGenerator(DatasetGenerator(seed=8), seed=9)
        batch = updates.make_batch(
            existing_tids=range(1, len(seeded_rows) + 1),
            insert_count=120,
            delete_count=120,
            noise_percent=5.0,
        )
        results = {}
        for name in BACKENDS:
            with DataQualityEngine(ext_schema, workload, backend=name) as engine:
                engine.load(seeded_rows)
                engine.detect()
                results[name] = engine.apply_update(batch)
        assert results["naive"].violations == results["batch"].violations
        assert results["batch"].violations == results["incremental"].violations
        assert results["incremental"].incremental
        assert not results["batch"].incremental

    def test_update_routing_reports_apply_time_only_for_fallback(
        self, ext_schema, workload, seeded_rows
    ):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(seeded_rows)
            engine.detect()
            result = engine.apply_update(insert_rows=seeded_rows[:10])
            assert result.apply_seconds >= 0.0 and not result.incremental
        with DataQualityEngine(ext_schema, workload, backend="incremental") as engine:
            engine.load(seeded_rows)
            engine.detect()
            result = engine.apply_update(insert_rows=seeded_rows[:10])
            assert result.apply_seconds == 0.0 and result.incremental


class TestLoading:
    def test_chunked_load_equals_one_shot(self, ext_schema, workload, seeded_rows):
        with DataQualityEngine(ext_schema, workload, backend="batch") as chunked:
            assert chunked.load(seeded_rows, chunk_size=137) == len(seeded_rows)
            chunked_result = chunked.detect()
            chunked_tids = chunked.tids()
        with DataQualityEngine(ext_schema, workload, backend="batch") as one_shot:
            one_shot.load(seeded_rows)
            assert chunked_tids == one_shot.tids()
            assert chunked_result.violations == one_shot.detect().violations

    def test_load_accepts_generators(self, ext_schema, workload, seeded_rows):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            loaded = engine.load((row for row in seeded_rows[:50]), chunk_size=7)
            assert loaded == 50 and engine.count() == 50

    def test_load_relation_preserves_tids(self, ext_schema, workload):
        relation = DatasetGenerator(seed=3).generate(40, 5.0)
        relation.delete(relation.tids()[0])
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(relation)
            assert engine.tids() == relation.tids()

    def test_invalid_chunk_size_raises(self, ext_schema, workload, seeded_rows):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            with pytest.raises(EngineError):
                engine.load(seeded_rows, chunk_size=0)


class TestUpdateDeltas:
    def test_delta_forms_are_equivalent(self, ext_schema, workload, seeded_rows):
        extra = DatasetGenerator(seed=5).generate_rows(20, 5.0)
        outcomes = []
        for delta_call in (
            lambda e: e.apply_update({"delete_tids": [3, 7], "insert_rows": extra}),
            lambda e: e.apply_update(delete_tids=[3, 7], insert_rows=extra),
        ):
            with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
                engine.load(seeded_rows[:200])
                engine.detect()
                outcomes.append(delta_call(engine))
        assert outcomes[0].violations == outcomes[1].violations
        assert outcomes[0].tuple_count == outcomes[1].tuple_count

    def test_bogus_delta_raises(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            with pytest.raises(EngineError):
                engine.apply_update(42)

    def test_typoed_delta_key_raises_instead_of_dropping_data(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            with pytest.raises(EngineError, match="inserts"):
                engine.apply_update({"inserts": [{"CT": "NYC"}]})

    def test_incremental_update_before_detect_excludes_initialisation(
        self, ext_schema, workload, seeded_rows
    ):
        # No prior detect(): the batch initialisation must run via
        # ensure_ready(), outside the reported update timing, and the
        # result must still equal the initialised-first flow.
        with DataQualityEngine(ext_schema, workload, backend="incremental") as cold:
            cold.load(seeded_rows[:200])
            cold_result = cold.apply_update(insert_rows=seeded_rows[200:220])
        with DataQualityEngine(ext_schema, workload, backend="incremental") as warm:
            warm.load(seeded_rows[:200])
            warm.detect()
            warm_result = warm.apply_update(insert_rows=seeded_rows[200:220])
        assert cold_result.incremental and cold_result.violations == warm_result.violations


class TestRepairAndReport:
    def test_repair_applies_clean_data_in_place(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(DatasetGenerator(seed=1).generate(300, 5.0))
            before = engine.detect()
            assert before.dirty_count > 0
            tids_before = engine.tids()
            repair = engine.repair(max_rounds=15)
            assert repair.clean
            assert repair.strategy == "greedy"  # batch backend: baseline
            assert repair.cells_changed >= repair.tuples_changed > 0
            assert engine.detect().dirty_count == 0  # engine now serves repaired data
            assert engine.tids() == tids_before  # in place: identifiers preserved

    def test_repair_routes_through_incremental_strategy(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="incremental") as engine:
            engine.load(DatasetGenerator(seed=1).generate(300, 5.0))
            assert engine.detect().dirty_count > 0
            repair = engine.repair(max_rounds=15)
            assert repair.strategy == "incremental"
            assert repair.clean
            # Zero full re-detections after the seeding scan, and the engine
            # keeps serving the maintained (clean) state.
            assert repair.trace["full_detects"] == 0
            assert repair.trace["maintained_rounds"] == repair.rounds
            assert engine.detect().dirty_count == 0

    def test_repair_dry_run_keeps_dirty_state(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(DatasetGenerator(seed=1).generate(300, 5.0))
            engine.detect()
            repair = engine.repair(max_rounds=15, apply=False)
            assert repair.clean  # the planned repair converges ...
            assert engine.detect().dirty_count > 0  # ... but the store is untouched
            with pytest.raises(EngineError, match="greedy"):
                engine.repair(apply=False, strategy="incremental")

    def test_repair_workers_must_match_engine(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(DatasetGenerator(seed=1).generate(50, 5.0))
            with pytest.raises(EngineError, match="workers"):
                engine.repair(workers=4)

    def test_report_summarises_workload_and_detection(self, ext_schema, workload, seeded_rows):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(seeded_rows)
            report = engine.report()
        assert report.schema_name == ext_schema.name
        assert report.backend == "batch"
        assert report.constraint_count == len(workload)
        assert report.pattern_count == workload.pattern_count()
        assert report.satisfiable
        assert report.tuple_count == len(seeded_rows)
        assert 0.0 < report.dirty_ratio < 1.0
        assert report.detection.per_constraint  # breakdown populated

    def test_breakdown_agrees_between_naive_and_sql(self, ext_schema, workload, seeded_rows):
        breakdowns = {}
        for name in ("naive", "batch"):
            with DataQualityEngine(ext_schema, workload, backend=name) as engine:
                engine.load(seeded_rows[:300])
                breakdowns[name] = engine.detect(with_breakdown=True).per_constraint
        assert breakdowns["naive"] == breakdowns["batch"]


class TestDiscoveryAndValidation:
    def test_discover_through_engine(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="batch") as engine:
            engine.load(DatasetGenerator(seed=2).generate(400, 0.0))
            result = engine.discover(["CT"], "AC", min_support=2, min_confidence=0.9)
        assert result.ecfd is not None
        assert result.patterns

    def test_validate_on_satisfiable_workload(self, ext_schema, workload):
        with DataQualityEngine(ext_schema, workload, backend="naive") as engine:
            assert engine.validate()
            assert engine.validate(require=True)
