"""Fig. 6(a): INCDETECT vs BATCHDETECT as the database size |D| grows.

Paper setting: |ΔD⁺| = |ΔD⁻| = 10k, |D| swept from 10k to 100k; the batch
detector is re-run from scratch on the updated data, the incremental
detector processes only the update.  Expected shape: both scale with |D|,
and INCDETECT is faster than re-running BATCHDETECT at every size.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    prepared_batch_detector,
    prepared_incremental_detector,
    sweep,
    update_batch,
)

SIZES = sweep([BENCH_SIZE, 2 * BENCH_SIZE, 3 * BENCH_SIZE, 4 * BENCH_SIZE, 5 * BENCH_SIZE])
UPDATE_FRACTION = 0.1


@pytest.mark.parametrize("size", SIZES)
def test_fig6a_incdetect_scalability_in_tuples(benchmark, size, base_workload):
    rows = dataset_rows(size)
    batch = update_batch(len(rows), int(size * UPDATE_FRACTION))

    def setup():
        return (prepared_incremental_detector(rows, base_workload),), {}

    def run(detector):
        detector.delete_tuples(batch.delete_tids)
        return detector.insert_tuples(list(batch.insert_rows))

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tuples"] = size
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = len(violations)


@pytest.mark.parametrize("size", SIZES)
def test_fig6a_batchdetect_after_update_in_tuples(benchmark, size, base_workload):
    rows = dataset_rows(size)
    batch = update_batch(len(rows), int(size * UPDATE_FRACTION))

    def setup():
        detector = prepared_batch_detector(rows, base_workload)
        detector.detect()
        detector.database.delete_tuples(batch.delete_tids)
        detector.database.insert_tuples(list(batch.insert_rows))
        return (detector,), {}

    def run(detector):
        return detector.detect()

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tuples"] = size
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = len(violations)
