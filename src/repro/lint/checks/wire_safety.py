"""RPL001 — wire-safety of RPC payloads and shard tasks.

Three sub-checks:

* an argument at an RPC dispatch site that is a lambda, a function
  nested in the enclosing frame, or a bound method of the enclosing
  class — none of these survive a real pickle boundary;
* any lambda argument to a ``.submit(...)``/``encode_frame(...)`` call
  inside :mod:`repro.parallel` (process-pool lanes reject lambdas even
  before the network does);
* the summary wire-shape fingerprints ``({}, [])`` / ``({}, [], [])``
  constructed outside ``detection/summaries.py`` — the wire format has
  exactly one author.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name, parent_map
from repro.lint.checks.common import rpc_op_literal
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL001"

#: The only module allowed to build raw summary-cell tuples.
SANCTIONED_SUMMARY_MODULES = frozenset({"src/repro/detection/summaries.py"})


def _is_empty_dict(node: ast.expr) -> bool:
    return isinstance(node, ast.Dict) and not node.keys


def _is_empty_list(node: ast.expr) -> bool:
    return isinstance(node, ast.List) and not node.elts


def _is_summary_cell(node: ast.Tuple) -> bool:
    elts = node.elts
    if len(elts) == 2:
        return _is_empty_dict(elts[0]) and _is_empty_list(elts[1])
    if len(elts) == 3:
        return (
            _is_empty_dict(elts[0])
            and _is_empty_list(elts[1])
            and _is_empty_list(elts[2])
        )
    return False


def _enclosing(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> tuple[list[ast.FunctionDef | ast.AsyncFunctionDef], ast.ClassDef | None]:
    funcs: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    cls: ast.ClassDef | None = None
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            funcs.append(current)
        elif isinstance(current, ast.ClassDef) and cls is None:
            cls = current
        current = parents.get(current)
    return funcs, cls


def _nested_def_names(
    funcs: list[ast.FunctionDef | ast.AsyncFunctionDef],
) -> set[str]:
    names: set[str] = set()
    for func in funcs:
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    names.add(node.name)
    return names


def _payload_args(call: ast.Call) -> Iterator[ast.expr]:
    yield from call.args[2:]
    for kw in call.keywords:
        if kw.arg != "retryable":
            yield kw.value


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    parents = parent_map(file.tree)
    in_parallel = file.rel.startswith("src/repro/parallel/")
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Tuple) and _is_summary_cell(node):
            if file.in_src and file.rel not in SANCTIONED_SUMMARY_MODULES:
                yield Violation(
                    CODE,
                    file.rel,
                    node.lineno,
                    node.col_offset,
                    "raw summary-cell tuple constructed outside "
                    "detection/summaries.py — use the summaries API so the "
                    "wire format has one author",
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        op = rpc_op_literal(node, index)
        if op is not None:
            funcs, cls = _enclosing(node, parents)
            nested = _nested_def_names(funcs)
            methods = (
                {
                    n.name
                    for n in cls.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if cls is not None
                else set()
            )
            for arg in _payload_args(node):
                if isinstance(arg, ast.Lambda):
                    yield Violation(
                        CODE,
                        file.rel,
                        arg.lineno,
                        arg.col_offset,
                        f"lambda in the payload of RPC op {op!r} — payloads "
                        "must be plain picklable data",
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    yield Violation(
                        CODE,
                        file.rel,
                        arg.lineno,
                        arg.col_offset,
                        f"closure {arg.id!r} in the payload of RPC op {op!r} "
                        "— nested functions do not cross the wire",
                    )
                elif (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                    and arg.attr in methods
                ):
                    yield Violation(
                        CODE,
                        file.rel,
                        arg.lineno,
                        arg.col_offset,
                        f"bound method self.{arg.attr} in the payload of RPC "
                        f"op {op!r} — payloads must be plain picklable data",
                    )
            continue
        target = call_name(node)
        is_submit = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "submit"
        )
        if in_parallel and (is_submit or target == "encode_frame"):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    yield Violation(
                        CODE,
                        file.rel,
                        arg.lineno,
                        arg.col_offset,
                        "lambda submitted to an executor/frame in the "
                        "parallel fabric — process lanes and the wire both "
                        "require picklable callables",
                    )
