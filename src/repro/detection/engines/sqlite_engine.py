"""The SQLite engine — the dependency-free reference executor.

The original substrate of this reproduction: everything is expressed in
SQL executed by the standard-library :mod:`sqlite3` module, preserving the
paper's property that detection is a fixed pair of queries any RDBMS can
run, while remaining laptop-friendly.  Row-at-a-time execution makes it
the slowest interpreter of that claim — the columnar
:class:`~repro.detection.engines.duckdb_engine.DuckDBEngine` runs the same
statements vectorized.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable, Sequence

from repro.detection.dialect import get_dialect
from repro.detection.engines.base import SqlEngine

__all__ = ["SQLiteEngine"]


class SQLiteEngine(SqlEngine):
    """A :mod:`sqlite3` connection behind the abstract engine interface."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:"):
        self.dialect = get_dialect("sqlite")
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.execute("PRAGMA synchronous = OFF")

    def execute(self, sql: str, parameters: Sequence = ()) -> sqlite3.Cursor:
        return self.connection.execute(sql, parameters)

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        self.connection.executemany(sql, rows)

    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        return self.connection.execute(sql, parameters).fetchall()

    def update_rowcount(self, sql: str, parameters: Sequence = ()) -> int:
        return self.connection.execute(sql, parameters).rowcount

    def commit(self) -> None:
        self.connection.commit()

    def rollback(self) -> None:
        self.connection.rollback()

    def close(self) -> None:
        self.connection.close()
