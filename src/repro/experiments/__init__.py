"""Experiment harness regenerating every figure of the paper's evaluation.

See :mod:`repro.experiments.figures` for the per-figure drivers,
:mod:`repro.experiments.runner` for scales and timing plumbing, and
``python -m repro.experiments.run_all`` for the command-line entry point.
"""

from repro.experiments.figures import (
    ALL_FIGURES,
    DriverSpec,
    ablation_encoding,
    ablation_maxss,
    available_drivers,
    fig5a,
    fig5b,
    fig5c,
    fig6a,
    fig6b,
    fig6c,
    fig7a,
    fig7b,
    register_driver,
    resolve_driver,
)
from repro.experiments.reporting import ExperimentResult, format_table, to_csv
from repro.experiments.runner import (
    SCALES,
    Scale,
    current_scale,
    load_database,
    make_engine,
    timed_batch_after_update,
    timed_batch_detection,
    timed_incremental_update,
)
from repro.experiments.timing import Measurement, Timer, stopwatch

__all__ = [
    "ALL_FIGURES",
    "DriverSpec",
    "ExperimentResult",
    "Measurement",
    "SCALES",
    "Scale",
    "Timer",
    "ablation_encoding",
    "ablation_maxss",
    "available_drivers",
    "current_scale",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7a",
    "fig7b",
    "format_table",
    "load_database",
    "make_engine",
    "register_driver",
    "resolve_driver",
    "stopwatch",
    "timed_batch_after_update",
    "timed_batch_detection",
    "timed_incremental_update",
    "to_csv",
]
