"""Chaos tests: fault injection between the coordinator and its workers.

The :class:`~repro.parallel.chaos.ChaosProxy` sits on the wire and drops,
delays, duplicates or severs frames on scripted or seeded plans — never on
wall-clock randomness — while these tests assert the fabric's contract:
after any recovered fault the maintained violation state (and a repaired
relation) is **bit-exact** with a serial replay of the same stream, and
recovery re-bootstraps only the lost shards (``full_detect_count`` never
moves).
"""

from __future__ import annotations

import random

import pytest

from repro.engine import DataQualityEngine
from repro.parallel.chaos import REPLY, REQUEST, ChaosProxy
from repro.parallel.remote import spawn_local_workers

from tests.parallel.test_summary_merge import (
    SCHEMA,
    _random_rows,
    _random_sigma,
)


def _snapshot(engine) -> dict[int, dict[str, str]]:
    """The engine's relation as ``tid -> row``, for bit-exact comparison."""
    return {t.tid: t.as_dict() for t in engine.to_relation().tuples()}


def _engines(sigma, rows, addresses, rpc_timeout=10.0):
    serial = DataQualityEngine(
        SCHEMA, sigma, backend="incremental", workers=3, executor="serial"
    )
    serial.load(rows)
    serial.backend.ensure_ready()
    remote = DataQualityEngine(
        SCHEMA,
        sigma,
        backend="incremental",
        workers=3,
        executor="remote",
        remote_workers=[f"{host}:{port}" for host, port in addresses],
        rpc_timeout=rpc_timeout,
    )
    remote.load(rows)
    remote.backend.ensure_ready()
    return serial, remote


def _run_stream(rng, serial, remote, rounds=3, population=180):
    """Drive both engines with the same stream, asserting equality per round."""
    live = sorted(_snapshot(serial))
    for _ in range(rounds):
        deletes = rng.sample(live, k=min(len(live), rng.randint(20, 35)))
        inserts = _random_rows(rng, rng.randint(0, 8))
        expected = serial.apply_update(delete_tids=deletes, insert_rows=inserts)
        result = remote.apply_update(delete_tids=deletes, insert_rows=inserts)
        assert result.violations == expected.violations
        live = sorted(_snapshot(serial))


class TestBenignFaults:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delayed_and_duplicated_frames_stay_bit_exact(self, seed):
        """Delay and duplication are absorbed below the recovery layer.

        Duplicates exercise the stale-seq discard; delays exercise the
        pipelining barrier.  Neither may lose a lane, let alone corrupt the
        maintained state.
        """
        fleet = spawn_local_workers(2)
        proxies = []
        try:
            proxies = [
                ChaosProxy(
                    handle.address,
                    seed=seed + offset,
                    delay=0.10,
                    duplicate=0.15,
                    delay_seconds=0.01,
                ).start()
                for offset, handle in enumerate(fleet)
            ]
            rng = random.Random(100 + seed)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 150)
            serial, remote = _engines(
                sigma, rows, [proxy.address for proxy in proxies]
            )
            baseline = remote.backend.full_detect_count
            _run_stream(rng, serial, remote)
            assert remote.detect().violations == serial.detect().violations
            assert remote.backend.full_detect_count == baseline
            stats = remote.backend.transport_stats()
            assert stats["lanes_lost"] == 0 and stats["repins"] == 0
            faults = {
                action: sum(proxy.counters[action] for proxy in proxies)
                for action in ("delay", "duplicate")
            }
            # The seeded plans really did inject faults (rates are high
            # enough that a silent all-pass run would be a broken proxy).
            assert faults["delay"] > 0 and faults["duplicate"] > 0
            serial.close()
            remote.close()
        finally:
            for proxy in proxies:
                proxy.stop()
            for handle in fleet:
                handle.stop()

    def test_duplicated_replies_only_touch_the_discard_path(self):
        """Every reply duplicated: rpc bytes double, results do not."""
        fleet = spawn_local_workers(1)
        proxy = None
        try:
            proxy = ChaosProxy(
                fleet[0].address,
                decide=lambda direction, index: (
                    "duplicate" if direction == REPLY else "pass"
                ),
            ).start()
            rng = random.Random(7)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 100)
            serial, remote = _engines(sigma, rows, [proxy.address])
            _run_stream(rng, serial, remote, rounds=2)
            assert proxy.counters["duplicate"] > 0
            assert remote.backend.transport_stats()["lanes_lost"] == 0
            serial.close()
            remote.close()
        finally:
            if proxy is not None:
                proxy.stop()
            for handle in fleet:
                handle.stop()


class TestSeveredConnections:
    def test_severed_worker_link_recovers_bit_exact(self):
        """Flip one worker's link to sever-everything mid-stream.

        Every lane pinned through the proxy is lost on its next call; the
        coordinator must re-pin onto the healthy worker, re-bootstrap only
        the lost shards from post-delta storage, and keep the stream
        bit-exact — without any full re-detection.
        """
        fleet = spawn_local_workers(2)
        mode = {"action": "pass"}
        proxy = None
        try:
            proxy = ChaosProxy(
                fleet[0].address,
                decide=lambda direction, index: mode["action"],
            ).start()
            rng = random.Random(200)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 160)
            serial, remote = _engines(
                sigma, rows, [proxy.address, fleet[1].address]
            )
            baseline = remote.backend.full_detect_count
            _run_stream(rng, serial, remote, rounds=1)

            mode["action"] = "sever"  # worker 0's link goes dark
            live = sorted(_snapshot(serial))
            deletes = rng.sample(live, k=40)
            inserts = _random_rows(rng, 8)
            expected = serial.apply_update(delete_tids=deletes, insert_rows=inserts)
            result = remote.apply_update(delete_tids=deletes, insert_rows=inserts)
            assert result.violations == expected.violations
            trace = remote.backend.last_update_trace
            assert trace["lanes_lost"] == [0, 2]
            assert trace["recovered_shards"] == 2
            assert remote.backend.full_detect_count == baseline
            healthy = f"{fleet[1].address[0]}:{fleet[1].address[1]}"
            assert {e["address"] for e in remote.shard_stats()} == {healthy}
            assert proxy.counters["sever"] > 0

            # Link restored: the fabric does not move lanes back (pins are
            # sticky) but keeps running exactly on the survivor.
            mode["action"] = "pass"
            _run_stream(rng, serial, remote, rounds=2)
            assert remote.backend.full_detect_count == baseline
            serial.close()
            remote.close()
        finally:
            if proxy is not None:
                proxy.stop()
            for handle in fleet:
                handle.stop()


class TestKilledWorker:
    def test_killed_worker_stream_and_repair_match_serial_replay(self):
        """The acceptance scenario: SIGKILL a worker mid-update-stream.

        After recovery the violation sets stay bit-exact round by round,
        ``full_detect_count`` is unchanged, and a full repair on the
        recovered fabric produces the *same relation, tuple for tuple*, as
        the serial replay's repair.
        """
        fleet = spawn_local_workers(2)
        try:
            rng = random.Random(300)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 160)
            serial, remote = _engines(
                sigma, rows, [handle.address for handle in fleet]
            )
            baseline = remote.backend.full_detect_count
            _run_stream(rng, serial, remote, rounds=1)

            fleet[0].kill()  # no goodbye: RST on the next lane call
            _run_stream(rng, serial, remote, rounds=2)
            trace = remote.backend.last_update_trace
            assert remote.backend.full_detect_count == baseline
            assert trace["transport"]["lanes_lost"] >= 1

            expected_repair = serial.repair(max_rounds=6)
            actual_repair = remote.repair(max_rounds=6)
            assert actual_repair.clean == expected_repair.clean
            assert actual_repair.cells_changed == expected_repair.cells_changed
            assert _snapshot(remote) == _snapshot(serial)
            assert remote.detect().violations == serial.detect().violations
            serial.close()
            remote.close()
        finally:
            for handle in fleet:
                handle.stop()


class TestScriptedPrecision:
    def test_single_dropped_reply_times_out_and_recovers(self):
        """Drop exactly one reply frame: the call times out, the lane dies,
        and recovery rebuilds its shard — one lost frame, zero lost data."""
        fleet = spawn_local_workers(2)
        dropped = {"armed": False, "done": False}

        def decide(direction: str, index: int) -> str:
            if direction == REPLY and dropped["armed"] and not dropped["done"]:
                dropped["done"] = True
                return "drop"
            return "pass"

        proxy = None
        try:
            proxy = ChaosProxy(fleet[0].address, decide=decide).start()
            rng = random.Random(400)
            sigma = _random_sigma(rng)
            rows = _random_rows(rng, 120)
            serial, remote = _engines(
                sigma,
                rows,
                [proxy.address, fleet[1].address],
                rpc_timeout=1.5,  # the dropped reply costs one short timeout
            )
            baseline = remote.backend.full_detect_count
            _run_stream(rng, serial, remote, rounds=1)

            dropped["armed"] = True
            _run_stream(rng, serial, remote, rounds=2)
            assert dropped["done"], "the scripted drop never fired"
            assert proxy.counters["drop"] == 1
            assert remote.backend.transport_stats()["lanes_lost"] >= 1
            assert remote.backend.full_detect_count == baseline
            assert remote.detect().violations == serial.detect().violations
            serial.close()
            remote.close()
        finally:
            if proxy is not None:
                proxy.stop()
            for handle in fleet:
                handle.stop()
