"""A complete data-cleaning pipeline on a synthetic customer/order dataset.

The scenario the paper's introduction motivates: a customer database with
geographic and purchase attributes accumulates errors, and a set of eCFDs
expressing the real-life semantics (area codes per city, zip/city bindings,
item types, price bands) is used to find and then fix them.

The whole lifecycle runs through the :class:`~repro.engine.DataQualityEngine`
façade:

1. validate the constraint set (satisfiability analysis of Section III);
2. generate a noisy dataset with the Section VI generator and load it;
3. detect all violations with INCDETECT on SQLite;
4. repair the data in place with the *incremental* strategy — fixes are
   re-validated by INCDETECT delta maintenance, never by re-detecting the
   whole relation — and compare its cost trace against the greedy baseline;
5. report the resulting quality state.

Run with::

    python examples/data_cleaning_pipeline.py
"""

from repro import DataQualityEngine, cust_ext_schema
from repro.datagen import DatasetGenerator, paper_workload


def main() -> None:
    schema = cust_ext_schema()
    sigma = paper_workload(schema)

    engine = DataQualityEngine(schema, sigma, backend="incremental")
    print(f"Workload: {len(sigma)} eCFDs, {sigma.pattern_count()} pattern constraints")
    print(f"Constraint set is satisfiable: {engine.validate()}\n")

    generator = DatasetGenerator(seed=42)
    loaded = engine.load(generator.generate(2_000, noise_percent=5.0))
    print(f"Generated and loaded {loaded} tuples with 5% injected noise")

    result = engine.detect()
    print("\nDetection results:")
    print(f"  single-tuple violations (SV): {result.sv_count}")
    print(f"  multi-tuple violations  (MV): {result.mv_count}")
    print(f"  dirty tuples in vio(D):       {result.dirty_count}")

    # Dry-run the greedy baseline first: same fixes, but every round pays a
    # full re-detection (the audit shows what the incremental path avoids).
    baseline = engine.repair(max_rounds=15, apply=False)
    print("\nGreedy baseline (dry run): "
          f"{baseline.cells_changed} cells in {baseline.rounds} rounds, "
          f"{baseline.trace['full_detects']} full detections")

    print("Repairing in place with the incremental strategy ...")
    repair = engine.repair(max_rounds=15)
    print(f"  strategy: {repair.strategy}")
    print(f"  changed cells: {repair.cells_changed} (cost {repair.cost}) "
          f"across {repair.tuples_changed} tuples in {repair.rounds} rounds")
    print(f"  full re-detections after seeding: {repair.trace['full_detects']} "
          f"(re-detect rows avoided: {repair.trace['redetect_rows_avoided']})")
    print(f"  repaired data is clean: {repair.clean}")

    report = engine.report()
    print("\nQuality report after repair:")
    print(f"  backend={report.backend}, tuples={report.tuple_count}, "
          f"dirty_ratio={report.dirty_ratio:.4f}")
    engine.close()


if __name__ == "__main__":
    main()
