"""Unit tests for in-memory relations (repro.core.instance)."""

import pytest

from repro.core.instance import Relation, RelationTuple
from repro.core.schema import RelationSchema, cust_schema
from repro.exceptions import SchemaError


@pytest.fixture
def small_schema():
    return RelationSchema("r", ["A", "B", "C"])


class TestRelationTuple:
    def test_mapping_access(self, small_schema):
        t = RelationTuple(small_schema, {"A": 1, "B": 2, "C": 3})
        assert t["A"] == 1
        assert dict(t) == {"A": 1, "B": 2, "C": 3}
        assert len(t) == 3
        assert t.values() == (1, 2, 3)

    def test_sequence_construction(self, small_schema):
        t = RelationTuple(small_schema, [1, 2, 3])
        assert t["C"] == 3

    def test_missing_or_extra_attributes_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            RelationTuple(small_schema, {"A": 1, "B": 2})
        with pytest.raises(SchemaError):
            RelationTuple(small_schema, {"A": 1, "B": 2, "C": 3, "D": 4})
        with pytest.raises(SchemaError):
            RelationTuple(small_schema, [1, 2])

    def test_projection(self, small_schema):
        t = RelationTuple(small_schema, {"A": 1, "B": 2, "C": 3})
        assert t.project(["C", "A"]) == (3, 1)

    def test_replace_creates_new_tuple(self, small_schema):
        t = RelationTuple(small_schema, {"A": 1, "B": 2, "C": 3}, tid=7)
        replaced = t.replace(B=20)
        assert replaced["B"] == 20
        assert replaced.tid == 7
        assert t["B"] == 2
        with pytest.raises(SchemaError):
            t.replace(Z=1)

    def test_equality_ignores_tid(self, small_schema):
        t1 = RelationTuple(small_schema, [1, 2, 3], tid=1)
        t2 = RelationTuple(small_schema, [1, 2, 3], tid=2)
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert t1 != RelationTuple(small_schema, [1, 2, 4])


class TestRelation:
    def test_insert_assigns_increasing_tids(self, small_schema):
        relation = Relation(small_schema)
        first = relation.insert({"A": 1, "B": 1, "C": 1})
        second = relation.insert([2, 2, 2])
        assert (first.tid, second.tid) == (1, 2)
        assert len(relation) == 2
        assert relation.tids() == [1, 2]

    def test_insert_wrong_schema_rejected(self, small_schema):
        other = RelationSchema("s", ["A", "B", "C"])
        relation = Relation(small_schema)
        foreign = RelationTuple(other, [1, 2, 3])
        with pytest.raises(SchemaError):
            relation.insert(foreign)

    def test_delete_by_tid(self, small_schema):
        relation = Relation(small_schema, [[1, 1, 1], [2, 2, 2]])
        removed = relation.delete(1)
        assert removed["A"] == 1
        assert relation.tids() == [2]
        with pytest.raises(SchemaError):
            relation.delete(1)

    def test_delete_matching(self, small_schema):
        relation = Relation(small_schema, [[1, 1, 1], [2, 2, 2], [3, 1, 3]])
        removed = relation.delete_matching(lambda t: t["B"] == 1)
        assert len(removed) == 2
        assert relation.tids() == [2]

    def test_duplicates_are_kept(self, small_schema):
        relation = Relation(small_schema, [[1, 1, 1], [1, 1, 1]])
        assert len(relation) == 2

    def test_select_and_contains(self, small_schema):
        relation = Relation(small_schema, [[1, 1, 1], [2, 2, 2]])
        hits = relation.select(lambda t: t["A"] == 2)
        assert [t["A"] for t in hits] == [2]
        assert RelationTuple(small_schema, [1, 1, 1]) in relation
        assert RelationTuple(small_schema, [9, 9, 9]) not in relation

    def test_group_by(self, small_schema):
        relation = Relation(small_schema, [[1, "x", 1], [2, "x", 2], [3, "y", 3]])
        groups = relation.group_by(["B"])
        assert set(groups) == {("x",), ("y",)}
        assert len(groups[("x",)]) == 2
        with pytest.raises(SchemaError):
            relation.group_by(["NOPE"])

    def test_active_domain(self, small_schema):
        relation = Relation(small_schema, [[1, "x", 1], [2, "x", 2]])
        assert relation.active_domain("B") == {"x"}
        assert relation.active_domain("A") == {1, 2}

    def test_copy_is_independent(self, small_schema):
        relation = Relation(small_schema, [[1, 1, 1]])
        clone = relation.copy()
        clone.insert([2, 2, 2])
        assert len(relation) == 1
        assert len(clone) == 2
        # Tids continue from the copied counter.
        assert clone.tids() == [1, 2]

    def test_get(self, small_schema):
        relation = Relation(small_schema, [[1, 1, 1]])
        assert relation.get(1) is not None
        assert relation.get(99) is None


class TestPaperInstance:
    def test_fig1_instance_loads(self, d0):
        assert len(d0) == 6
        assert d0.get(1)["CT"] == "Albany"
        assert d0.get(4)["AC"] == "100"
        assert d0.active_domain("CT") == {"Albany", "Colonie", "Troy", "NYC"}

    def test_fig1_schema_is_cust(self, d0):
        assert d0.schema == cust_schema()
