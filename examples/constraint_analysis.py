"""Static analysis of an eCFD rule base: satisfiability, implication, MAXSS, discovery.

A data steward maintains a growing set of eCFDs.  Before using them for
cleaning she wants to know: do they make sense together (satisfiability,
Section III)?  Which ones are redundant (implication)?  If the set is
inconsistent, which subset can be kept (the MAXSS approximation of
Section IV)?  And can new candidate rules be mined from a trusted sample
(the discovery extension)?

Run with::

    python examples/constraint_analysis.py
"""

from repro.analysis import (
    find_witness,
    implies,
    irredundant_cover,
    is_satisfiable,
    max_satisfiable_subset,
)
from repro.core import ECFD, cust_schema, format_ecfd, parse_ecfd
from repro.datagen import DatasetGenerator
from repro.discovery import discover_ecfd


def main() -> None:
    schema = cust_schema()

    psi1 = parse_ecfd(
        "(cust: [CT] -> [AC], { (!{NYC, LI} || _); ({Albany, Colonie, Troy} || {518}) })", schema
    )
    psi2 = parse_ecfd("(cust: [CT] -> [] | [AC], { ({NYC} || {212, 347, 646, 718, 917}) })", schema)
    narrower = parse_ecfd("(cust: [CT] -> [] | [AC], { ({NYC} || {212, 718}) })", schema)

    print("Satisfiability (Proposition 3.1)")
    sigma = [psi1, psi2, narrower]
    print(f"  Σ = {{ψ1, ψ2, ψ2'}} satisfiable: {is_satisfiable(sigma)}")
    witness = find_witness(sigma)
    print(f"  single-tuple witness: CT={witness['CT']!r}, AC={witness['AC']!r}\n")

    print("Implication (Proposition 3.2)")
    print(f"  ψ2' ⊨ ψ2 (narrower area-code set implies the wider one): {implies([narrower], psi2)}")
    print(f"  ψ2 ⊨ ψ2': {implies([psi2], narrower)}")
    cover = irredundant_cover(sigma)
    print(f"  irredundant cover keeps {len(cover)} of {len(sigma)} constraints\n")

    print("Maximum satisfiable subset (Section IV)")
    contradiction = ECFD(
        schema, ["CT"], ["CT"],
        tableau=[({"CT": {"NYC"}}, {"CT": {"LI"}}), ({"CT": "_"}, {"CT": {"NYC"}})],
        name="contradiction",
    )
    broken = sigma + [contradiction]
    print(f"  Σ ∪ {{contradiction}} satisfiable: {is_satisfiable(broken)}")
    result = max_satisfiable_subset(broken)
    kept = [ecfd.name or format_ecfd(ecfd) for ecfd in result.satisfiable_subset]
    print(f"  MAXSS keeps {result.cardinality} of {len(broken)} constraints; verdict: {result.verdict()}")
    print(f"  dropped: {[e.name for e in broken if e not in result.satisfiable_subset]}\n")

    print("Discovery from a trusted sample (future-work extension)")
    sample = DatasetGenerator(seed=3, schema=None).generate(400, noise_percent=0.0)
    discovered = discover_ecfd(sample, ["CT"], "AC", min_support=4, min_confidence=1.0)
    assert discovered.ecfd is not None
    print(f"  mined {len(discovered.patterns)} pattern constraints; first three:")
    for mined in discovered.patterns[:3]:
        kind = "complement" if mined.complement else "set"
        print(f"    CT={mined.lhs_value!r} -> AC {kind} {sorted(mined.rhs_values)} "
              f"(support {mined.support}, confidence {mined.confidence:.2f})")


if __name__ == "__main__":
    main()
