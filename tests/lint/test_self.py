"""Tier-1 self-run: the shipped tree lints clean with an empty baseline.

This is the acceptance gate of the lint subsystem itself — every
invariant the RPL rules encode holds on the real ``src``, ``benchmarks``
and ``tests`` trees, with no baseline escape hatch in use.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.runner import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lint_repo():
    paths = [REPO_ROOT / part for part in ("src", "benchmarks", "tests")]
    return run_lint([p for p in paths if p.exists()], REPO_ROOT)


def test_shipped_tree_is_clean():
    result = _lint_repo()
    formatted = "\n".join(v.format() for v in result.violations)
    assert not result.errors, result.errors
    assert not result.violations, f"repro.lint violations:\n{formatted}"


def test_shipped_baseline_is_empty():
    baseline = REPO_ROOT / ".reprolint-baseline.json"
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["entries"] == []


def test_every_rule_is_exercised_on_the_real_tree():
    """The index actually resolves the real registries and ops."""
    from repro.lint.project import build_index
    from repro.lint.runner import collect_files

    files, errors = collect_files(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], REPO_ROOT
    )
    assert not errors
    index = build_index(files)
    # The real fabric declares its ops through @rpc_op...
    assert "update" in index.rpc_ops
    assert not index.rpc_ops["update"].idempotent
    assert index.rpc_ops["bootstrap"].idempotent
    # ...the registries resolve...
    assert "naive" in index.registry_keys["backend"] or index.registry_keys["backend"]
    assert "fig8" in index.registry_keys["figure"]
    assert set(index.registry_keys["driver"]) <= set(index.registry_keys["figure"])
    # ...and the schema cross-check has real inputs on both sides.
    assert index.has_schema and index.has_benchmarks
    assert index.tracked_benchmarks
