"""Timing primitives and measurement records for the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator

__all__ = ["Measurement", "Timer", "stopwatch"]


@dataclass
class Measurement:
    """One measured point of an experiment series.

    Attributes
    ----------
    label:
        Which algorithm / configuration produced the point (e.g.
        ``"batchdetect"`` or ``"incdetect-insert"``).
    parameter:
        The swept parameter value (|D|, noise%, |Tp|, |ΔD|, ...).
    seconds:
        Wall-clock time of the measured operation.
    extra:
        Additional readings attached to the point (violation counts,
        realised sizes, ...).
    """

    label: str
    parameter: float
    seconds: float
    extra: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, float | str]:
        """Flatten into a plain dict, convenient for table rendering."""
        row: dict[str, float | str] = {
            "series": self.label,
            "parameter": self.parameter,
            "seconds": round(self.seconds, 4),
        }
        row.update(self.extra)
        return row


class Timer:
    """A tiny accumulating wall-clock timer."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Timer.stop() called before start()")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self._started = None
        return delta


@contextmanager
def stopwatch() -> Iterator[Timer]:
    """Context manager yielding a running :class:`Timer`.

    >>> with stopwatch() as timer:
    ...     sum(range(1000))
    499500
    >>> timer.elapsed >= 0.0
    True
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer._started is not None:
            timer.stop()
