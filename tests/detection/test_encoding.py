"""Unit tests for the relational encoding of eCFDs (Fig. 3)."""

import pytest

from repro.core import ECFD, ECFDSet
from repro.detection.database import ECFDDatabase
from repro.detection.encoding import (
    ENC_TABLE,
    encode_constraints,
    enc_column,
    install_encoding,
    pattern_table,
)
from repro.exceptions import DetectionError


class TestEncodeConstraints:
    def test_one_enc_row_per_pattern_tuple(self, paper_sigma):
        encoding = encode_constraints(paper_sigma)
        # ψ1 has two pattern tuples, ψ2 has one: three encoded fragments.
        assert encoding.size == 3
        assert len(encoding.enc_rows) == 3
        assert sorted(encoding.fragments) == [1, 2, 3]

    def test_codes_follow_fig3(self, paper_sigma, schema):
        """The enc codes reproduce Fig. 3 of the paper.

        CID 1: ψ1's first pattern  — CT_L = 2 (complement), AC_R = 3 (wildcard);
        CID 2: ψ1's second pattern — CT_L = 1 (set),       AC_R = 1 (set);
        CID 3: ψ2's pattern        — CT_L = 1 (set),       AC_R = -1 (set, Yp).
        """
        encoding = encode_constraints(paper_sigma)
        attribute_order = schema.attribute_names
        column_index = {
            (attribute, side): 1 + 2 * attribute_order.index(attribute) + (0 if side == "L" else 1)
            for attribute in attribute_order
            for side in ("L", "R")
        }
        rows = {row[0]: row for row in encoding.enc_rows}
        assert rows[1][column_index[("CT", "L")]] == 2
        assert rows[1][column_index[("AC", "R")]] == 3
        assert rows[2][column_index[("CT", "L")]] == 1
        assert rows[2][column_index[("AC", "R")]] == 1
        assert rows[3][column_index[("CT", "L")]] == 1
        assert rows[3][column_index[("AC", "R")]] == -1
        # Attributes not mentioned by an eCFD are coded 0 on both sides.
        assert rows[1][column_index[("ZIP", "L")]] == 0
        assert rows[1][column_index[("ZIP", "R")]] == 0

    def test_constant_tables_follow_fig3(self, paper_sigma):
        encoding = encode_constraints(paper_sigma)
        ct_left = encoding.pattern_rows[("CT", "L")]
        ac_right = encoding.pattern_rows[("AC", "R")]
        assert (1, "NYC") in ct_left and (1, "LI") in ct_left
        assert (2, "Albany") in ct_left and (2, "Troy") in ct_left and (2, "Colonie") in ct_left
        assert (3, "NYC") in ct_left
        assert (2, "518") in ac_right
        assert {(3, code) for code in ["212", "718", "646", "347", "917"]} <= set(ac_right)
        # Wildcards contribute no constants.
        assert not any(cid == 1 for cid, _ in ac_right)

    def test_encoding_is_linear_in_sigma(self, paper_sigma):
        """The total number of encoded cells is linear in the size of Σ."""
        encoding = encode_constraints(paper_sigma)
        total_constants = sum(len(rows) for rows in encoding.pattern_rows.values())
        mentioned_constants = sum(
            len(values) for ecfd in paper_sigma for values in ecfd.constants().values()
        )
        assert total_constants == mentioned_constants

    def test_empty_sigma_rejected(self):
        with pytest.raises(DetectionError):
            encode_constraints([])

    def test_mixed_schemas_rejected(self, psi1):
        from repro.core.schema import RelationSchema

        other_schema = RelationSchema("other", ["A", "B"])
        other = ECFD(other_schema, ["A"], ["B"], tableau=[({"A": "_"}, {"B": "_"})])
        with pytest.raises(DetectionError):
            encode_constraints([psi1, other])


class TestInstallEncoding:
    def test_tables_created_and_populated(self, schema, paper_sigma):
        with ECFDDatabase(schema) as db:
            encoding = encode_constraints(paper_sigma)
            install_encoding(db, encoding)
            [(enc_count,)] = db.query(f'SELECT COUNT(*) FROM "{ENC_TABLE}"')
            assert enc_count == 3
            [(ct_l_count,)] = db.query(f'SELECT COUNT(*) FROM "{pattern_table("CT", "L")}"')
            assert ct_l_count == 6  # NYC, LI, Albany, Troy, Colonie, NYC(ψ2)
            # Every attribute/side pair has a table, even when empty.
            [(zip_count,)] = db.query(f'SELECT COUNT(*) FROM "{pattern_table("ZIP", "R")}"')
            assert zip_count == 0

    def test_reinstall_replaces_previous_encoding(self, schema, paper_sigma, psi1):
        with ECFDDatabase(schema) as db:
            install_encoding(db, encode_constraints(paper_sigma))
            install_encoding(db, encode_constraints(ECFDSet([psi1])))
            [(enc_count,)] = db.query(f'SELECT COUNT(*) FROM "{ENC_TABLE}"')
            assert enc_count == 2

    def test_schema_mismatch_rejected(self, schema, paper_sigma):
        from repro.core.schema import RelationSchema

        other = RelationSchema("other", ["A", "B"])
        with ECFDDatabase(other) as db:
            with pytest.raises(DetectionError):
                install_encoding(db, encode_constraints(paper_sigma))

    def test_enc_column_and_table_names(self):
        assert enc_column("CT", "L") == "CT_L"
        assert pattern_table("AC", "R") == "ecfd_tp_AC_R"
