"""Sharded, multi-core violation detection.

* :mod:`repro.parallel.partition` — the single-pass partition planner
  (primary-key selection, local vs. summary fragment split, replication
  accounting) and deterministic hash partitioning of relations;
* :mod:`repro.parallel.summary` — the coordinator-side merge of the
  cross-shard ``(cid, xv, yv-multiset)`` group summaries emitted by the
  detectors' ``fd_group_summary`` hooks;
* :mod:`repro.parallel.sharded` — the ``"sharded"`` engine backend, which
  fans any delegate detector out over shared-nothing shards in a process or
  thread pool and merges per-shard flags and summaries exactly;
* :mod:`repro.parallel.repair` — the ``"sharded"`` repair strategy: fix
  deltas routed through the partition plan to the owning shards' INCDETECT
  lanes, cross-shard embedded-FD group fixes elected directly from the
  coordinator's merged summary store;
* :mod:`repro.parallel.transport` / :mod:`repro.parallel.worker` /
  :mod:`repro.parallel.remote` — the remote shard fabric
  (``executor="remote"``): a length-prefixed asyncio RPC transport, the
  standalone worker process hosting lane-pinned shard states
  (``python -m repro.parallel.worker``), and the coordinator-side worker
  pool with lane pinning, retry/backoff and lost-lane recovery;
* :mod:`repro.parallel.chaos` — a frame-aware fault-injection proxy for
  testing the fabric (drop / delay / duplicate / sever on frame
  boundaries, from a seeded deterministic plan).
"""

from repro.parallel.chaos import ChaosProxy, scripted_plan, start_proxies

from repro.parallel.partition import (
    PartitionCluster,
    PartitionPlan,
    cluster_replication_factor,
    extract_partition_plan,
    partition_rows,
    plan_partitions,
    route_delta,
    shard_index,
)
from repro.parallel.remote import (
    LocalWorkerHandle,
    RemoteWorkerPool,
    parse_address,
    spawn_local_workers,
)
from repro.parallel.repair import ShardedRepairStrategy
from repro.parallel.sharded import DEFAULT_EXECUTOR, ShardedBackend, detect_sharded
from repro.parallel.summary import SummaryStore, summary_nbytes
from repro.parallel.transport import RetryPolicy, RpcConnection

__all__ = [
    "ChaosProxy",
    "DEFAULT_EXECUTOR",
    "LocalWorkerHandle",
    "PartitionCluster",
    "PartitionPlan",
    "RemoteWorkerPool",
    "RetryPolicy",
    "RpcConnection",
    "ShardedBackend",
    "ShardedRepairStrategy",
    "SummaryStore",
    "cluster_replication_factor",
    "detect_sharded",
    "extract_partition_plan",
    "parse_address",
    "partition_rows",
    "plan_partitions",
    "route_delta",
    "scripted_plan",
    "shard_index",
    "spawn_local_workers",
    "start_proxies",
    "summary_nbytes",
]
