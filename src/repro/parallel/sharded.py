"""Sharded multi-core detection: any delegate backend, fanned out per shard.

The paper's detectors (and their engine adapters) are single-threaded over
the whole relation.  :class:`ShardedBackend` scales them out on one machine
with a **single-pass** shared-nothing protocol — every stored tuple ships to
exactly one shard (replication factor 1.0):

1. the constraint set is compiled into a partition plan
   (:func:`repro.parallel.partition.plan_partitions`): one primary hash key
   plus a split of Σ's normalized fragments into *local* fragments
   (pattern-constraint riders and embedded FDs whose LHS contains the key —
   their violations are decidable within a shard) and *summary* fragments
   (embedded FDs whose ``X``-groups may straddle shards);
2. the stored relation is hash-partitioned once into ``workers``
   shared-nothing shards (CRC32 of the key projection, round-robin by tid
   for a keyless plan);
3. each non-empty shard becomes an independent task: a fresh delegate
   backend (``naive`` / ``batch`` / ``incremental``) is built in the
   worker and loaded with the shard.  The shard's Σ is the local fragments
   plus the *pattern projections* of the summary fragments (identical SV
   semantics, no embedded FD), so the delegate's ordinary ``detect()``
   yields every single-tuple violation and the multi-tuple violations of
   the local fragments.  For the summary fragments the delegate's
   ``fd_group_summary`` hook emits compact
   ``(cid, xv) → (yv multiset, witness tids)`` group summaries
   (:mod:`repro.detection.summaries`) — aggregated groups, never raw rows.
   The task carries the delegate's resolved *factory*, not its registry
   name, so runtime-registered delegates work even under ``spawn`` start
   methods;
4. per-shard violation sets are remapped to the global constraint
   identifiers and merged, and the per-shard summaries are folded into a
   :class:`repro.parallel.summary.SummaryStore` whose merged groups
   materialise the cross-shard multi-tuple violations.  Shards partition
   the relation and every (tuple, fragment) pair is examined exactly once,
   so the result is identical to a single-threaded whole-relation pass.

Tasks run in a :mod:`concurrent.futures` pool.  ``executor="process"``
(default) sidesteps the GIL and suits the pure-Python and SQLite delegates
alike; ``"thread"`` avoids pickling overhead and still overlaps SQLite's
C-level work; ``"serial"`` runs the same sharded code path inline, which the
tests use to pin down partitioning semantics independent of pool behaviour.

Incremental updates (sharded INCDETECT)
---------------------------------------
When the delegate supports incremental detection, the sharded backend
maintains violations across updates instead of recomputing.  The capability
is read off the registered *factory*: backend classes registered directly
(like the built-in ``"incremental"``) carry their ``supports_incremental``
class attribute; a function factory must set ``supports_incremental = True``
on the function itself, or the sharded backend (which cannot afford to
construct a probe instance) conservatively falls back to recompute-on-update.
The maintained protocol:

1. on the first update (or an explicit ``ensure_ready()``) every shard is
   *bootstrapped*: a persistent per-shard delegate — an INCDETECT state
   holding the shard's rows, SV/MV flags, Aux(D) and macro rows — is built
   inside a **stateful shard lane** and kept alive between calls, and its
   full group summary seeds the coordinator's summary store.  A lane is a
   single-worker executor pinned to a shard, so a shard's state always
   lives where its tasks run;
2. each update ΔD is routed through the *same* single-pass plan as
   detection (:func:`repro.parallel.partition.route_delta`): deleted tuples
   are resolved to their stored values and hashed to the one shard that
   holds them, inserted tuples get coordinator-assigned global tids and
   hash the same way.  Only the touched shards receive a task; every other
   shard does no work at all — per-shard cost is proportional to the routed
   delta, not to |D|;
3. each touched shard applies its slice of ΔD with INCDETECT (shard-local
   ``delete_tuples`` / ``insert_tuples`` with pinned global tids), whose
   violation readback is itself a *flag delta* — probes bounded by the
   shard's maintained violation set — and emits the slice's **summary
   delta** (the delegate's
   ``fd_summary_delta`` hook, matching with the same semantics as its full
   bootstrap summary) for the summary fragments — signed yv-count and
   witness changes, bounded by |ΔD|;
4. the coordinator swaps the touched shards' flag contributions into its
   per-shard violation cache, folds the summary deltas into the summary
   store, and re-merges — an exact replacement merge, so the result is
   identical to a single-threaded INCDETECT pass over the whole relation.

After updates, ``detect()`` reads the live merged state instead of
re-fanning out one-shot tasks (``full_detect_count`` stays put — the
"no hidden recompute" guarantee now covers the read path too).

``workers=1`` keeps the plain single-state path (one INCDETECT state over
the whole Σ and relation — byte-for-byte the delegate's own behaviour), and
the :class:`~repro.engine.DataQualityEngine` does not even interpose the
sharding layer at ``workers=1`` unless ``backend="sharded"`` is explicit.
Out-of-band storage mutations (``load_rows`` / ``apply_delta`` / ``clear``)
invalidate the shard states; the next update bootstraps afresh.

The backend registers itself as ``"sharded"`` in the engine registry; the
:class:`~repro.engine.DataQualityEngine` routes through it automatically
when constructed with ``workers > 1``.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from itertools import count as _counter

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import RelationSchema, Value
from repro.core.violations import MultiTupleViolation, SingleTupleViolation, ViolationSet
from repro.detection.summaries import Summary, SummaryDelta
from repro.engine.backends import (
    DetectorBackend,
    InMemoryRelationBackend,
    register_backend,
    resolve_backend_factory,
)
from repro.exceptions import EngineError, FabricError, LaneFailedError
from repro.parallel.partition import (
    PartitionPlan,
    bucket_rows,
    cluster_replication_factor,
    plan_partitions,
    route_delta,
)
from repro.parallel.remote import (
    RemoteWorkerPool,
    resolve_worker_addresses,
    spawn_local_workers,
)
from repro.parallel.summary import SummaryStore, summary_nbytes
from repro.parallel.transport import is_idempotent, rpc_op

__all__ = ["ShardedBackend", "DEFAULT_EXECUTOR", "detect_sharded"]

#: Executor kinds accepted by the backend.
_EXECUTORS = ("process", "thread", "serial", "remote")
DEFAULT_EXECUTOR = "process"

#: One unit of work: (schema, delegate factory,
#: [(global_cid, fragment)] evaluated natively, [(global_cid, fragment)]
#: summarised, rows, want_breakdown).
_ShardTask = tuple[
    RelationSchema,
    Callable[..., DetectorBackend],
    list[tuple[int, ECFD]],
    list[tuple[int, ECFD]],
    list[tuple[int, dict[str, str]]],
    bool,
]


def _remap_cids(violations: ViolationSet, mapping: Mapping[int, int]) -> ViolationSet:
    """Rewrite a shard-local violation set onto global constraint identifiers.

    Flag-only sets (the SQL delegates) keep their tid-sets untouched;
    detailed records (the naive delegate) get their ``constraint_id``
    translated so merged breakdowns attribute violations correctly.
    """
    remapped = ViolationSet.from_flags(violations.sv_tids, violations.mv_tids)
    for record in violations.single_records:
        remapped.add_single(
            SingleTupleViolation(
                tid=record.tid,
                constraint_id=mapping.get(record.constraint_id, record.constraint_id),
                attribute=record.attribute,
            )
        )
    for record in violations.multi_records:
        remapped.add_multi(
            MultiTupleViolation(
                constraint_id=mapping.get(record.constraint_id, record.constraint_id),
                lhs_values=record.lhs_values,
                tids=record.tids,
            )
        )
    return remapped


def _load_shard(
    backend: DetectorBackend,
    schema: RelationSchema,
    rows: list[tuple[int, dict[str, str]]],
) -> None:
    """Load ``(tid, row)`` pairs into a freshly built delegate backend."""
    database = backend.database
    if database is not None:
        # SQL delegates: straight into the substrate, one pass, tids kept.
        database.insert_tuples([row for _, row in rows], tids=[tid for tid, _ in rows])
    else:
        shard = Relation(schema)
        for tid, row in rows:
            shard.insert_with_tid(tid, row)
        backend.load_relation(shard)


@rpc_op("detect_shard", idempotent=True)
def _detect_shard(
    task: _ShardTask,
) -> tuple[ViolationSet, dict[int, dict[str, int]], Summary]:
    """Run one delegate backend over one shard (executes inside a worker).

    Stateless — the delegate is built, run and discarded — hence declared
    idempotent: a retry after an ambiguous transport failure re-runs the
    same pure computation.  Returns the shard's violation set (keyed by
    global constraint identifiers), its per-constraint breakdown (empty
    unless requested — for the SQL delegates it costs an extra grouped
    ``Q_sv`` pass) and its group summaries for the summary fragments.
    """
    schema, factory, fragments, summary_fragments, rows, want_breakdown = task
    local_sigma = ECFDSet([fragment for _, fragment in fragments])
    # Single-pattern fragments normalize 1:1 in order, so the delegate's
    # local CIDs are simply 1..k over the fragment list.
    mapping = {local: cid for local, (cid, _) in enumerate(fragments, start=1)}

    backend = factory(schema=schema, sigma=local_sigma, path=":memory:")
    try:
        _load_shard(backend, schema, rows)
        violations = backend.detect()
        breakdown = backend.breakdown() if want_breakdown else {}
        summary = backend.fd_group_summary(summary_fragments) if summary_fragments else {}
    finally:
        backend.close()
    return (
        _remap_cids(violations, mapping),
        {mapping.get(cid, cid): dict(stats) for cid, stats in breakdown.items()},
        summary,
    )


# ----------------------------------------------------------------------
# Stateful shard workers (sharded INCDETECT)
# ----------------------------------------------------------------------
#: Persistent per-shard delegate states, keyed by a coordinator-chosen
#: namespace.  The dict lives wherever the shard's lane runs its tasks: in
#: each lane *process* for ``executor="process"`` (every worker process has
#: its own copy of this module), in the parent process for ``"thread"`` and
#: ``"serial"``.  Keys embed the coordinating backend's namespace, so
#: backends sharing one process never collide.
_SHARD_STATES: dict[str, "_ShardState"] = {}

#: Monotonic namespace source for shard-state keys (unique per process).
_STATE_NAMESPACES = _counter(1)


class _ShardState:
    """One live shard: its delegate backend, CID map and summary fragments."""

    __slots__ = ("backend", "mapping", "summary_fragments")

    def __init__(
        self,
        backend: DetectorBackend,
        mapping: Mapping[int, int],
        summary_fragments: list[tuple[int, ECFD]],
    ):
        self.backend = backend
        self.mapping = mapping
        self.summary_fragments = summary_fragments


#: Bootstrap work unit: (state key, schema, delegate factory,
#: [(global_cid, fragment)] evaluated natively, [(global_cid, fragment)]
#: summarised, shard rows).
_BootstrapTask = tuple[
    str,
    RelationSchema,
    Callable[..., DetectorBackend],
    list[tuple[int, ECFD]],
    list[tuple[int, ECFD]],
    list[tuple[int, dict[str, str]]],
]

#: Update work unit: (state key, routed ΔD⁻ (tid, row) pairs, routed ΔD⁺
#: (tid, row) pairs).  Deletions carry their coordinator-resolved values so
#: the lane can emit the summary delta without re-reading storage.
_UpdateTask = tuple[
    str,
    list[tuple[int, dict[str, str]]],
    list[tuple[int, dict[str, str]]],
]


@rpc_op("bootstrap", idempotent=True)
def _shard_bootstrap(task: _BootstrapTask) -> tuple[str, ViolationSet, Summary]:
    """Build one persistent shard state (runs inside the shard's lane).

    Loads the shard rows with their *global* tids, initialises the
    delegate's maintained state (for INCDETECT: the batch pass computing
    flags, Aux(D) and macro rows) and parks the live backend in
    :data:`_SHARD_STATES` for later :func:`_shard_update` calls.  Declared
    idempotent because a re-run *overwrites*: any previous state at the
    key is dropped before the rebuild, so a retry after an ambiguous
    failure lands on the same state.  Returns the shard's violation set on
    global constraint identifiers together with its full group summary,
    which seeds the coordinator's store.
    """
    key, schema, factory, fragments, summary_fragments, rows = task
    local_sigma = ECFDSet([fragment for _, fragment in fragments])
    mapping = {local: cid for local, (cid, _) in enumerate(fragments, start=1)}

    backend = factory(schema=schema, sigma=local_sigma, path=":memory:")
    _load_shard(backend, schema, rows)
    backend.ensure_ready()
    summary = backend.fd_group_summary(summary_fragments) if summary_fragments else {}
    _SHARD_STATES[key] = _ShardState(backend, mapping, list(summary_fragments))
    return key, _remap_cids(backend.detect(), mapping), summary


@rpc_op("update", idempotent=False)
def _shard_update(
    task: _UpdateTask,
) -> tuple[str, ViolationSet, SummaryDelta, dict | None]:
    """Apply one routed delta to a live shard state (runs inside its lane).

    Declared **non-idempotent**: a reply lost after execution would
    double-apply the delta on a blind retry, so this op is never retried —
    its failure path is lane loss and re-bootstrap from coordinator
    storage.  Work is INCDETECT's: a fixed number of SQL statements
    touching only the affected groups of this shard, plus a pattern match
    per (delta tuple, summary fragment) pair for the summary delta.
    Inserted tuples keep their coordinator-assigned global tids.  Returns
    the shard's *new* violation set (maintained by flag deltas — readback
    proportional to the affected groups), the summary delta of this slice,
    and the delegate's readback diagnostics.
    """
    key, delete_pairs, insert_pairs = task
    state = _SHARD_STATES[key]
    delta: SummaryDelta = {}
    if state.summary_fragments:
        # Emitted by the backend so the LHS-match semantics are the same
        # ones its full bootstrap summary used (Python matching for
        # in-memory delegates, stringified constants for SQL delegates).
        delta = state.backend.fd_summary_delta(
            state.summary_fragments, delete_pairs, insert_pairs
        )
    violations = state.backend.incremental_update(
        [tid for tid, _ in delete_pairs],
        [row for _, row in insert_pairs],
        insert_tids=[tid for tid, _ in insert_pairs],
    )
    readback = getattr(state.backend, "last_readback", None)
    return key, _remap_cids(violations, state.mapping), delta, readback


@rpc_op("breakdown", idempotent=True)
def _shard_breakdown(key: str) -> tuple[str, dict[int, dict[str, int]]]:
    """Read one live shard's per-constraint statistics on global CIDs.

    Computed from the shard's *maintained* state (Aux(D), macro rows, plus
    the delegate's grouped ``Q_sv`` pass over the shard) — cost is bounded
    by the shard, never by a whole-relation re-detection.  Summary
    fragments contribute their SV statistics here (their pattern projection
    is part of the shard's Σ); their MV statistics come from the
    coordinator's summary store.
    """
    state = _SHARD_STATES[key]
    breakdown = state.backend.breakdown()
    return key, {
        state.mapping.get(cid, cid): dict(stats) for cid, stats in breakdown.items()
    }


@rpc_op("state_stats", idempotent=True)
def _shard_state_stats(key: str) -> tuple[str, dict[str, int]]:
    """Read one live shard's state statistics (tuples, Aux(D), macro rows)."""
    state = _SHARD_STATES[key]
    stats = getattr(state.backend, "state_stats", None)
    if stats is not None:
        return key, dict(stats())
    return key, {"tuples": state.backend.count()}


@rpc_op("drop", idempotent=True)
def _shard_drop(key: str) -> str:
    """Tear down one shard state (close its database, free its memory)."""
    state = _SHARD_STATES.pop(key, None)
    if state is not None:
        state.backend.close()
    return key


@rpc_op("full_summary", idempotent=True)
def _shard_full_summary(key: str) -> tuple[str, Summary]:
    """Re-emit one live shard's current full group summary (recovery path).

    Read-only over the maintained state, hence declared idempotent — safe
    to retry over a reconnect.  On a remote worker the summary is *held*
    for the follow-up reduce instead of being returned (see
    :mod:`repro.parallel.worker`).
    """
    state = _SHARD_STATES[key]
    summary = (
        state.backend.fd_group_summary(state.summary_fragments)
        if state.summary_fragments
        else {}
    )
    return key, summary


#: Remote fabric dispatch: the shard functions above, named as worker ops.
#: Derived from the functions' ``@rpc_op`` declarations — the registry in
#: :mod:`repro.parallel.transport` is the single source of truth for op
#: names *and* idempotency, so whether a call may be retried is a declared,
#: machine-checked fact (``is_idempotent``) instead of a hand-kept set.
#: The remote executor sends the op name and the *same* task payload the
#: in-host lanes pass positionally; :mod:`repro.parallel.worker` routes it
#: back to the identical function on the worker's copy of this module.
_REMOTE_OPS: dict[Callable, str] = {
    fn: fn.__rpc_op__.name
    for fn in (
        _detect_shard,
        _shard_bootstrap,
        _shard_update,
        _shard_breakdown,
        _shard_state_stats,
        _shard_drop,
        _shard_full_summary,
    )
}


class ShardedBackend(InMemoryRelationBackend):
    """Shared-nothing sharded detection over a pluggable delegate backend.

    Storage lives in the in-memory relation of the shared base class; every
    ``detect()`` partitions it once according to the single-pass plan and
    fans the shards out as one-shot tasks, merging flag sets and group
    summaries exactly.  With an incremental-capable delegate the backend
    additionally supports :meth:`incremental_update` (sharded INCDETECT):
    persistent per-shard delegate states live in stateful shard *lanes*,
    each update only touches the shards its routed delta lands on, and the
    coordinator's summary store absorbs the lanes' summary deltas — see the
    module docstring for the full protocol.

    Parameters
    ----------
    schema / sigma / path:
        As for every backend; shard databases are always per-worker and
        in-memory, so a file-backed ``path`` is rejected rather than
        silently dropped — callers wanting on-disk persistence need a
        single-threaded SQL backend.
    delegate:
        Registry name of the backend run on every shard (``"naive"``,
        ``"batch"`` or ``"incremental"``); resolved to its factory at
        construction time.  ``supports_incremental`` is read from the
        resolved *factory* (see the module docstring for the function-
        factory contract), so ``delegate="incremental"`` makes the engine
        route ``apply_update`` through sharded INCDETECT while ``"naive"``
        / ``"batch"`` keep the recompute fallback.
    workers:
        Number of shards and pool size; defaults to the machine's CPU
        count.
    executor:
        ``"process"`` (default), ``"thread"``, ``"serial"`` or
        ``"remote"``.  The remote executor runs every shard lane on a
        standalone worker process (``python -m repro.parallel.worker``)
        over the length-prefixed RPC transport; lanes are *pinned* to
        workers so INCDETECT shard state survives across calls, and on a
        worker death or call timeout the coordinator re-pins the lost
        lanes and re-bootstraps **only their shards** from its own storage
        (never a hidden full re-detection — ``full_detect_count`` stays
        put).  Bootstrap summaries are merged worker-side by a reduce
        stage before they cross the network, one partial per worker.
    remote_workers:
        Remote-executor worker fleet (ignored otherwise): a list of
        ``"host:port"`` addresses (or ``(host, port)`` pairs) naming
        external workers, or an integer to spawn that many localhost
        workers owned (and stopped) by the backend.  ``None`` reads the
        ``REPRO_REMOTE_WORKERS`` environment variable and falls back to
        spawning ``min(workers, 4)`` locals.
    rpc_timeout:
        Per-call reply deadline of the remote executor, seconds.  An
        overdue call loses its lane (recovery re-bootstraps the shard).

    Attributes
    ----------
    last_update_trace:
        Diagnostics of the most recent :meth:`incremental_update` /
        :meth:`incremental_update_many` call:
        ``shards_total`` / ``shards_touched`` (states live vs. tasked this
        update), ``routed_deletes`` / ``routed_inserts`` (delta tuples
        routed — each exactly once under the single-pass plan),
        ``batches`` / ``lane_tasks`` (pipelined batch count and the lane
        tasks they fanned out to),
        ``summary_groups_touched`` (merged groups the update's summary
        deltas landed in), ``readback_tids`` (flags read back across the
        touched shards — bounded by their maintained violation sets, never
        |D|) and
        ``bootstrap`` (whether this call built the shard states).  ``None``
        until the first incremental update.
    full_detect_count:
        Number of full sharded detection passes run so far — the
        "no hidden recompute" counter the incremental tests assert on.
        ``detect()`` with live shard states serves the merged maintained
        state and leaves this counter untouched.
    """

    name = "sharded"

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
        delegate: str = "batch",
        workers: int | None = None,
        executor: str = DEFAULT_EXECUTOR,
        remote_workers: "int | str | Sequence | None" = None,
        rpc_timeout: float = 30.0,
    ):
        super().__init__(schema, sigma, path)
        if path != ":memory:":
            raise EngineError(
                "the sharded backend stores data in memory and cannot honour "
                f"path={path!r}; use a single-threaded SQL backend for "
                "file-backed storage"
            )
        if delegate == self.name:
            raise EngineError("the sharded backend cannot delegate to itself")
        if executor not in _EXECUTORS:
            raise EngineError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if remote_workers is not None and executor != "remote":
            raise EngineError(
                "remote_workers only applies to executor='remote' "
                f"(got executor={executor!r})"
            )
        self.delegate = delegate
        self._delegate_factory = resolve_backend_factory(delegate)
        # The sharded backend maintains violations incrementally exactly
        # when its per-shard delegate can; the flag is per-instance because
        # it depends on the delegate chosen at construction time.
        self.supports_incremental = bool(
            getattr(self._delegate_factory, "supports_incremental", False)
        )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        self.executor = executor
        self._plan: PartitionPlan = plan_partitions(self.sigma)
        # Σ is fixed for the backend's lifetime, so the old clustered plan's
        # replication baseline is a constant — computed once, not per
        # partition_stats() call (the benchmarks read stats inside timed
        # regions).
        self._clustered_replication = cluster_replication_factor(self.sigma)
        self._pool: Executor | None = None
        self._last_violations: ViolationSet | None = None
        self._last_breakdown: dict[int, dict[str, int]] | None = None
        #: Wire size / group counts of the most recent summary exchange
        #: (one-shot detection or shard bootstrap), for partition_stats().
        self._summary_trace: dict = {"groups": 0, "bytes": 0, "witnesses": 0}
        # --- stateful shard lanes (sharded INCDETECT) ---
        self._lanes: list[Executor] | None = None
        self._states_live = False
        #: shard_index -> state key, for every live shard state.  Lanes
        #: are 1:1 with shards under the single-pass plan: shard *i*'s
        #: state lives on (and is only ever addressed through) lane *i*.
        self._shard_layout: dict[int, str] = {}
        self._shard_violations: dict[str, ViolationSet] = {}
        #: The coordinator's merged cross-shard group summaries (live
        #: alongside the shard states; fed full summaries at bootstrap and
        #: signed deltas on every update).
        self._summary_store = SummaryStore()
        self.last_update_trace: dict | None = None
        self.full_detect_count = 0
        # --- remote fabric (executor="remote") ---
        self._remote_workers = remote_workers
        self._rpc_timeout = rpc_timeout
        self._remote_pool: RemoteWorkerPool | None = None
        #: Localhost workers this backend spawned (and must stop); empty
        #: when the fleet is external.
        self._owned_workers: list = []
        #: Recovery epoch embedded in state keys: re-bootstrapped shards get
        #: fresh keys, so a straggling reply addressed to a lost state can
        #: never be mistaken for the recovered one.
        self._state_epoch = 0
        self._state_namespace = ""

    def _on_mutation(self) -> None:
        self._last_violations = None
        self._last_breakdown = None
        # Out-of-band storage changes invalidate the maintained per-shard
        # INCDETECT states; the next incremental update bootstraps afresh.
        self._invalidate_shard_states()

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _build_tasks(self, want_breakdown: bool) -> list[_ShardTask]:
        # Materialise every stored tuple once; values are already text
        # (every ingestion path stringifies), so this is a plain dict copy.
        rows = [
            (t.tid, t.as_dict())
            for t in self._relation.tuples()
            if t.tid is not None
        ]
        factory = self._delegate_factory
        if self.workers <= 1:
            # One shard, whole Σ — byte-for-byte the delegate's own pass.
            return [
                (self.schema, factory, list(self.sigma.normalize()), [], rows, want_breakdown)
            ]
        fragments = self._plan.shard_fragments()
        if not fragments:
            return []
        tasks: list[_ShardTask] = []
        for shard in bucket_rows(rows, self._plan.key, self.workers):
            if shard:
                tasks.append(
                    (
                        self.schema,
                        factory,
                        fragments,
                        self._plan.summary_fragments,
                        shard,
                        want_breakdown,
                    )
                )
        return tasks

    def _ensure_pool(self, task_count: int) -> Executor | None:
        """The reusable worker pool (``None`` for serial / single-task runs).

        Pool start-up (forking or spawning up to ``workers`` processes) is a
        fixed cost worth paying once, not once per detection, so the pool is
        created lazily and kept alive until :meth:`close`.
        """
        if self.executor == "serial" or min(self.workers, task_count) <= 1:
            return None
        if self._pool is None:
            pool_class = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
            self._pool = pool_class(max_workers=self.workers)
        return self._pool

    def detect(self) -> ViolationSet:
        if self._states_live and self._last_violations is not None:
            # The shard states maintain vio(D) exactly across updates —
            # serve the merged live state instead of re-fanning out a
            # hidden one-shot detection (full_detect_count stays put).
            return self._last_violations
        return self._detect(want_breakdown=False)

    def detect_with_breakdown(self) -> ViolationSet:
        if self._states_live and self._last_violations is not None:
            # breakdown() below reads the maintained per-shard statistics
            # and the summary store; no full pass needed here either.
            return self._last_violations
        # Collect violations and per-constraint statistics in ONE sharded
        # pass; a later breakdown() call then hits the cache instead of
        # repeating the whole detection.
        return self._detect(want_breakdown=True)

    def _merge_summary_breakdown(
        self, breakdown: dict[int, dict[str, int]], store: SummaryStore
    ) -> dict[int, dict[str, int]]:
        """Fold the store's MV statistics for summary fragments into a breakdown."""
        for cid, stats in store.per_constraint_stats().items():
            slot = breakdown.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})
            slot["mv_groups"] += stats["mv_groups"]
            slot["mv_tuples"] += stats["mv_tuples"]
        return breakdown

    def _detect(self, want_breakdown: bool) -> ViolationSet:
        self.full_detect_count += 1
        tasks = self._build_tasks(want_breakdown)
        merged = ViolationSet()
        breakdown: dict[int, dict[str, int]] = {}
        store = SummaryStore()
        summary_bytes = 0
        if tasks:
            if self.executor == "remote":
                results = self._remote_detect(tasks)
            else:
                pool = self._ensure_pool(len(tasks))
                if pool is None:
                    results = [_detect_shard(task) for task in tasks]
                else:
                    results = list(pool.map(_detect_shard, tasks))
            for shard_violations, shard_breakdown, shard_summary in results:
                merged.update(shard_violations)
                if shard_summary:
                    store.apply_summary(shard_summary)
                    summary_bytes += summary_nbytes(shard_summary)
                for cid, stats in shard_breakdown.items():
                    slot = breakdown.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})
                    for key, value in stats.items():
                        slot[key] = slot.get(key, 0) + value
            # Cross-shard merge: the multi-tuple violations of the summary
            # fragments, reconstructed from the folded group summaries.
            merged.update(store.violations())
        self._summary_trace = {
            "groups": store.group_count(),
            "bytes": summary_bytes,
            "witnesses": store.witness_count(),
        }
        self._last_violations = merged
        if want_breakdown:
            self._last_breakdown = dict(
                sorted(self._merge_summary_breakdown(breakdown, store).items())
            )
        # A plain detect leaves any cached breakdown alone: the data has not
        # changed since it was computed (mutations invalidate both).
        return merged

    # ------------------------------------------------------------------
    # Remote fabric (executor="remote")
    # ------------------------------------------------------------------
    def _ensure_remote_pool(self) -> RemoteWorkerPool:
        """The lane pool over the worker fleet, spawning locals if owed.

        Built lazily — constructing the backend must not fork worker
        processes the caller may never use — and kept until :meth:`close`.
        """
        if self._remote_pool is None:
            addresses, spawn = resolve_worker_addresses(
                self._remote_workers, default_spawn=min(self.workers, 4)
            )
            if spawn:
                self._owned_workers = spawn_local_workers(spawn)
                addresses = [handle.address for handle in self._owned_workers]
            self._remote_pool = RemoteWorkerPool(
                addresses, rpc_timeout=self._rpc_timeout
            )
        return self._remote_pool

    def _remote_detect(self, tasks: list[_ShardTask]) -> list:
        """One-shot detection fanned out over the remote lanes.

        ``detect_shard`` is stateless (the worker builds, runs and discards
        the delegate), so a lane failure here is absorbed by one re-pin and
        a resubmission of the failed tasks — no shard state is at stake.  A
        second failure propagates: with no healthy worker left there is
        nothing to recover onto.
        """
        pool = self._ensure_remote_pool()
        lanes = [index % max(1, self.workers) for index in range(len(tasks))]
        pending = [
            pool.submit(lane, "detect_shard", task, retryable=True)
            for lane, task in zip(lanes, tasks)
        ]
        results: list = [None] * len(tasks)
        failed: list[int] = []
        for index, collect in enumerate(pending):
            try:
                results[index] = collect()
            except LaneFailedError:
                failed.append(index)
        if failed:
            pool.repin_lanes(sorted({lanes[index] for index in failed}))
            retries = [
                (index, pool.submit(lanes[index], "detect_shard", tasks[index], retryable=True))
                for index in failed
            ]
            for index, collect in retries:
                results[index] = collect()
        return results

    # ------------------------------------------------------------------
    # Incremental updates (sharded INCDETECT)
    # ------------------------------------------------------------------
    def _stateful_layout(self) -> list[tuple[int, list[tuple[int, ECFD]], list[tuple[int, ECFD]]]]:
        """The shard grid: ``(shard_index, native fragments, summary fragments)``.

        Mirrors :meth:`_build_tasks` exactly — ``workers <= 1`` collapses to
        one whole-Σ shard (the plain delegate), otherwise the single-pass
        plan yields ``workers`` shards.  *Empty* shards are part of the grid
        too: an insert may route to a shard that held no tuples at
        bootstrap time, so its state must exist.
        """
        if self.workers <= 1:
            fragments = list(self.sigma.normalize())
            return [(0, fragments, [])] if fragments else []
        fragments = self._plan.shard_fragments()
        if not fragments:
            return []
        return [
            (shard, fragments, self._plan.summary_fragments)
            for shard in range(self.workers)
        ]

    def _submit_to_lanes(
        self, fn: Callable, tasks: list[tuple[int, object]]
    ) -> list[Callable[[], object]]:
        """Dispatch ``(lane, task)`` pairs to their pinned lanes without waiting.

        Returns one result thunk per task, in submission order — calling a
        thunk blocks until its task is done.  This is the pipelining
        primitive: a caller may submit several waves of tasks back to back
        and only then collect, so lane ``i`` starts wave ``N+1`` the moment
        it finishes its slice of wave ``N`` (tasks submitted to one lane run
        in order).  Serial execution (``executor="serial"`` or a single
        worker) runs inline at submission time — shard states then live in
        this process's module dict — which is the degenerate pipeline.
        Otherwise each lane is a single-worker pool created on first use and
        kept alive until :meth:`close`, so the states it holds survive
        between calls.

        Under ``executor="remote"`` a lane is a pinned worker connection
        instead: the function is translated to its worker op
        (:data:`_REMOTE_OPS`) and the payload crosses the RPC transport
        unchanged.  Same contract — per-lane FIFO, thunks in submission
        order — with one addition: a thunk may raise
        :class:`~repro.exceptions.LaneFailedError` when the lane's worker
        died, which the update path turns into shard re-bootstrap.
        """
        if self.executor == "remote":
            pool = self._ensure_remote_pool()
            op = _REMOTE_OPS[fn]
            return [
                pool.submit(lane, op, task, retryable=is_idempotent(op))
                for lane, task in tasks
            ]
        if self.executor == "serial" or self.workers <= 1:
            results = [fn(task) for _, task in tasks]
            return [lambda result=result: result for result in results]
        if self._lanes is None:
            pool_class = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
            self._lanes = [pool_class(max_workers=1) for _ in range(self.workers)]
        futures = [self._lanes[lane].submit(fn, task) for lane, task in tasks]
        return [future.result for future in futures]

    def _run_in_lanes(self, fn: Callable, tasks: list[tuple[int, object]]) -> list:
        """Run ``(lane, task)`` pairs on their pinned lanes and gather results."""
        return [collect() for collect in self._submit_to_lanes(fn, tasks)]

    def _ensure_shard_states(self) -> bool:
        """Bootstrap the persistent per-shard INCDETECT states once.

        Returns ``True`` when this call performed the bootstrap (the full
        per-shard initialisation pass, seeding the summary store from the
        shards' full summaries), ``False`` when the states were already
        live.  Not meaningful for non-incremental delegates, which raise
        instead.
        """
        if not self.supports_incremental:
            raise EngineError(
                f"sharded delegate {self.delegate!r} does not support incremental "
                "updates; use delegate='incremental' (or any backend advertising "
                "supports_incremental) for sharded INCDETECT"
            )
        if self._states_live:
            return False
        self._state_namespace = f"sharded-{os.getpid()}-{next(_STATE_NAMESPACES)}"
        self._state_epoch = 0
        rows = [
            (t.tid, t.as_dict())
            for t in self._relation.tuples()
            if t.tid is not None
        ]
        factory = self._delegate_factory
        self._shard_layout = {}
        self._summary_store = SummaryStore()
        tasks: list[tuple[int, _BootstrapTask]] = []
        buckets: list[list[tuple[int, dict[str, str]]]] | None = None
        for shard_index, fragments, summary_fragments in self._stateful_layout():
            if self.workers <= 1:
                shard_rows = rows
            else:
                if buckets is None:
                    buckets = bucket_rows(rows, self._plan.key, self.workers)
                shard_rows = buckets[shard_index]
            key = self._state_key(shard_index)
            self._shard_layout[shard_index] = key
            tasks.append(
                (shard_index, (key, self.schema, factory, fragments, summary_fragments, shard_rows))
            )
        try:
            results = self._run_in_lanes(_shard_bootstrap, tasks)
        except Exception:  # noqa: BLE001 - invalidate the partial bootstrap, then re-raise unchanged
            # A partial bootstrap (some lanes built states, one failed)
            # must not linger: drop whatever was parked and start over on
            # the next call.
            self._invalidate_shard_states()
            raise
        summary_bytes = 0
        self._shard_violations = {}
        for key, violations, shard_summary in results:
            self._shard_violations[key] = violations
            if shard_summary:
                self._summary_store.apply_summary(shard_summary)
                summary_bytes += summary_nbytes(shard_summary)
        if self.executor == "remote":
            # Remote bootstraps return no summaries: each worker *held* its
            # lanes' full summaries, and the reduce stage merges them
            # worker-side — one partial per worker crosses the network
            # instead of one O(|shard|) summary per shard.
            try:
                summary_bytes = self._reduce_held_summaries(dict(self._shard_layout))
            except Exception:  # noqa: BLE001 - invalidate the partial bootstrap, then re-raise unchanged
                self._invalidate_shard_states()
                raise
        self._summary_trace = {
            "groups": self._summary_store.group_count(),
            "bytes": summary_bytes,
            "witnesses": self._summary_store.witness_count(),
        }
        self._last_violations = self._merge_shard_violations()
        self._states_live = True
        return True

    def _state_key(self, shard_index: int) -> str:
        """The state key of ``shard_index`` at the current recovery epoch."""
        return f"{self._state_namespace}:{self._state_epoch}:{shard_index}"

    def _reduce_held_summaries(self, layout: Mapping[int, str]) -> int:
        """Fold the workers' held summaries into the store, one call per worker.

        ``layout`` maps shard index (= lane) to the state key whose held
        summary should be claimed.  Each worker merges its lanes' summaries
        locally (:func:`repro.detection.summaries.merge_summaries`) and
        ships one partial; folding the partials is exact because shards
        partition the relation.  Returns the wire bytes of the partials.
        ``reduce_summaries`` pops what it merges, so this is a one-shot
        claim — a failure means the lanes on that worker are lost and the
        caller re-requests fresh summaries after recovery.
        """
        pool = self._ensure_remote_pool()
        summary_bytes = 0
        pending = []
        for _address, lanes in sorted(pool.lanes_by_address(layout).items()):
            keys = [layout[lane] for lane in lanes]
            pending.append(pool.submit(lanes[0], "reduce_summaries", keys))
        for collect in pending:
            partial = collect()
            if partial:
                self._summary_store.apply_summary(partial)
                summary_bytes += summary_nbytes(partial)
        return summary_bytes

    def _recover_remote_lanes(self, failed_lanes: set[int], outcomes: list) -> dict:
        """Re-pin lost lanes and re-bootstrap only their shards; exact by design.

        The coordinator's storage receives every batch *before* the lanes
        do, so at any failure point storage already holds the post-update
        relation: re-bootstrapping a lost shard from storage lands on
        exactly the state a surviving lane would have reached by applying
        the deltas — that is what makes kill-a-worker-mid-update recovery
        bit-exact.  The procedure:

        1. widen the lost set to every lane pinned to a worker that no
           longer answers a ping (an unprobed dead worker would fail the
           next call anyway — better one recovery than many);
        2. re-pin the lost lanes onto healthy workers and re-bootstrap
           their shards from storage under fresh epoch keys (summaries
           held worker-side);
        3. rebuild the summary store from scratch: every surviving lane
           re-emits (and holds) its current full summary, then one reduce
           per worker claims everything — this round's in-flight summary
           deltas are *discarded*, because the fresh full summaries already
           reflect every update the survivors applied.

        Successful lane results collected before the failure carry those
        shards' current flag sets and are folded in by the caller; lost
        shards get theirs from the re-bootstrap.  A failure *during*
        recovery widens the lost set and retries, bounded by the fleet
        size; with no healthy worker left a
        :class:`~repro.exceptions.FabricError` propagates (and the caller
        invalidates all shard states, as for any unrecoverable failure).
        Never triggers a full detection — ``full_detect_count`` is
        untouched.
        """
        pool = self._ensure_remote_pool()
        lost = set(failed_lanes)
        # Fold the flags of every lane task that *did* complete; a lane that
        # completed some batches and then died is in ``lost`` and gets its
        # state rebuilt below, overwriting this.
        for key, violations, _delta, _readback in outcomes:
            self._shard_violations[key] = violations
        attempts = 0
        while True:
            attempts += 1
            if attempts > len(pool.addresses) + 1:
                raise FabricError(
                    f"remote recovery did not converge after {attempts - 1} "
                    f"attempts; lost lanes: {sorted(lost)}"
                )
            health = pool.probe_addresses()
            lost.update(
                lane
                for lane in self._shard_layout
                if not health.get(pool.lane_address(lane), False)
            )
            pool.repin_lanes(sorted(lost))
            try:
                self._rebootstrap_shards(sorted(lost))
                summary_bytes = self._rebuild_summary_store(lost)
                break
            except LaneFailedError as exc:
                lost.add(exc.lane)
        self._summary_trace = {
            "groups": self._summary_store.group_count(),
            "bytes": summary_bytes,
            "witnesses": self._summary_store.witness_count(),
        }
        return {
            "lanes_lost": sorted(lost),
            "recovered_shards": len(lost),
            "recovery_attempts": attempts,
        }

    def _rebootstrap_shards(self, shards: list[int]) -> None:
        """Rebuild the given shards' states from coordinator storage.

        Fresh epoch keys ensure nothing can confuse a rebuilt state with
        its lost predecessor; the bootstrap summaries stay held worker-side
        for the follow-up reduce.  Old keys are not dropped — they lived on
        dead workers (or die with the next worker restart) and their new
        epoch makes them unreachable either way.
        """
        if not shards:
            return
        self._state_epoch += 1
        rows = [
            (t.tid, t.as_dict())
            for t in self._relation.tuples()
            if t.tid is not None
        ]
        fragments_by_shard = {
            shard: (fragments, summary_fragments)
            for shard, fragments, summary_fragments in self._stateful_layout()
        }
        buckets = (
            bucket_rows(rows, self._plan.key, self.workers) if self.workers > 1 else None
        )
        tasks: list[tuple[int, _BootstrapTask]] = []
        for shard in shards:
            fragments, summary_fragments = fragments_by_shard[shard]
            shard_rows = rows if buckets is None else buckets[shard]
            key = self._state_key(shard)
            tasks.append(
                (
                    shard,
                    (key, self.schema, self._delegate_factory, fragments, summary_fragments, shard_rows),
                )
            )
        results = self._run_in_lanes(_shard_bootstrap, tasks)
        for (shard, task), (key, violations, _held) in zip(tasks, results):
            self._shard_violations.pop(self._shard_layout.get(shard, ""), None)
            self._shard_layout[shard] = key
            self._shard_violations[key] = violations

    def _rebuild_summary_store(self, freshly_bootstrapped: set[int]) -> int:
        """Re-derive the summary store from the lanes' live states.

        Surviving lanes re-emit (and hold) their current full group
        summaries — ``full_summary`` is idempotent, so a retry after a
        reconnect is safe — the freshly bootstrapped lanes already hold
        theirs, and one reduce per worker claims the lot into a brand-new
        store.
        """
        survivors = sorted(
            lane for lane in self._shard_layout if lane not in freshly_bootstrapped
        )
        pending = [
            (lane, self._shard_layout[lane]) for lane in survivors
        ]
        self._run_in_lanes(_shard_full_summary, pending)
        self._summary_store = SummaryStore()
        return self._reduce_held_summaries(dict(self._shard_layout))

    def _merge_shard_violations(self) -> ViolationSet:
        """The exact union of every live shard's current violation set.

        Per-shard flags cover the single-tuple violations and the local
        fragments' multi-tuple ones; the summary store contributes the
        cross-shard multi-tuple violations.  Shards partition the relation,
        so the union equals a single-threaded pass; cost is proportional to
        the number of violations, never |D|.
        """
        merged = ViolationSet()
        for violations in self._shard_violations.values():
            merged.update(violations)
        merged.update(self._summary_store.violations())
        return merged

    def _invalidate_shard_states(self) -> None:
        """Tear down the per-shard states after an out-of-band mutation.

        Drops run *on the owning lanes*: a shard's SQLite connection may
        only be closed by the thread that created it, and process-lane
        states do not even exist in this process.  A lane that already died
        cannot run its drop — its states die with it, so the teardown just
        proceeds to the pool shutdown.
        """
        if not self._states_live and self._lanes is None:
            return
        if self._shard_layout:
            tasks = [
                (shard, key) for shard, key in self._shard_layout.items()
            ]
            try:
                self._run_in_lanes(_shard_drop, tasks)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        if self._lanes is not None:
            for lane in self._lanes:
                lane.shutdown()
            self._lanes = None
        self._shard_layout = {}
        self._shard_violations = {}
        self._summary_store = SummaryStore()
        self._states_live = False

    def ensure_ready(self) -> None:
        """Bootstrap the shard states so update timing excludes initialisation.

        Called by the engine before timing :meth:`incremental_update`; a
        no-op for non-incremental delegates (their update path is
        ``apply_delta`` + full detection, which has no maintained state).
        """
        if self.supports_incremental:
            self._ensure_shard_states()

    def incremental_update(
        self,
        delete_tids: Sequence[int],
        insert_rows: Sequence[Mapping[str, Value]],
        insert_tids: Sequence[int] | None = None,
    ) -> ViolationSet:
        """Sharded INCDETECT: maintain vio(D) touching only the routed shards.

        Deletions are resolved to their stored rows (both the hash key and
        the summary delta need the values) and applied first; insertions
        get fresh ``max(tid) + 1`` identifiers — the same discipline as
        every other backend — unless ``insert_tids`` pins them.  The
        single-pass plan routes every delta tuple to exactly one shard;
        only those shards receive work.  The returned violation set is the
        exact merge of every shard's maintained flags and the delta-updated
        summary store.

        Failure semantics: if a shard task (or a dying lane) raises after
        the delta was applied to coordinator storage, the per-shard states
        are *invalidated* before the exception propagates — storage keeps
        the applied delta and the next call bootstraps afresh from it, so a
        stale shard cache can never silently misreport violations.  (A
        caught-and-retried failure may therefore duplicate the inserted
        rows under fresh tids, like any retried ``apply_delta``.)
        """
        return self.incremental_update_many([(delete_tids, insert_rows, insert_tids)])

    def incremental_update_many(
        self,
        batches: Sequence[
            tuple[Sequence[int], Sequence[Mapping[str, Value]], Sequence[int] | None]
        ],
    ) -> ViolationSet:
        """Pipelined sharded INCDETECT over an ordered batch sequence.

        Semantically a sequential replay of :meth:`incremental_update` per
        batch, but without the per-call coordinator round-trip: every batch
        is routed and its lane tasks *submitted* immediately (lanes process
        their tasks in submission order, so shard-local update order is
        preserved), and the coordinator waits at a single barrier after the
        last batch.  While lane ``i`` chews batch ``N``'s slice, the
        coordinator is already resolving, applying and routing batch
        ``N+1`` — the delta-routing single-point becomes a pipeline stage
        instead of a serial bottleneck.

        The merge stays exact: each lane result carries the shard's *full*
        maintained flag set after its task, so replacement-merging results
        in submission order leaves exactly the last (= final) contribution
        per shard; the signed summary deltas are folded in the same order
        (per-lane order is what correctness needs — deltas of different
        shards commute over the counted multisets).  Failure semantics are
        those of :meth:`incremental_update`: any lane failure invalidates
        the shard states, while coordinator storage keeps every batch that
        was applied to it.
        """
        bootstrap = self._ensure_shard_states()
        for _, insert_rows, insert_tids in batches:
            if insert_tids is not None and len(insert_tids) != len(insert_rows):
                raise EngineError("insert_tids and insert_rows must have the same length")
        total_deletes = 0
        total_inserts = 0
        touched_shards: set[int] = set()
        recovery: dict | None = None
        try:
            pending: list[Callable[[], object]] = []
            for delete_tids, insert_rows, insert_tids in batches:
                # --- apply ΔD⁻ to coordinator storage, resolving rows for routing ---
                delete_pairs: list[tuple[int, dict[str, str]]] = []
                for tid in delete_tids:
                    stored = self._relation.get(int(tid))
                    if stored is not None:
                        delete_pairs.append((int(tid), stored.as_dict()))
                for tid, _ in delete_pairs:
                    self._relation.delete(tid)

                # --- apply ΔD⁺, assigning global tids like every other backend ---
                if insert_tids is not None:
                    assigned = [int(tid) for tid in insert_tids]
                else:
                    start = self._max_tid() + 1
                    assigned = list(range(start, start + len(insert_rows)))
                insert_pairs = [
                    (tid, self._stringified(row)) for tid, row in zip(assigned, insert_rows)
                ]
                for tid, row in insert_pairs:
                    self._relation.insert_with_tid(tid, row)
                total_deletes += len(delete_pairs)
                total_inserts += len(insert_pairs)

                # --- route the batch and task only the touched shards ---
                if not self._shard_layout or (not delete_pairs and not insert_pairs):
                    routed = {}
                elif self.workers <= 1:
                    routed = {0: (delete_pairs, insert_pairs)}
                else:
                    routed = route_delta(self._plan, self.workers, delete_pairs, insert_pairs)
                touched_shards.update(routed)
                tasks: list[tuple[int, _UpdateTask]] = []
                for shard_index, (shard_deletes, shard_inserts) in sorted(routed.items()):
                    key = self._shard_layout[shard_index]
                    tasks.append((shard_index, (key, shard_deletes, shard_inserts)))
                pending.extend(self._submit_to_lanes(_shard_update, tasks))
            # --- the one barrier: collect every batch's lane results ---
            if self.executor == "remote":
                results, recovery = self._collect_remote_updates(pending)
            else:
                results = [collect() for collect in pending]
        except Exception:  # noqa: BLE001 - invalidate shard state so the next call re-bootstraps, then re-raise
            self._invalidate_shard_states()
            self._last_violations = None
            raise

        # --- exact delta merge: swap touched shards' flag contributions and
        # fold their summary deltas into the store ---
        groups_touched = 0
        readback_tids = 0
        delta_bytes = 0
        for key, violations, delta, readback in results:
            self._shard_violations[key] = violations
            if delta:
                groups_touched += self._summary_store.apply_delta(delta)
                delta_bytes += summary_nbytes(delta)
            if readback:
                readback_tids += readback.get("scanned", 0)
        merged = self._merge_shard_violations()
        self._last_violations = merged
        self._last_breakdown = None
        # The trace always describes the *most recent* summary exchange:
        # here the update's deltas, at bootstrap the full summaries.
        self._summary_trace = {
            "groups": self._summary_store.group_count(),
            "bytes": delta_bytes,
            "witnesses": self._summary_store.witness_count(),
        }
        self.last_update_trace = {
            "mode": "incremental",
            "bootstrap": bootstrap,
            "batches": len(batches),
            "lane_tasks": len(results),
            "shards_total": len(self._shard_layout),
            "shards_touched": len(touched_shards),
            "routed_deletes": total_deletes,
            "routed_inserts": total_inserts,
            "summary_groups_touched": groups_touched,
            "readback_tids": readback_tids,
        }
        if recovery is not None:
            self.last_update_trace.update(recovery)
        if self._remote_pool is not None:
            self.last_update_trace["transport"] = self._remote_pool.transport_stats()
        return merged

    def _collect_remote_updates(
        self, pending: Sequence[Callable[[], object]]
    ) -> tuple[list, dict | None]:
        """Collect remote lane results, recovering from lane losses.

        Without a failure this is the plain barrier.  When a lane died
        (worker killed, connection severed, call timed out) the completed
        results still carry their shards' exact current flags; the lost
        lanes go through :meth:`_recover_remote_lanes`, which rebuilds
        their shards from coordinator storage and re-derives the summary
        store — so the returned results list is empty then (flags and
        store are already final) and the caller's delta folding has
        nothing left to do.  :class:`~repro.exceptions.RemoteCallError`
        (the worker is fine, the operation raised) propagates like any
        in-process failure and invalidates the shard states.
        """
        outcomes = []
        failed_lanes: set[int] = set()
        for collect in pending:
            try:
                outcomes.append(collect())
            except LaneFailedError as exc:
                failed_lanes.add(exc.lane)
        if not failed_lanes:
            return outcomes, None
        return [], self._recover_remote_lanes(failed_lanes, outcomes)

    def shard_stats(self) -> list[dict]:
        """Per-shard state statistics from the live INCDETECT states.

        Bootstraps the states if needed (incremental delegates only) and
        returns one entry per shard — the shard index, the plan's partition
        ``key`` and the delegate's ``state_stats()`` (tuples, Aux(D)
        groups, macro rows) — so operators can see where the maintained
        memory actually lives instead of guessing.  (``cluster`` is always
        0 under the single-pass plan and kept for dashboard compatibility.)
        """
        self._ensure_shard_states()
        by_key = {
            state_key: shard_index
            for shard_index, state_key in self._shard_layout.items()
        }
        tasks = sorted(
            (shard, state_key) for shard, state_key in self._shard_layout.items()
        )
        results = self._run_in_lanes(_shard_state_stats, tasks)
        key = self._plan.key if self.workers > 1 else ()
        stats = []
        for state_key, shard_stats in results:
            entry = {
                "cluster": 0,
                "shard": by_key[state_key],
                "key": tuple(key),
                **shard_stats,
            }
            if self.executor == "remote":
                host, port = self._ensure_remote_pool().lane_address(entry["shard"])
                entry["address"] = f"{host}:{port}"
            stats.append(entry)
        return sorted(stats, key=lambda item: item["shard"])

    def transport_stats(self) -> dict[str, int] | None:
        """The remote fabric's transport counters, ``None`` off the remote path.

        Cumulative over the backend's lifetime: ``rpc_calls`` /
        ``rpc_retries``, ``bytes_sent`` / ``bytes_received`` on the wire,
        and the recovery counters ``lanes_lost`` / ``repins``.
        """
        if self._remote_pool is None:
            return None
        return self._remote_pool.transport_stats()

    def partition_stats(self) -> dict:
        """The single-pass plan and its replication / summary accounting.

        Reports the primary ``key``, the local/summary fragment split, the
        replication factor (1.0 by construction — every stored row ships to
        exactly one shard; ``clustered_replication_factor`` is what the
        pre-1.4 multi-pass plan would have shipped) and the group count /
        wire bytes of the most recent summary exchange.
        """
        return {
            "key": tuple(self._plan.key),
            "workers": self.workers,
            "local_fragments": len(self._plan.local_fragments),
            "summary_fragments": len(self._plan.summary_fragments),
            "replication_factor": self._plan.replication_factor,
            "clustered_replication_factor": self._clustered_replication,
            "summary_groups": self._summary_trace.get("groups", 0),
            "summary_bytes": self._summary_trace.get("bytes", 0),
            "summary_witnesses": self._summary_trace.get("witnesses", 0),
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def violation_counts(self) -> dict[str, int]:
        if self._last_violations is None:
            self.detect()
        assert self._last_violations is not None
        return self._last_violations.summary()

    def breakdown(self) -> dict[int, dict[str, int]]:
        # The per-constraint statistics cost the SQL delegates an extra
        # grouped Q_sv pass, so plain detect() skips them.  With live shard
        # states (after incremental updates) an uncached request is served
        # from the maintained per-shard state plus the summary store —
        # per-shard cost, and the update path never pays a hidden
        # whole-relation re-detection.  Without live states it triggers one
        # sharded pass collecting both violations and statistics.
        if self._last_breakdown is None and self._states_live:
            tasks = sorted(
                (shard, state_key)
                for shard, state_key in self._shard_layout.items()
            )
            merged: dict[int, dict[str, int]] = {}
            for _, shard_breakdown in self._run_in_lanes(_shard_breakdown, tasks):
                for cid, stats in shard_breakdown.items():
                    slot = merged.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})
                    for key, value in stats.items():
                        slot[key] = slot.get(key, 0) + value
            merged = self._merge_summary_breakdown(merged, self._summary_store)
            self._last_breakdown = dict(sorted(merged.items()))
        if self._last_breakdown is None:
            self._detect(want_breakdown=True)
        assert self._last_breakdown is not None
        return dict(self._last_breakdown)

    @property
    def summary_store(self) -> SummaryStore:
        """The coordinator's merged cross-shard group summaries (live view).

        Fed full summaries at bootstrap / one-shot detection and signed
        deltas on every incremental update.  Sharded repair reads its
        ``(cid, xv) → yv-multiset`` state to elect group fixes without
        pulling rows off the shards.
        """
        return self._summary_store

    def summary_fragment_cids(self) -> frozenset[int]:
        """Global CIDs of the fragments resolved through the summary merge.

        Empty for ``workers <= 1`` (one whole-Σ shard — every fragment is
        local, and the summary store stays unused).
        """
        if self.workers <= 1:
            return frozenset()
        return frozenset(cid for cid, _ in self._plan.summary_fragments)

    def shard_plan(self) -> list[tuple[tuple[str, ...], list[int]]]:
        """The plan's fragment sides as ``(key, [global CIDs])`` pairs.

        The first entry is the locally-evaluated side under the primary
        key; a second entry (present when Σ has summary fragments) carries
        the summary-merged side (its key is empty — those groups are merged
        across shards, not co-located).
        """
        entries = [
            (tuple(self._plan.key), sorted(cid for cid, _ in self._plan.local_fragments))
        ]
        if self._plan.summary_fragments:
            entries.append(
                ((), sorted(cid for cid, _ in self._plan.summary_fragments))
            )
        return entries

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the one-shot pool, the shard lanes and their states.

        Idempotent.  On the remote path the shard states are dropped on
        their workers first (while the connections are still open), then
        the pool's connections and event loop go down, and finally any
        workers this backend spawned are stopped — externally provided
        workers are left running.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._invalidate_shard_states()
        if self._remote_pool is not None:
            if self._owned_workers:
                self._remote_pool.shutdown_workers()
            self._remote_pool.close()
            self._remote_pool = None
        for handle in self._owned_workers:
            handle.stop()
        self._owned_workers = []


def detect_sharded(
    relation: Relation,
    sigma: ECFDSet | Sequence[ECFD],
    delegate: str = "batch",
    workers: int | None = None,
    executor: str = DEFAULT_EXECUTOR,
) -> ViolationSet:
    """One-shot sharded detection over an in-memory relation.

    Convenience wrapper used by scripts and benchmarks that do not need the
    full backend lifecycle.
    """
    backend = ShardedBackend(
        relation.schema, sigma, delegate=delegate, workers=workers, executor=executor
    )
    try:
        backend.load_relation(relation)
        return backend.detect()
    finally:
        backend.close()


register_backend(ShardedBackend.name, ShardedBackend)
