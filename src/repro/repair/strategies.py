"""Pluggable repair strategies and the string-keyed strategy registry.

Mirrors the detector-backend registry of :mod:`repro.engine.backends`: a
:class:`RepairStrategy` turns a dirty backend into a clean one, strategies
register under string names, and :meth:`repro.engine.DataQualityEngine.repair`
routes through the registry exactly like ``detect`` routes through the
backend registry.  Two strategies live here; the sharded strategy registers
itself from :mod:`repro.parallel.repair`:

* ``"greedy"`` — the baseline of Bohannon et al. (SIGMOD 2005) style: every
  round re-runs a full reference detection over the materialised relation
  (:class:`~repro.repair.repairer.GreedyRepairer`), then the accumulated
  fixes are applied to the backend in place;
* ``"incremental"`` — violation-driven repair over any backend advertising
  ``supports_incremental``: the violation set is **seeded once** (the
  backend's ``ensure_ready`` + maintained ``detect`` — for a live INCDETECT
  state this is free) and every round's fix batch is pushed through
  ``incremental_update`` as a delete+reinsert delta under the *same* tuple
  identifiers, so re-validation is INCDETECT delta maintenance — per-round
  cost proportional to the touched groups, never a full re-detection
  (asserted on the backend's ``full_detect_count`` trace counter).

Every strategy plans fixes with the shared
:class:`~repro.repair.fixes.FixPlanner`, so for the same data and Σ all
strategies produce bit-identical repaired relations and cell-change audits —
strategies differ in *cost*, never in outcome.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import ClassVar

from repro.analysis.satisfiability import is_satisfiable
from repro.core.ecfd import ECFD, ECFDSet
from repro.exceptions import EngineError, RepairError, UnknownStrategyError
from repro.repair.cost import CellChange, RepairCostModel
from repro.repair.fixes import FixPlanner, GroupCountsHook
from repro.repair.repairer import GreedyRepairer, RepairOutcome

__all__ = [
    "RepairStrategy",
    "GreedyRepairStrategy",
    "IncrementalRepairStrategy",
    "register_strategy",
    "unregister_strategy",
    "available_strategies",
    "create_strategy",
    "resolve_strategy_factory",
]


class RepairStrategy(ABC):
    """One repair strategy behind :meth:`~repro.engine.DataQualityEngine.repair`.

    Parameters
    ----------
    sigma:
        The eCFD workload the repaired data must satisfy.
    cost_model:
        Cell-change cost model for the audit (defaults to unit weights).
    max_rounds:
        Convergence bound; a strategy that cannot clean the data within
        this many rounds raises :class:`~repro.exceptions.RepairError`.
    """

    #: Registry key of the strategy (set by subclasses).
    name: ClassVar[str] = ""
    #: Whether the strategy needs a backend with ``supports_incremental``.
    requires_incremental: ClassVar[bool] = False

    def __init__(
        self,
        sigma: ECFDSet | Sequence[ECFD],
        cost_model: RepairCostModel | None = None,
        max_rounds: int = 10,
    ):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self.cost_model = cost_model if cost_model is not None else RepairCostModel()
        self.max_rounds = max_rounds
        self.planner = FixPlanner(self.sigma)

    @abstractmethod
    def repair(self, backend) -> RepairOutcome:
        """Repair the backend's stored data in place and return the audit.

        On success the backend serves the repaired (clean) state under the
        original tuple identifiers — no materialise-and-reload.  Raises
        :class:`~repro.exceptions.RepairError` when Σ is unsatisfiable or
        the strategy fails to converge.
        """

    def _check_satisfiable(self) -> None:
        if not is_satisfiable(self.sigma):
            raise RepairError("the constraint set is unsatisfiable; no repair exists")


class GreedyRepairStrategy(RepairStrategy):
    """The full-re-detection baseline, applied in place to any backend."""

    name = "greedy"

    def repair(self, backend) -> RepairOutcome:
        repairer = GreedyRepairer(
            self.sigma, cost_model=self.cost_model, max_rounds=self.max_rounds
        )
        outcome = repairer.repair(backend.to_relation())
        if outcome.changes:
            backend.apply_cell_changes(outcome.changes)
        return outcome


class IncrementalRepairStrategy(RepairStrategy):
    """Violation-driven repair through INCDETECT delta maintenance.

    After the seeding scan, each round ships its fix batch as a
    delete+reinsert delta under pinned tuple identifiers; the backend's
    maintained violation set comes back as the next round's input.  Under a
    sharded backend the delta is *routed* — only the shards the fixes land
    on do any work (see :class:`~repro.parallel.ShardedBackend`).
    """

    name = "incremental"
    requires_incremental = True

    def repair(self, backend) -> RepairOutcome:
        if not backend.supports_incremental:
            raise EngineError(
                f"the {self.name!r} repair strategy needs an incremental-capable "
                f"backend; {backend.name!r} does not support incremental updates "
                "(use strategy='greedy')"
            )
        self._check_satisfiable()

        # Seeding: bring the maintained violation state up (for a live
        # INCDETECT state both calls are free; otherwise this is the one
        # full pass the strategy ever pays).
        backend.ensure_ready()
        violations = backend.detect()
        baseline_full_detects = getattr(backend, "full_detect_count", 0)

        # The strategy's working mirror of the backend's storage: fixes are
        # planned (and applied) here, then shipped as deltas — the two stay
        # in lockstep because the shipped batch *is* the applied batch.
        mirror = backend.to_relation()
        group_counts = self._group_counts_hook(backend)

        changes: list[CellChange] = []
        rounds_trace: list[dict] = []
        maintained_rounds = 0
        rows_avoided = 0
        summary_groups = 0
        converged_rounds: int | None = None
        for round_number in range(1, self.max_rounds + 1):
            if violations.is_clean():
                converged_rounds = round_number - 1
                break
            dirty_before = len(violations)
            plan = self.planner.plan_round(mirror, violations, group_counts=group_counts)
            if not plan.changes:
                raise RepairError(
                    f"incremental repair stalled in round {round_number}: no fix "
                    f"applies to the {dirty_before} remaining dirty tuples"
                )
            tids = sorted({change.tid for change in plan.changes})
            rows = []
            for tid in tids:
                t = mirror.get(tid)
                assert t is not None  # the planner only rewrites stored tuples
                rows.append(t.as_dict())
            # Delta re-validation: delete + reinsert the changed tuples under
            # their own identifiers; INCDETECT maintains vio(D) touching only
            # the affected groups.
            violations = backend.incremental_update(tids, rows, insert_tids=tids)
            maintained_rounds += 1
            rows_avoided += backend.count()
            summary_groups += plan.summary_groups
            changes.extend(plan.changes)
            rounds_trace.append(
                {
                    "round": round_number,
                    "dirty": dirty_before,
                    "mv_fixes": plan.mv_fixes,
                    "sv_fixes": plan.sv_fixes,
                    "changes": len(plan.changes),
                    "summary_groups": plan.summary_groups,
                }
            )
        else:
            if violations.is_clean():
                converged_rounds = self.max_rounds
        if converged_rounds is None:
            raise RepairError(
                f"incremental repair did not converge within {self.max_rounds} "
                f"rounds; {len(violations)} tuples remain dirty"
            )

        return RepairOutcome(
            mirror,
            changes,
            self.cost_model.cost(changes),
            rounds=converged_rounds,
            trace={
                "strategy": self.name,
                "full_detects": getattr(backend, "full_detect_count", 0)
                - baseline_full_detects,
                "maintained_rounds": maintained_rounds,
                "redetect_rows_avoided": rows_avoided,
                "summary_groups_repaired": summary_groups,
                "rounds": rounds_trace,
            },
        )

    def _group_counts_hook(self, backend) -> GroupCountsHook | None:
        """Election source for multi-tuple fixes (``None`` = count rows locally).

        The sharded strategy overrides this to elect from the coordinator's
        merged summary store.
        """
        return None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
StrategyFactory = Callable[..., RepairStrategy]

_REGISTRY: dict[str, StrategyFactory] = {}


def register_strategy(name: str, factory: StrategyFactory) -> None:
    """Register a strategy factory under ``name`` (last registration wins).

    ``factory`` is called as ``factory(sigma=..., cost_model=...,
    max_rounds=...)`` and must return a :class:`RepairStrategy`.
    """
    if not name:
        raise EngineError("repair strategy name must be a non-empty string")
    _REGISTRY[name] = factory


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (unknown names raise the usual error)."""
    if name not in _REGISTRY:
        raise UnknownStrategyError(name, available_strategies())
    del _REGISTRY[name]


def available_strategies() -> tuple[str, ...]:
    """The registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_strategy_factory(name: str) -> StrategyFactory:
    """The factory registered under ``name`` (unknown names raise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(name, available_strategies()) from None


def create_strategy(
    name: str,
    sigma: ECFDSet | Sequence[ECFD],
    cost_model: RepairCostModel | None = None,
    max_rounds: int = 10,
    **options,
) -> RepairStrategy:
    """Instantiate the repair strategy registered under ``name``."""
    return resolve_strategy_factory(name)(
        sigma=sigma, cost_model=cost_model, max_rounds=max_rounds, **options
    )


register_strategy(GreedyRepairStrategy.name, GreedyRepairStrategy)
register_strategy(IncrementalRepairStrategy.name, IncrementalRepairStrategy)
