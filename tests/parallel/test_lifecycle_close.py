"""Lifecycle tests of ``ShardedBackend.close()``: idempotence, no leaks.

A backend owns real resources — executor pools, lane threads, and on the
remote path an event loop, TCP connections and possibly forked worker
processes.  ``close()`` must release all of them exactly once, stay safe to
call again, and hold after a *failed* operation just as after a clean run:
no leaked file descriptors, no immortal pools, no orphan workers.
"""

from __future__ import annotations

import gc
import os
import random
import weakref

import pytest

from repro.engine import DataQualityEngine
from repro.exceptions import FabricError
from repro.parallel.remote import spawn_local_workers

from tests.parallel.test_summary_merge import SCHEMA, _random_rows, _random_sigma


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def _engine(executor, **kwargs):
    rng = random.Random(5)
    engine = DataQualityEngine(
        SCHEMA,
        _random_sigma(rng),
        backend="incremental",
        workers=3,
        executor=executor,
        **kwargs,
    )
    engine.load(_random_rows(rng, 80))
    return engine


class TestIdempotentClose:
    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_double_close_is_a_no_op(self, executor):
        engine = _engine(executor)
        engine.detect()
        engine.backend.ensure_ready()
        engine.close()
        engine.close()
        engine.backend.close()  # and once more through the backend directly

    def test_close_before_any_work_is_safe(self):
        engine = _engine("thread")
        engine.close()
        engine.close()

    def test_remote_close_is_idempotent_and_reaps_owned_workers(self):
        engine = _engine("remote", remote_workers=1)
        engine.backend.ensure_ready()
        owned = list(engine.backend._owned_workers)
        assert len(owned) == 1 and owned[0].is_alive()
        engine.close()
        engine.close()
        assert not owned[0].is_alive()
        assert engine.backend._owned_workers == []
        assert engine.backend._remote_pool is None


class TestNoLeakedResources:
    def test_thread_lanes_release_their_pools(self):
        engine = _engine("thread")
        engine.backend.ensure_ready()
        engine.apply_update(delete_tids=[1, 2, 3])
        lanes = engine.backend._lanes
        assert lanes is not None
        refs = [weakref.ref(lane) for lane in lanes]
        engine.close()
        assert engine.backend._lanes is None
        del lanes
        gc.collect()
        assert all(ref() is None for ref in refs)

    def test_remote_close_returns_every_file_descriptor(self):
        fleet = spawn_local_workers(1)
        try:
            before = _open_fds()
            engine = _engine("remote", remote_workers=[fleet[0].address])
            engine.backend.ensure_ready()
            engine.apply_update(delete_tids=[1, 2, 3])
            assert _open_fds() > before  # lane sockets + loop plumbing live
            pool_ref = weakref.ref(engine.backend._remote_pool)
            engine.close()
            gc.collect()
            assert pool_ref() is None
            # Sockets, the pool's waker pipe, everything: returned.
            assert _open_fds() <= before
        finally:
            for handle in fleet:
                handle.stop()

    def test_spawned_fleet_leaves_no_processes_or_fds_behind(self):
        before = _open_fds()
        engine = _engine("remote", remote_workers=2)
        engine.backend.ensure_ready()
        owned = list(engine.backend._owned_workers)
        assert [handle.is_alive() for handle in owned] == [True, True]
        engine.close()
        assert [handle.is_alive() for handle in owned] == [False, False]
        gc.collect()
        assert _open_fds() <= before


class TestCloseAfterFailure:
    def test_failed_update_then_close_releases_everything(self):
        """Kill the only worker, fail an update, close: nothing leaks."""
        fleet = spawn_local_workers(1)
        try:
            before = _open_fds()
            engine = _engine(
                "remote", remote_workers=[fleet[0].address], rpc_timeout=5.0
            )
            engine.backend.ensure_ready()
            fleet[0].kill()
            with pytest.raises(FabricError):
                engine.apply_update(delete_tids=[1, 2, 3])
            # The failure invalidated the shard states; close still runs its
            # full teardown without raising, twice.
            engine.close()
            engine.close()
            gc.collect()
            assert _open_fds() <= before
        finally:
            for handle in fleet:
                handle.stop()

    def test_states_invalidated_after_failure_not_silently_stale(self):
        fleet = spawn_local_workers(1)
        try:
            engine = _engine(
                "remote", remote_workers=[fleet[0].address], rpc_timeout=5.0
            )
            engine.backend.ensure_ready()
            assert engine.backend._states_live
            fleet[0].kill()
            with pytest.raises(FabricError):
                engine.apply_update(delete_tids=[4, 5])
            assert not engine.backend._states_live
            engine.close()
        finally:
            for handle in fleet:
                handle.stop()
