"""The DuckDB engine — vectorized columnar execution of the detection SQL.

Same fixed pair of detection queries, radically different executor: DuckDB
evaluates them with vectorized operators over columnar storage, which is
what turns the 50k-tuple paper workload into a millions-of-tuples one.
Differences from the SQLite engine, all captured here or in
:class:`~repro.detection.dialect.DuckDBDialect`:

* **Bulk loading** goes through columnar appends instead of per-row
  INSERT binds: when :mod:`pyarrow` is importable, row batches are pivoted
  into an Arrow table and registered as a zero-copy view DuckDB ingests
  with one ``INSERT INTO ... SELECT``; otherwise a chunked multi-row
  prepared INSERT keeps loads a small number of statements.
* **No secondary indexes** — the dialect's ``create_index`` returns
  ``None`` (vectorized hash joins and zone maps serve the maintenance
  joins; ART upkeep would tax every append).
* **Affected-row counts** come back as a one-row ``Count`` result set
  rather than ``cursor.rowcount``.

The :mod:`duckdb` import is deferred and gated: constructing the engine
without the package raises an actionable
:class:`~repro.exceptions.DetectionError` naming the extra to install,
and everything else in the detection stack keeps working.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.detection.dialect import get_dialect
from repro.detection.engines.base import SqlEngine
from repro.exceptions import DetectionError

__all__ = ["DuckDBEngine", "duckdb_available"]

#: Rows per multi-row INSERT chunk on the no-Arrow fallback path.
_FALLBACK_CHUNK = 1024


def _import_duckdb() -> Any:
    """The :mod:`duckdb` module, or an actionable error when absent."""
    try:
        import duckdb  # noqa: PLC0415 - deferred so the package stays optional
    except ImportError as error:
        raise DetectionError(
            "the 'duckdb' backend needs the optional duckdb package; "
            "install it with `pip install duckdb` (or `pip install "
            "'repro[duckdb]'`) — the sqlite backends work without it"
        ) from error
    return duckdb


def _import_pyarrow() -> Any | None:
    """The :mod:`pyarrow` module when importable, else ``None`` (fallback path)."""
    try:
        import pyarrow  # noqa: PLC0415 - optional accelerator, not a dependency
    except ImportError:
        return None
    return pyarrow


def duckdb_available() -> bool:
    """Whether the optional :mod:`duckdb` package is importable."""
    try:
        _import_duckdb()
    except DetectionError:
        return False
    return True


class DuckDBEngine(SqlEngine):
    """A DuckDB connection behind the abstract engine interface."""

    name = "duckdb"

    def __init__(self, path: str = ":memory:"):
        self.dialect = get_dialect("duckdb")
        duckdb = _import_duckdb()
        self._pyarrow = _import_pyarrow()
        self.connection = duckdb.connect(path)

    def execute(self, sql: str, parameters: Sequence = ()) -> Any:
        if parameters:
            return self.connection.execute(sql, list(parameters))
        return self.connection.execute(sql)

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        materialized = [list(row) for row in rows]
        if materialized:
            self.connection.executemany(sql, materialized)

    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        return self.execute(sql, parameters).fetchall()

    def update_rowcount(self, sql: str, parameters: Sequence = ()) -> int:
        # DuckDB reports the affected-row count of UPDATE/DELETE as a
        # one-row result set instead of a cursor attribute.
        rows = self.execute(sql, parameters).fetchall()
        if rows and rows[0] and isinstance(rows[0][0], int):
            return rows[0][0]
        return 0

    def bulk_insert(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence]
    ) -> int:
        if not rows:
            return 0
        if self._pyarrow is not None:
            return self._arrow_insert(table, columns, rows)
        return self._values_insert(table, columns, rows)

    def _arrow_insert(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence]
    ) -> int:
        # Pivot the row batch into columnar arrays once, register the Arrow
        # table as a zero-copy view, and let DuckDB ingest it vectorized.
        pa = self._pyarrow
        pivoted = list(zip(*rows))
        arrow_table = pa.table(
            {column: list(values) for column, values in zip(columns, pivoted)}
        )
        view = "__repro_bulk_load"
        quoted = ", ".join(self.dialect.quote_identifier(c) for c in columns)
        self.connection.register(view, arrow_table)
        try:
            self.connection.execute(
                f"INSERT INTO {self.dialect.quote_identifier(table)} ({quoted}) "
                f"SELECT {quoted} FROM {view}"
            )
        finally:
            self.connection.unregister(view)
        return len(rows)

    def _values_insert(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence]
    ) -> int:
        # No Arrow available: a chunked multi-row prepared INSERT still
        # beats per-row binds by ~the chunk factor in statement overhead.
        quoted = ", ".join(self.dialect.quote_identifier(c) for c in columns)
        row_placeholder = "(" + ", ".join(self.dialect.placeholder for _ in columns) + ")"
        target = f"INSERT INTO {self.dialect.quote_identifier(table)} ({quoted}) VALUES "
        for start in range(0, len(rows), _FALLBACK_CHUNK):
            chunk = rows[start : start + _FALLBACK_CHUNK]
            values = ", ".join([row_placeholder] * len(chunk))
            flat: list[Any] = []
            for row in chunk:
                flat.extend(row)
            self.connection.execute(target + values, flat)
        return len(rows)

    def commit(self) -> None:
        # DuckDB's Python API autocommits outside explicit transactions;
        # commit() only has work to do inside one, and raises otherwise.
        try:
            self.connection.commit()
        except Exception:  # noqa: BLE001 - autocommit mode has nothing to commit
            pass

    def rollback(self) -> None:
        try:
            self.connection.rollback()
        except Exception:  # noqa: BLE001 - autocommit mode has nothing to roll back
            pass

    def close(self) -> None:
        self.connection.close()
