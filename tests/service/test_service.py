"""The always-on service: lifecycle, concurrent clients, live-state queries.

Covers the ISSUE's smoke requirement — start the service, stream updates
from three concurrent clients over TCP, query the live state, shut down
cleanly — plus the async-API guarantees underneath it: read-your-writes
barriers, admission back-pressure, maintained state answered without
re-detection, and a service-level bit-exactness check of a Poisson stream
against the raw single-threaded replay.
"""

import asyncio
import random

import pytest

from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.updates import UpdateGenerator
from repro.datagen.workload import paper_workload
from repro.engine import DataQualityEngine
from repro.exceptions import EngineError
from repro.service import AdmissionController, QualityClient, QualityServer, QualityService

SCHEMA = cust_ext_schema()


def _service(**overrides):
    options = dict(workers=2, executor="thread", max_batch=64, queue_capacity=256)
    options.update(overrides)
    return QualityService(SCHEMA, paper_workload(SCHEMA), **options)


def _rows(count=120, seed=3, noise=8.0):
    return DatasetGenerator(seed=seed).generate_rows(count, noise)


class TestServiceLifecycle:
    def test_requires_an_incremental_backend(self):
        with pytest.raises(EngineError, match="incremental"):
            QualityService(SCHEMA, paper_workload(SCHEMA), backend="batch")

    def test_queries_require_a_running_service(self):
        service = _service()
        with pytest.raises(EngineError, match="not running"):
            asyncio.run(service.detect())

    def test_start_twice_raises_and_stop_is_idempotent(self):
        async def scenario():
            service = _service()
            await service.start(_rows(50))
            try:
                with pytest.raises(EngineError, match="already running"):
                    await service.start()
            finally:
                await service.stop()
            await service.stop()  # second stop is a no-op
            with pytest.raises(EngineError, match="not running"):
                await service.submit(insert_rows=[_rows(1)[0]])

        asyncio.run(scenario())

    def test_context_manager_round_trip(self):
        async def scenario():
            async with _service() as service:
                receipt = await service.submit(insert_rows=_rows(5))
                assert receipt.tids == [1, 2, 3, 4, 5]
                counts = await service.detect()
                assert counts["tuples"] == 5

        asyncio.run(scenario())


class TestLiveStateQueries:
    def test_read_your_writes_and_no_redetection(self):
        async def scenario():
            service = _service()
            await service.start(_rows())
            try:
                baseline = await service.detect()
                assert baseline["tuples"] == 120

                receipt = await service.submit(insert_rows=_rows(3, seed=8))
                # detect() barriers on the pending window: the submission is
                # visible even though wait_applied was never called.
                counts = await service.detect()
                assert counts["tuples"] == 123
                assert receipt.applied.done()
                # The maintained state answered; nothing re-detected.
                assert service.engine.backend.full_detect_count == 0
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_breakdown_and_stats_shapes(self):
        async def scenario():
            async with _service() as service:
                await service.submit(insert_rows=_rows(150, seed=7, noise=12.0))
                assert (await service.detect())["dirty"] > 0
                breakdown = await service.breakdown()
                assert breakdown and all(
                    {"sv", "mv_groups", "mv_tuples"} <= set(stats)
                    for stats in breakdown.values()
                )
                stats = await service.stats()
                assert stats["backend"] == "sharded"
                assert stats["workers"] == 2
                assert stats["submissions"] == 1
                assert stats["ships"] >= 1
                assert stats["coalescer"]["raw_ops"] == 150
                assert stats["admission"]["capacity"] == 256
                assert stats["last_update_trace"]["mode"] == "incremental"

        asyncio.run(scenario())

    def test_repair_runs_on_the_live_state(self):
        async def scenario():
            async with _service() as service:
                await service.submit(insert_rows=_rows(80, noise=12.0))
                dirty = (await service.detect())["dirty"]
                assert dirty > 0
                result = await service.repair()
                assert result.clean
                assert result.strategy == "sharded"
                assert (await service.detect())["dirty"] == 0
                # Streaming keeps working after a repair.
                receipt = await service.submit(insert_rows=_rows(2, seed=21))
                await receipt.wait_applied()
                assert (await service.detect())["tuples"] == 82

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_oversize_submission_admitted_only_when_empty(self):
        async def scenario():
            gate = AdmissionController(4)
            await gate.acquire(10)  # empty queue: oversize admitted
            assert gate.pending == 10
            waiter = asyncio.ensure_future(gate.acquire(1))
            await asyncio.sleep(0)
            assert not waiter.done()  # parked: 10 + 1 > 4
            await gate.release(10)
            await waiter
            assert gate.pending == 1
            assert gate.stats()["waits"] == 1

        asyncio.run(scenario())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_fast_producer_hits_backpressure_but_everything_lands(self):
        async def scenario():
            async with _service(queue_capacity=8, max_batch=4) as service:
                rows = _rows(60, seed=13)
                receipts = [await service.submit(insert_rows=[row]) for row in rows]
                await receipts[-1].wait_applied()
                counts = await service.detect()
                assert counts["tuples"] == 60
                stats = await service.stats()
                assert stats["admission"]["pending"] == 0
                # 60 single-row submits against an 8-op bound: the producer
                # must have been parked at least once.
                assert stats["admission"]["waits"] > 0

        asyncio.run(scenario())


class TestConcurrentTcpClients:
    def test_three_clients_stream_query_and_shutdown(self):
        """The smoke test: concurrent TCP clients against one live service."""

        async def client_task(port, rows, deletes_every=3):
            async with QualityClient("127.0.0.1", port) as client:
                owned = []
                for index, row in enumerate(rows):
                    tids = await client.update(insert_rows=[row])
                    owned.extend(tids)
                    if index % deletes_every == deletes_every - 1:
                        await client.update(delete_tids=[owned.pop()])
                violations = await client.detect()
                return owned, violations

        async def scenario():
            service = _service()
            await service.start(_rows(100))
            try:
                async with QualityServer(service) as server:
                    chunks = [_rows(12, seed=30 + i, noise=10.0) for i in range(3)]
                    results = await asyncio.gather(
                        *[client_task(server.port, chunk) for chunk in chunks]
                    )
                    owned = [tid for tids, _ in results for tid in tids]
                    # Every client owns a disjoint slice of the tid space.
                    assert len(owned) == len(set(owned))
                    # 100 base + 3 x (12 inserted - 4 deleted).
                    final = await service.detect()
                    assert final["tuples"] == 124
                    assert set(owned) <= set(service.engine.tids())
                    # Each client read a consistent live state over TCP.
                    for _, violations in results:
                        assert violations["dirty"] >= 0
                    assert server.connections == 3
                    stats = await service.stats()
                    assert stats["submissions"] == 3 * (12 + 4)
                assert service.engine.backend.full_detect_count == 0
            finally:
                await service.stop()
            # Clean shutdown: the service no longer accepts work.
            with pytest.raises(EngineError, match="not running"):
                await service.detect()

        asyncio.run(scenario())

    def test_protocol_errors_keep_the_connection_alive(self):
        async def scenario():
            async with _service() as service:
                async with QualityServer(service) as server:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    try:
                        writer.write(b"this is not json\n")
                        await writer.drain()
                        import json

                        reply = json.loads(await reader.readline())
                        assert reply["ok"] is False
                        writer.write(b'{"op": "nonsense"}\n')
                        await writer.drain()
                        reply = json.loads(await reader.readline())
                        assert reply["ok"] is False and "nonsense" in reply["error"]
                        writer.write(b'{"op": "ping"}\n')
                        await writer.drain()
                        reply = json.loads(await reader.readline())
                        assert reply == {"ok": True, "pong": True}
                    finally:
                        writer.close()
                        await writer.wait_closed()

        asyncio.run(scenario())


class TestServiceBitExactness:
    def test_poisson_stream_matches_raw_single_threaded_replay(self):
        """Service-level anchor: streamed state == apply_update replay."""
        sigma = paper_workload(SCHEMA)
        base_rows = _rows(150, seed=1)
        updates = UpdateGenerator(DatasetGenerator(seed=41), seed=17)
        events = list(
            updates.poisson_stream(
                range(1, len(base_rows) + 1),
                rate=200.0,
                events=50,
                ops_per_event=2,
                insert_fraction=0.55,
                noise_percent=10.0,
            )
        )

        with DataQualityEngine(SCHEMA, sigma, backend="incremental") as reference:
            reference.load(base_rows)
            reference.detect()
            for event in events:
                reference.apply_update(event.batch)
            expected_flags = reference.backend.detect()
            expected_cells = {
                t.tid: t.values() for t in reference.to_relation().tuples()
            }

        async def scenario():
            rng = random.Random(5)
            service = _service(workers=3, max_batch=16, queue_capacity=64)
            await service.start(base_rows)
            try:
                for event in events:
                    receipt = await service.submit(
                        event.batch.delete_tids, event.batch.insert_rows
                    )
                    if rng.random() < 0.3:
                        await receipt.wait_applied()  # vary the window shapes
                counts = await service.detect()
                flags = await service._run_engine(service.engine.backend.detect)
                cells = {
                    t.tid: t.values()
                    for t in (await service._run_engine(service.engine.to_relation)).tuples()
                }
                assert flags == expected_flags
                assert cells == expected_cells
                assert counts == {**expected_flags.summary(), "tuples": len(expected_cells)}
            finally:
                await service.stop()

        asyncio.run(scenario())
