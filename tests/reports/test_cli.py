"""End-to-end CLI behaviour on synthetic artifacts (no docs are touched)."""

from pathlib import Path

from repro.reports.cli import main

from synthetic_artifacts import SHA_OLD, write_artifact


def test_list_names_every_registered_figure(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig5a", "fig8", "fig11", "perf-trajectory"):
        assert name in out


def test_all_renders_selected_group_to_out_dir(bench_dir, tmp_path, capsys):
    out = tmp_path / "renders"
    assert main(["all", "--bench-dir", str(bench_dir),
                 "--out", str(out), "--only", "growth"]) == 0
    written = {path.name for path in out.glob("*.svg")}
    assert written == {
        "fig8_parallel_scaling.svg", "fig9_update_routing.svg",
        "fig10_repair_convergence.svg", "fig11_service_throughput.svg",
        "fig11_service_latency.svg",
    }
    # An explicit --bench-dir must never rewrite the committed docs.
    assert "updated" not in capsys.readouterr().out


def test_single_figure_by_name(bench_dir, tmp_path):
    out = tmp_path / "one"
    assert main(["fig8", "--bench-dir", str(bench_dir), "--out", str(out)]) == 0
    assert [path.name for path in out.glob("*.svg")] == ["fig8_parallel_scaling.svg"]


def test_unknown_figure_is_exit_2_with_known_names(bench_dir, tmp_path, capsys):
    assert main(["fig99", "--bench-dir", str(bench_dir),
                 "--out", str(tmp_path / "x")]) == 2
    err = capsys.readouterr().err
    assert "fig99" in err and "fig8" in err


def test_unknown_only_token_is_exit_2(bench_dir, tmp_path, capsys):
    assert main(["all", "--bench-dir", str(bench_dir),
                 "--out", str(tmp_path / "x"), "--only", "bogus"]) == 2
    assert "bogus" in capsys.readouterr().err


def test_empty_bench_dir_is_an_error_message_not_a_traceback(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["all", "--bench-dir", str(empty),
                 "--out", str(tmp_path / "x")]) == 2
    err = capsys.readouterr().err
    assert "no BENCH_*.json artifacts" in err
    assert "Traceback" not in err


def test_experiments_dir_enriches_paper_figures(bench_dir, tmp_path):
    # A driver sweep with the figure's experiment id wins over bench rows.
    experiments = tmp_path / "experiments"
    experiments.mkdir()
    (experiments / "fig5a.json").write_text(
        '{"schema": "repro.experiment-result/v1", "experiment_id": "fig5a",\n'
        ' "title": "BATCHDETECT scalability in |D|",\n'
        ' "measurements": [\n'
        '  {"label": "batchdetect", "parameter": 500, "seconds": 0.5, "extra": {}},\n'
        '  {"label": "batchdetect", "parameter": 1000, "seconds": 1.0, "extra": {}}\n'
        ' ]}\n',
        encoding="utf-8")
    out = tmp_path / "renders"
    assert main(["fig5a", "--bench-dir", str(bench_dir),
                 "--experiments-dir", str(experiments),
                 "--out", str(out)]) == 0
    svg = (out / "fig5a.svg").read_text(encoding="utf-8")
    assert "1000" in svg  # the sweep's x range, not the artifact's 100/200


def test_renders_are_deterministic_across_two_cli_runs(bench_dir, tmp_path):
    first, second = tmp_path / "first", tmp_path / "second"
    for out in (first, second):
        assert main(["all", "--bench-dir", str(bench_dir),
                     "--out", str(out), "--only", "growth"]) == 0

    def snapshot(directory: Path) -> dict[str, str]:
        return {path.name: path.read_text(encoding="utf-8")
                for path in sorted(directory.glob("*.svg"))}

    assert snapshot(first) == snapshot(second)
