"""A synthetic US-style geography catalogue (cities, area codes, zip codes).

The paper's experimental study "scraped real-life CT, AC, ZIP data for
cities and towns in the US ... from online stores" and generated synthetic
datasets from that catalogue.  The scraped catalogue is not available, so
this module builds a deterministic synthetic stand-in with the structural
properties the experiments rely on:

* most cities have exactly one area code (so ``CT -> AC`` holds outside the
  exceptional cities — the motivation for eCFD ψ1);
* a small number of metropolitan cities (NYC, LI) legitimately have several
  area codes (the motivation for the disjunction in ψ2);
* every city has a small set of zip codes, disjoint across cities, so
  ``ZIP -> CT`` is a reasonable constraint for the workload to use;
* the catalogue is large enough (hundreds of cities) that pattern sets of
  50-500 entries, as used in the Fig. 5(c)/6(c) sweeps, are meaningful.

The paper's running-example cities (Albany, Troy, Colonie with area code
518; NYC with its five codes) are included verbatim so the Fig. 1 / Fig. 2
examples hold over generated data as well.

Everything is deterministic: the same catalogue is produced on every call,
which keeps the experiments reproducible without shipping data files.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CityRecord", "city_catalog", "area_codes", "find_city"]


@dataclass(frozen=True)
class CityRecord:
    """One city with its admissible area codes and zip codes.

    ``area_codes`` has a single element for ordinary cities and several for
    the metropolitan exceptions; ``zip_codes`` are unique to the city.
    """

    name: str
    area_codes: tuple[str, ...]
    zip_codes: tuple[str, ...]

    @property
    def canonical_area_code(self) -> str:
        """The first (deterministic) area code — what the generator uses by default."""
        return self.area_codes[0]


#: The paper's running-example cities, kept verbatim.
_PAPER_CITIES: list[CityRecord] = [
    CityRecord("Albany", ("518",), ("12205", "12206", "12238")),
    CityRecord("Troy", ("518",), ("12180", "12181", "12182")),
    CityRecord("Colonie", ("518",), ("12203", "12204", "12211")),
    CityRecord("NYC", ("212", "718", "646", "347", "917"), ("10001", "10011", "10016", "10021", "10027")),
    CityRecord("LI", ("516", "631"), ("11501", "11701", "11901")),
]

#: Name fragments used to synthesise additional city names deterministically.
_PREFIXES = [
    "Spring", "River", "Oak", "Maple", "Cedar", "Pine", "Lake", "Hill",
    "Green", "Fair", "Brook", "Clear", "Stone", "Mill", "North", "South",
    "East", "West", "Glen", "Bay",
]
_SUFFIXES = [
    "field", "ville", "ton", "burg", "port", "wood", "dale", "haven",
    "mont", "view", "ford", "side",
]


def _synthetic_cities(count: int) -> list[CityRecord]:
    """Deterministically synthesise ``count`` single-area-code cities."""
    cities: list[CityRecord] = []
    # Area codes outside the real NYC-state ones, three digits, no leading 0/1 clash.
    next_area = 301
    next_zip = 20000
    index = 0
    while len(cities) < count:
        prefix = _PREFIXES[index % len(_PREFIXES)]
        suffix = _SUFFIXES[(index // len(_PREFIXES)) % len(_SUFFIXES)]
        serial = index // (len(_PREFIXES) * len(_SUFFIXES))
        name = f"{prefix}{suffix}" if serial == 0 else f"{prefix}{suffix}{serial}"
        area = str(next_area)
        zips = tuple(str(next_zip + offset) for offset in range(3))
        cities.append(CityRecord(name, (area,), zips))
        next_area += 1
        # Skip codes that collide with the paper cities' area codes.
        while str(next_area) in {"518", "212", "718", "646", "347", "917", "516", "631"}:
            next_area += 1
        next_zip += 10
        index += 1
    return cities


def city_catalog(size: int = 300) -> list[CityRecord]:
    """The full catalogue: the 5 paper cities plus ``size - 5`` synthetic ones.

    Parameters
    ----------
    size:
        Total number of cities (minimum 5, the paper cities).
    """
    extra = max(0, size - len(_PAPER_CITIES))
    return list(_PAPER_CITIES) + _synthetic_cities(extra)


def area_codes(catalog: list[CityRecord] | None = None) -> dict[str, tuple[str, ...]]:
    """Mapping ``city name -> admissible area codes`` for a catalogue."""
    records = catalog if catalog is not None else city_catalog()
    return {record.name: record.area_codes for record in records}


def find_city(name: str, catalog: list[CityRecord] | None = None) -> CityRecord | None:
    """Look a city up by name, or ``None`` when absent."""
    records = catalog if catalog is not None else city_catalog()
    for record in records:
        if record.name == name:
            return record
    return None
