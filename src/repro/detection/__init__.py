"""SQL-based eCFD violation detection on SQLite (paper Section V).

* :mod:`repro.detection.database` — the RDBMS substrate (SQLite wrapper);
* :mod:`repro.detection.encoding` — the ``enc`` / constant-table encoding of
  Σ (Fig. 3);
* :mod:`repro.detection.sqlgen` — generation of the ``Q_sv`` / ``Q_mv``
  queries and the flag-update statements (Fig. 4);
* :mod:`repro.detection.batch` — BATCHDETECT;
* :mod:`repro.detection.incremental` — INCDETECT;
* :mod:`repro.detection.naive` — the pure-Python oracle detector.
"""

from repro.detection.batch import BatchDetector
from repro.detection.database import BLANK, ECFDDatabase, quote_identifier
from repro.detection.encoding import (
    AUX_TABLE,
    ENC_TABLE,
    MACRO_TABLE,
    ConstraintEncoding,
    encode_constraints,
    install_encoding,
)
from repro.detection.incremental import IncrementalDetector
from repro.detection.naive import NaiveDetector
from repro.detection.sqlgen import (
    group_query,
    macro_query,
    qmv_query,
    qsv_query,
    sv_update_statement,
)

__all__ = [
    "AUX_TABLE",
    "BLANK",
    "BatchDetector",
    "ConstraintEncoding",
    "ECFDDatabase",
    "ENC_TABLE",
    "IncrementalDetector",
    "MACRO_TABLE",
    "NaiveDetector",
    "encode_constraints",
    "group_query",
    "install_encoding",
    "macro_query",
    "qmv_query",
    "qsv_query",
    "quote_identifier",
    "sv_update_statement",
]
