"""Small AST helpers shared by the repro.lint checkers.

Nothing here knows about rules — just the mechanics every checker needs:
resolving dotted call targets, walking with parent links, and carving
function bodies at nesting boundaries so a rule scoped to "the direct
body of an ``async def``" does not leak into nested closures.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "body_nodes",
    "call_name",
    "dotted_name",
    "iter_function_defs",
    "parent_map",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The dotted target of a call, e.g. ``time.sleep`` or ``open``."""
    return dotted_name(call.func)


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child node -> parent node, for ancestor walks."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


_BOUNDARY = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def body_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every node in ``func``'s *direct* body.

    Stops at nested function/lambda boundaries: code inside a closure has
    its own execution context (a nested ``def`` runs later, possibly on
    another thread), so rules about "what runs in this frame" must not
    descend into it.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _BOUNDARY):
            continue
        stack.extend(ast.iter_child_nodes(node))
