"""Fig. 7(a): INCDETECT vs BATCHDETECT as the update size |ΔD| grows.

Paper setting: |D| = 100k, noise = 5%, |Tp| = 10, |ΔD⁺| = |ΔD⁻| swept from
2k to 12k and then from 20k to 60k (so up to 60% of the data is replaced).
Expected shape: INCDETECT wins clearly for small updates, the gap narrows as
the update grows, and BATCHDETECT overtakes when roughly half of the data is
updated.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    prepared_batch_detector,
    prepared_incremental_detector,
    sweep,
    update_batch,
)

#: Update sizes as fractions of |D|, covering the paper's 2%..60% range.
UPDATE_FRACTIONS = sweep([0.02, 0.05, 0.1, 0.2, 0.4, 0.6])


@pytest.mark.parametrize("fraction", UPDATE_FRACTIONS)
def test_fig7a_incdetect_by_update_size(benchmark, fraction, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), int(BENCH_SIZE * fraction))

    def setup():
        return (prepared_incremental_detector(rows, base_workload),), {}

    def run(detector):
        detector.delete_tuples(batch.delete_tids)
        return detector.insert_tuples(list(batch.insert_rows))

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["update_fraction"] = fraction
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = len(violations)


@pytest.mark.parametrize("fraction", UPDATE_FRACTIONS)
def test_fig7a_batchdetect_by_update_size(benchmark, fraction, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), int(BENCH_SIZE * fraction))

    def setup():
        detector = prepared_batch_detector(rows, base_workload)
        detector.detect()
        detector.database.delete_tuples(batch.delete_tids)
        detector.database.insert_tuples(list(batch.insert_rows))
        return (detector,), {}

    def run(detector):
        return detector.detect()

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["update_fraction"] = fraction
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = len(violations)
