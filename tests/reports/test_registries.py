"""The driver registry and the figure registry must not diverge.

``python -m repro.experiments.run_all`` runs the driver registry;
``python -m repro.reports`` runs the figure registry.  The paper-group
figure names deliberately equal the driver names, and this module is the
regression test the docstrings point at: a driver without a figure (or a
figure without a driver) fails here before it can ship.
"""

from repro.experiments import ALL_FIGURES, available_drivers, resolve_driver
from repro.experiments.run_all import main as run_all_main
from repro.reports import available_figures

import pytest


def _figures_by_group(group: str) -> set[str]:
    return {spec.name for spec in available_figures().values() if spec.group == group}


def test_paper_figures_mirror_figure_drivers():
    driver_names = {name for name, spec in available_drivers().items()
                    if spec.kind == "figure"}
    assert driver_names == _figures_by_group("paper")


def test_ablation_figures_mirror_ablation_drivers():
    driver_names = {name for name, spec in available_drivers().items()
                    if spec.kind == "ablation"}
    assert driver_names == _figures_by_group("ablation")


def test_growth_figures_have_no_drivers_by_design():
    # fig8–fig11 are benchmark-only: they plot sharding/service readings
    # that the single-process experiment harness cannot produce.
    assert _figures_by_group("growth") & set(available_drivers()) == set()


def test_all_figures_mapping_derives_from_the_registry():
    drivers = available_drivers()
    assert set(ALL_FIGURES) == set(drivers) - {"ablation-maxss"}
    for name, fn in ALL_FIGURES.items():
        assert fn is drivers[name].fn


def test_resolve_driver_unknown_lists_the_registry():
    with pytest.raises(ValueError) as excinfo:
        resolve_driver("fig99")
    message = str(excinfo.value)
    assert "fig99" in message and "fig5a" in message


def test_run_all_list_enumerates_every_driver(capsys):
    assert run_all_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in available_drivers():
        assert name in out


def test_run_all_rejects_unknown_driver(capsys):
    assert run_all_main(["fig99"]) == 2
    assert "fig99" in capsys.readouterr().out
