"""The eCFD workload of the experimental study (Section VI).

The paper "used a set Σ consisting of 10 eCFDs to express real-life
semantics of the real-life data, including the two eCFDs of Fig. 2" and
measured constraint complexity as the number of pattern tuples |Tp|,
"ranging from 10 to 500 pattern tuples", with wildcards, positive domain
constraints (S) and negative domain constraints (S̄) uniformly distributed.

This module builds the corresponding workload over the extended customer
schema:

* :func:`paper_workload` — the 10 eCFDs (the two Fig. 2 constraints verbatim
  plus eight more covering the LI area codes, zip/city bindings, item types,
  price bands and cross-attribute complements);
* :func:`tableau_sweep_ecfd` — a single eCFD whose tableau size is a
  parameter, used by the Fig. 5(c) / 6(c) sweeps; its pattern tuples bind
  one city each and cycle uniformly through value-set, complement-set and
  wildcard RHS entries;
* :func:`paper_workload_with_tableau_size` — the 10-constraint workload with
  one constraint swapped for a sweep eCFD of the requested size (this is
  exactly the paper's "we selected an eCFD from Σ and varied its |Tp|").
"""

from __future__ import annotations

from repro.core.ecfd import ECFD, ECFDSet, PatternTuple
from repro.core.patterns import ComplementSet, ValueSet, Wildcard
from repro.core.schema import RelationSchema, cust_ext_schema
from repro.datagen.geography import CityRecord, city_catalog
from repro.datagen.items import ITEM_TYPES, item_catalog, price_band
from repro.exceptions import ConstraintError

__all__ = [
    "paper_workload",
    "tableau_sweep_ecfd",
    "paper_workload_with_tableau_size",
    "NYC_AREA_CODES",
    "LI_AREA_CODES",
]

#: The NYC / LI area-code disjunctions used by ψ2 / ψ3.
NYC_AREA_CODES = ("212", "718", "646", "347", "917")
LI_AREA_CODES = ("516", "631")


def _psi1(schema: RelationSchema) -> ECFD:
    """ψ1 of Fig. 2: CT -> AC outside NYC/LI, and 518 for the three capital-area cities."""
    return ECFD(
        schema,
        ["CT"],
        ["AC"],
        tableau=[
            PatternTuple({"CT": ComplementSet(["NYC", "LI"])}, {"AC": Wildcard()}),
            PatternTuple({"CT": ValueSet(["Albany", "Troy", "Colonie"])}, {"AC": ValueSet(["518"])}),
        ],
        name="psi1_city_determines_ac",
    )


def _psi2(schema: RelationSchema) -> ECFD:
    """ψ2 of Fig. 2: NYC tuples use one of the five NYC area codes."""
    return ECFD(
        schema,
        ["CT"],
        [],
        ["AC"],
        tableau=[PatternTuple({"CT": ValueSet(["NYC"])}, {"AC": ValueSet(NYC_AREA_CODES)})],
        name="psi2_nyc_area_codes",
    )


def _psi3(schema: RelationSchema) -> ECFD:
    """The LI analogue of ψ2 ("similarly one can specify the area codes for LI")."""
    return ECFD(
        schema,
        ["CT"],
        [],
        ["AC"],
        tableau=[PatternTuple({"CT": ValueSet(["LI"])}, {"AC": ValueSet(LI_AREA_CODES)})],
        name="psi3_li_area_codes",
    )


def _psi4(schema: RelationSchema) -> ECFD:
    """ZIP -> CT as a plain (wildcard) embedded FD: a zip code determines its city."""
    return ECFD(
        schema,
        ["ZIP"],
        ["CT"],
        tableau=[PatternTuple({"ZIP": Wildcard()}, {"CT": Wildcard()})],
        name="psi4_zip_determines_city",
    )


def _psi5(schema: RelationSchema, cities: list[CityRecord]) -> ECFD:
    """Zip codes of the paper cities are bound to those cities (value sets)."""
    patterns = [
        PatternTuple({"ZIP": ValueSet(record.zip_codes)}, {"CT": ValueSet([record.name])})
        for record in cities[:5]
    ]
    return ECFD(schema, ["ZIP"], [], ["CT"], tableau=patterns, name="psi5_zip_city_bindings")


def _psi6(schema: RelationSchema) -> ECFD:
    """ITEM_TITLE -> ITEM_TYPE: a title belongs to a single item type."""
    return ECFD(
        schema,
        ["ITEM_TITLE"],
        ["ITEM_TYPE"],
        tableau=[PatternTuple({"ITEM_TITLE": Wildcard()}, {"ITEM_TYPE": Wildcard()})],
        name="psi6_title_determines_type",
    )


def _psi7(schema: RelationSchema) -> ECFD:
    """ITEM_TYPE is one of the three store types (a domain-restriction disjunction)."""
    return ECFD(
        schema,
        ["ITEM_TYPE"],
        [],
        ["ITEM_TYPE"],
        tableau=[PatternTuple({"ITEM_TYPE": Wildcard()}, {"ITEM_TYPE": ValueSet(ITEM_TYPES)})],
        name="psi7_item_type_domain",
    )


def _psi8(schema: RelationSchema) -> ECFD:
    """Each item type draws its price from the type's band (one pattern per type)."""
    patterns = []
    for item_type in ITEM_TYPES:
        low, high = price_band(item_type)
        prices = [str(value) for value in range(low, high + 1)]
        patterns.append(
            PatternTuple({"ITEM_TYPE": ValueSet([item_type])}, {"PRICE": ValueSet(prices)})
        )
    return ECFD(schema, ["ITEM_TYPE"], [], ["PRICE"], tableau=patterns, name="psi8_price_bands")


def _psi9(schema: RelationSchema, cities: list[CityRecord]) -> ECFD:
    """Paper cities only use their own zip codes (value-set Yp patterns)."""
    patterns = [
        PatternTuple({"CT": ValueSet([record.name])}, {"ZIP": ValueSet(record.zip_codes)})
        for record in cities[:5]
    ]
    return ECFD(schema, ["CT"], [], ["ZIP"], tableau=patterns, name="psi9_city_zip_bindings")


def _psi10(schema: RelationSchema) -> ECFD:
    """Cities outside NYC/LI never use NYC/LI area codes (complement on both sides)."""
    metro_codes = list(NYC_AREA_CODES) + list(LI_AREA_CODES)
    return ECFD(
        schema,
        ["CT"],
        [],
        ["AC"],
        tableau=[
            PatternTuple({"CT": ComplementSet(["NYC", "LI"])}, {"AC": ComplementSet(metro_codes)})
        ],
        name="psi10_metro_codes_reserved",
    )


def paper_workload(
    schema: RelationSchema | None = None,
    catalog: list[CityRecord] | None = None,
) -> ECFDSet:
    """The 10-eCFD workload Σ of the experimental study."""
    schema = schema if schema is not None else cust_ext_schema()
    cities = catalog if catalog is not None else city_catalog()
    return ECFDSet(
        [
            _psi1(schema),
            _psi2(schema),
            _psi3(schema),
            _psi4(schema),
            _psi5(schema, cities),
            _psi6(schema),
            _psi7(schema),
            _psi8(schema),
            _psi9(schema, cities),
            _psi10(schema),
        ]
    )


def tableau_sweep_ecfd(
    schema: RelationSchema | None = None,
    size: int = 50,
    catalog: list[CityRecord] | None = None,
) -> ECFD:
    """An eCFD with ``size`` pattern tuples for the |Tp| scalability sweeps.

    Pattern tuple ``i`` constrains the ``i``-th catalogue city and cycles
    uniformly through the three entry kinds on the RHS:

    * ``i % 3 == 0`` — value set: the city's admissible area codes;
    * ``i % 3 == 1`` — complement set: the city must avoid the *other*
      paper cities' codes (a negative domain constraint);
    * ``i % 3 == 2`` — wildcard (only the embedded FD applies).
    """
    schema = schema if schema is not None else cust_ext_schema()
    cities = catalog if catalog is not None else city_catalog(max(size + 5, 300))
    if size < 1:
        raise ConstraintError("a tableau sweep eCFD needs at least one pattern tuple")
    if size > len(cities):
        cities = city_catalog(size + 5)

    metro_codes = list(NYC_AREA_CODES) + list(LI_AREA_CODES)
    patterns = []
    for index in range(size):
        record = cities[index % len(cities)]
        lhs = {"CT": ValueSet([record.name])}
        kind = index % 3
        if kind == 0:
            rhs = {"AC": ValueSet(record.area_codes)}
        elif kind == 1:
            forbidden = [code for code in metro_codes if code not in record.area_codes]
            rhs = {"AC": ComplementSet(forbidden or ["000"])}
        else:
            rhs = {"AC": Wildcard()}
        patterns.append(PatternTuple(lhs, rhs))
    return ECFD(schema, ["CT"], ["AC"], tableau=patterns, name=f"sweep_tableau_{size}")


def paper_workload_with_tableau_size(
    size: int,
    schema: RelationSchema | None = None,
    catalog: list[CityRecord] | None = None,
) -> ECFDSet:
    """The 10-constraint workload with one constraint swapped for a size-``size`` sweep eCFD.

    This mirrors the Fig. 5(c) / 6(c) setup: the overall workload stays at 10
    eCFDs while the selected constraint's tableau grows from 50 to 500.
    """
    schema = schema if schema is not None else cust_ext_schema()
    cities = catalog if catalog is not None else city_catalog(max(size + 5, 300))
    base = list(paper_workload(schema, cities))
    sweep = tableau_sweep_ecfd(schema, size, cities)
    # Replace ψ1 (the first constraint, which the sweep eCFD generalises).
    return ECFDSet([sweep] + base[1:])
