"""Johnson-style greedy approximation for MAXGSAT.

The classical greedy algorithm for maximum satisfiability (Johnson, 1974)
fixes variables one at a time, each time choosing the truth value that
maximises the number of expressions already satisfied plus an optimistic
estimate for the rest.  For general (non-clausal) expressions the clean
expected-weight bookkeeping of Johnson's algorithm is unavailable, so this
implementation uses the natural generalisation:

* variables are processed in a fixed order (sorted by name for determinism);
* for each variable we try both truth values, score the *partial* assignment
  by counting (a) expressions already guaranteed true and (b) expressions
  still possibly true under an optimistic completion, and keep the better
  value;
* "possibly true" is estimated by evaluating the expression under the
  partial assignment completed optimistically in its favour — exact for
  monotone expressions and a sound heuristic otherwise (we only use the
  count to pick a branch, never to claim optimality).

The result is a feasible MAXGSAT solution; quality is evaluated empirically
in the ablation benchmark against the exact solver on small instances.
"""

from __future__ import annotations

from repro.sat.expr import Expression
from repro.sat.maxgsat import MaxGSATInstance, MaxGSATResult

__all__ = ["solve_greedy"]


def _possibly_true(expression: Expression, partial: dict[str, bool]) -> bool:
    """Can the expression still be satisfied by some completion of ``partial``?

    Decided exactly by trying all completions of the (at most few) unassigned
    variables of the expression when that number is small, and optimistically
    (assume satisfiable) otherwise.  Expressions produced by the Section IV
    reduction mention only the variables of a couple of attributes, so the
    exact path is the common one.
    """
    free = sorted(expression.variables() - set(partial))
    if not free:
        return expression.evaluate(partial)
    if len(free) > 10:
        return True
    total = 1 << len(free)
    for mask in range(total):
        candidate = dict(partial)
        for bit, name in enumerate(free):
            candidate[name] = bool((mask >> bit) & 1)
        if expression.evaluate(candidate):
            return True
    return False


def solve_greedy(instance: MaxGSATInstance) -> MaxGSATResult:
    """Greedy variable-by-variable MAXGSAT approximation."""
    variables = instance.variables()
    partial: dict[str, bool] = {}
    for name in variables:
        best_value = False
        best_score = -1
        for value in (True, False):
            partial[name] = value
            score = 0
            for expression in instance.expressions:
                if _possibly_true(expression, partial):
                    score += 1
            if score > best_score:
                best_score = score
                best_value = value
        partial[name] = best_value
    satisfied = instance.satisfied_indices(partial)
    return MaxGSATResult(assignment=dict(partial), satisfied=satisfied)
