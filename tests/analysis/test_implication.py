"""Unit tests for the implication analysis (Proposition 3.2)."""

import pytest

from repro.analysis import (
    find_counterexample,
    implies,
    irredundant_cover,
    is_redundant,
)
from repro.core import ECFD, ECFDSet, cust_schema
from repro.core.patterns import ComplementSet, ValueSet
from repro.core.schema import RelationSchema
from repro.exceptions import ConstraintError


def ct_to_ac(schema, cities, codes):
    """Helper: (cust: [CT] -> [], {AC}) binding the given cities to the given codes."""
    return ECFD(
        schema,
        ["CT"],
        [],
        ["AC"],
        tableau=[({"CT": ValueSet(cities)}, {"AC": ValueSet(codes)})],
    )


class TestImplication:
    def test_member_is_implied(self, paper_sigma, psi1):
        assert implies(paper_sigma, psi1)

    def test_weaker_pattern_is_implied(self, schema):
        """NYC -> {212} implies NYC -> {212, 718} (a superset of allowed codes)."""
        strong = ct_to_ac(schema, ["NYC"], ["212"])
        weak = ct_to_ac(schema, ["NYC"], ["212", "718"])
        assert implies([strong], weak)
        assert not implies([weak], strong)

    def test_subset_of_cities_is_implied(self, schema):
        """Restricting the LHS city set weakens the constraint."""
        broad = ct_to_ac(schema, ["NYC", "LI"], ["212"])
        narrow = ct_to_ac(schema, ["NYC"], ["212"])
        assert implies([broad], narrow)
        assert not implies([narrow], broad)

    def test_unrelated_constraint_not_implied(self, schema, psi1, psi2):
        zip_constraint = ECFD(
            schema,
            ["ZIP"],
            ["CT"],
            tableau=[({"ZIP": {"10001"}}, {"CT": {"NYC"}})],
        )
        assert not implies([psi1, psi2], zip_constraint)

    def test_fd_weakening_via_complement(self, schema):
        """CT -> AC everywhere implies CT -> AC outside NYC/LI, not vice versa."""
        everywhere = ECFD(schema, ["CT"], ["AC"], tableau=[({"CT": "_"}, {"AC": "_"})])
        outside = ECFD(
            schema,
            ["CT"],
            ["AC"],
            tableau=[({"CT": ComplementSet(["NYC", "LI"])}, {"AC": "_"})],
        )
        assert implies([everywhere], outside)
        assert not implies([outside], everywhere)

    def test_counterexample_structure(self, schema):
        """A returned counterexample really satisfies Σ and violates φ."""
        weak = ct_to_ac(schema, ["NYC"], ["212", "718"])
        strong = ct_to_ac(schema, ["NYC"], ["212"])
        counterexample = find_counterexample([weak], strong)
        assert counterexample is not None
        assert len(counterexample) <= 2
        assert weak.is_satisfied_by(counterexample)
        assert not strong.is_satisfied_by(counterexample)

    def test_no_counterexample_when_implied(self, schema):
        strong = ct_to_ac(schema, ["NYC"], ["212"])
        weak = ct_to_ac(schema, ["NYC"], ["212", "718"])
        assert find_counterexample([strong], weak) is None

    def test_empty_sigma_implies_only_trivial(self, schema):
        trivially_true = ECFD(schema, ["CT"], [], ["AC"], tableau=[({"CT": "_"}, {"AC": "_"})])
        nontrivial = ct_to_ac(schema, ["NYC"], ["212"])
        assert implies([], trivially_true)
        assert not implies([], nontrivial)

    def test_unsatisfiable_sigma_implies_everything(self, schema):
        contradiction = ECFD(
            schema,
            ["CT"],
            ["CT"],
            tableau=[
                ({"CT": {"NYC"}}, {"CT": {"NYC"}}),
                ({"CT": {"NYC"}}, {"CT": {"LI"}}),
            ],
        )
        force_nyc = ECFD(schema, ["AC"], [], ["CT"], tableau=[({"AC": "_"}, {"CT": {"NYC"}})])
        sigma = [contradiction, force_nyc]
        anything = ct_to_ac(schema, ["Albany"], ["518"])
        assert implies(sigma, anything)

    def test_schema_mismatch_rejected(self, schema, psi1):
        other_schema = RelationSchema("other", ["A", "B"])
        other = ECFD(other_schema, ["A"], ["B"], tableau=[({"A": "_"}, {"B": "_"})])
        with pytest.raises(ConstraintError):
            implies([psi1], other)

    def test_two_tuple_counterexample_needed(self, schema):
        """Violating an embedded FD requires two tuples; the search must find them."""
        sigma_constraint = ct_to_ac(schema, ["NYC"], ["212", "718"])
        fd_candidate = ECFD(schema, ["CT"], ["AC"], tableau=[({"CT": {"NYC"}}, {"AC": "_"})])
        counterexample = find_counterexample([sigma_constraint], fd_candidate)
        assert counterexample is not None
        assert len(counterexample) == 2
        tuples = counterexample.tuples()
        assert tuples[0]["CT"] == tuples[1]["CT"] == "NYC"
        assert tuples[0]["AC"] != tuples[1]["AC"]


class TestRedundancy:
    def test_is_redundant(self, schema):
        broad = ct_to_ac(schema, ["NYC", "LI"], ["212"])
        narrow = ct_to_ac(schema, ["NYC"], ["212"])
        sigma = [broad, narrow]
        assert is_redundant(sigma, narrow)
        assert not is_redundant(sigma, broad)

    def test_is_redundant_requires_membership(self, schema, psi1):
        with pytest.raises(ConstraintError):
            is_redundant([psi1], ct_to_ac(schema, ["NYC"], ["212"]))

    def test_singleton_never_redundant(self, schema):
        only = ct_to_ac(schema, ["NYC"], ["212"])
        assert not is_redundant([only], only)

    def test_irredundant_cover_drops_entailed(self, schema):
        broad = ct_to_ac(schema, ["NYC", "LI"], ["212"])
        narrow = ct_to_ac(schema, ["NYC"], ["212"])
        weak = ct_to_ac(schema, ["NYC"], ["212", "718"])
        cover = irredundant_cover([broad, narrow, weak])
        assert cover == [broad]

    def test_irredundant_cover_keeps_independent(self, paper_sigma, psi1, psi2):
        cover = irredundant_cover(paper_sigma)
        assert psi1 in cover
        assert psi2 in cover

    def test_cover_is_equivalent_to_input(self, schema):
        broad = ct_to_ac(schema, ["NYC", "LI"], ["212"])
        narrow = ct_to_ac(schema, ["NYC"], ["212"])
        cover = irredundant_cover([broad, narrow])
        for original in [broad, narrow]:
            assert implies(cover, original)
