"""RPL007 — string-keyed registries stay consistent.

The project is deliberately stringly-typed at its seams — backend and
strategy names, figure and driver names, RPC op names, tracked-benchmark
keys — because strings travel well over wires, CLIs, and JSON artifacts.
The compensation is this checker:

* no registry kind registers the same key twice;
* every experiment driver name resolves to a registered figure;
* every ``TRACKED_BENCHMARKS`` key matches a benchmark function that
  actually exists and an ``EXTRA_INFO_FIELDS`` prefix;
* every RPC op literal dispatched from ``src/``/``benchmarks/`` is a
  registered ``@rpc_op`` name.

Cross-checks that need a file outside the scanned set (e.g. the schema
when only ``tests/`` is linted) are skipped rather than guessed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.checks.common import rpc_op_literal
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL007"


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    if not (file.in_src or file.is_benchmark):
        return
    if not index.rpc_ops:
        return
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        op = rpc_op_literal(node, index)
        if op is not None and op not in index.rpc_ops:
            yield Violation(
                CODE,
                file.rel,
                node.lineno,
                node.col_offset,
                f"RPC dispatch of unregistered op {op!r} — every op crossing "
                "the wire is declared via @rpc_op",
            )


def check_project(index: ProjectIndex) -> Iterator[Violation]:
    for kind in sorted(index.registry_keys):
        for key in sorted(index.registry_keys[kind]):
            sites = index.registry_keys[kind][key]
            if len(sites) > 1:
                for rel, line in sites[1:]:
                    yield Violation(
                        CODE,
                        rel,
                        line,
                        0,
                        f"duplicate {kind} registration {key!r} (first "
                        f"registered at {sites[0][0]}:{sites[0][1]})",
                    )

    if index.has_figures and index.has_drivers:
        figures = set(index.registry_keys["figure"])
        for name in sorted(index.registry_keys["driver"]):
            if name not in figures:
                for rel, line in index.registry_keys["driver"][name]:
                    yield Violation(
                        CODE,
                        rel,
                        line,
                        0,
                        f"driver {name!r} has no registered figure — every "
                        "driver's output must be renderable",
                    )

    if index.has_schema and index.has_benchmarks:
        for key in sorted(index.tracked_benchmarks):
            rel, line = index.tracked_benchmarks[key]
            base = key.split("[", 1)[0]
            if base not in index.benchmark_funcs:
                yield Violation(
                    CODE,
                    rel,
                    line,
                    0,
                    f"tracked benchmark {key!r} names no benchmark function "
                    f"({base} not defined under benchmarks/)",
                )
            if index.extra_info_prefixes and not any(
                key.startswith(prefix) for prefix in index.extra_info_prefixes
            ):
                yield Violation(
                    CODE,
                    rel,
                    line,
                    0,
                    f"tracked benchmark {key!r} matches no EXTRA_INFO_FIELDS "
                    "prefix — its readings would be dropped from every figure",
                )
