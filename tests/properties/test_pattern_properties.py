"""Property-based tests (hypothesis) for the pattern algebra and the parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cust_schema, format_ecfd, parse_ecfd
from repro.core.ecfd import ECFD, PatternTuple
from repro.core.patterns import ComplementSet, ValueSet, WILDCARD, Wildcard
from repro.core.schema import Domain

#: Constants drawn from a small alphabet so sets overlap often.
values = st.text(alphabet="abcde", min_size=1, max_size=3)
value_sets = st.frozensets(values, min_size=1, max_size=4)


def patterns():
    return st.one_of(
        st.just(WILDCARD),
        value_sets.map(ValueSet),
        value_sets.map(ComplementSet),
    )


class TestMatchingAlgebra:
    @given(patterns(), patterns(), values)
    def test_intersection_is_conjunction(self, left, right, probe):
        """A value matches left ∩ right iff it matches both operands."""
        both = left.intersect(right)
        expected = left.matches(probe) and right.matches(probe)
        observed = both is not None and both.matches(probe)
        assert observed == expected

    @given(patterns(), patterns(), values)
    def test_subsumption_is_sound(self, big, small, probe):
        """If big subsumes small, every value matching small matches big."""
        if big.subsumes(small) and small.matches(probe):
            assert big.matches(probe)

    @given(patterns())
    def test_pick_returns_matching_value(self, pattern):
        domain = Domain("string")
        value = pattern.pick(domain)
        assert value is not None
        assert pattern.matches(value)

    @given(value_sets, values)
    def test_set_and_complement_are_duals(self, constants, probe):
        assert ValueSet(constants).matches(probe) != ComplementSet(constants).matches(probe)

    @given(patterns(), values)
    def test_wildcard_is_intersection_identity(self, pattern, probe):
        assert WILDCARD.intersect(pattern).matches(probe) == pattern.matches(probe)


class TestParserRoundTrip:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(patterns(), patterns()),
            min_size=1,
            max_size=3,
        ),
        st.booleans(),
    )
    def test_format_parse_round_trip(self, rows, use_yp):
        """format_ecfd / parse_ecfd round-trip arbitrary single-FD eCFDs."""
        schema = cust_schema()
        tableau = [PatternTuple({"CT": lhs}, {"AC": rhs}) for lhs, rhs in rows]
        if use_yp:
            ecfd = ECFD(schema, ["CT"], [], ["AC"], tableau)
        else:
            ecfd = ECFD(schema, ["CT"], ["AC"], [], tableau)
        parsed = parse_ecfd(format_ecfd(ecfd), schema)
        assert parsed.lhs == ecfd.lhs
        assert parsed.rhs == ecfd.rhs
        assert parsed.pattern_rhs == ecfd.pattern_rhs
        assert parsed.tableau == ecfd.tableau
