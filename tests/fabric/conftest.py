"""Shared fixtures of the remote-fabric suite.

Worker fleets are module-scoped: forking ``python -m repro.parallel.worker``
costs real wall-clock, and every engine namespaces its lane ids and state
keys, so many tests can share one fleet without sharing any state.  Chaos
and property tests print their seed on failure through the parametrize ids
(``seed=<n>`` appears in the failing test's node id), so a red CI run names
the exact reproduction command.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel.remote import spawn_local_workers


@pytest.fixture(scope="module")
def worker_fleet():
    """Two localhost shard workers, stopped (hard) at module teardown."""
    handles = spawn_local_workers(2)
    yield handles
    for handle in handles:
        handle.stop()


@pytest.fixture(scope="module")
def worker_addresses(worker_fleet):
    """The fleet's ``(host, port)`` endpoints, for ``remote_workers=``."""
    return [handle.address for handle in worker_fleet]


@pytest.fixture
def open_fds():
    """Count this process's open file descriptors (leak assertions)."""

    def count() -> int:
        return len(os.listdir("/proc/self/fd"))

    return count
