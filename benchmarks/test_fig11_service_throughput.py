"""Fig. 11 (beyond the paper): sustained service throughput and latency.

The always-on quality service keeps vio(D) maintained while clients stream
updates; this benchmark measures what that costs at steady state.  A
Poisson-structured stream of small update events (seeded mix of insertions
and deletions of live tuples, tid reuse included) is driven through the
async API as fast as admission control admits it — an open-loop arrival
*structure* under closed-loop pressure, so the timed region measures the
service's capacity (coalescer + admission + pump + routed lanes), not the
generator's sleeping.  Reported per run:

* ``updates_per_second`` — raw operations applied / wall-clock drive time
  (the sustained-throughput headline);
* ``p99_latency_ms`` — 99th percentile of submit→applied latency per
  event, queueing under back-pressure included.

Service construction, base-data load and the detection bootstrap happen in
setup (untimed), matching the other figures' assumption that vio(D) is
known before the stream starts.  ``workers=1`` runs the plain INCDETECT
delegate under the service front end and feeds the CI perf-regression gate
(``benchmarks/check_regression.py`` against ``benchmarks/baseline.json``);
higher worker counts show the sharded lanes absorbing the same stream.
Exactness of the streamed state is asserted separately below and in
``tests/service/``.
"""

import asyncio
import os

import pytest

from conftest import BENCH_SIZE, DEFAULT_NOISE, dataset_rows

from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.updates import UpdateGenerator
from repro.engine import DataQualityEngine
from repro.service import QualityService

WORKER_COUNTS = [1, 2, 4]
#: Streamed events per run; each carries OPS_PER_EVENT raw operations.
EVENTS = max(60, BENCH_SIZE // 10)
OPS_PER_EVENT = 2
#: Arrival-process rate (shapes the stream; the drive is not paced by it).
POISSON_RATE = 500.0


def _stream_events(row_count: int, seed: int = 7):
    updates = UpdateGenerator(DatasetGenerator(seed=seed), seed=seed + 1)
    return list(
        updates.poisson_stream(
            range(1, row_count + 1),
            rate=POISSON_RATE,
            events=EVENTS,
            ops_per_event=OPS_PER_EVENT,
            insert_fraction=0.55,
            noise_percent=DEFAULT_NOISE,
        )
    )


def _started_service(loop, rows, workload, workers: int) -> QualityService:
    service = QualityService(
        cust_ext_schema(),
        workload,
        workers=workers,
        executor="thread",
        max_batch=256,
        queue_capacity=512,
    )
    loop.run_until_complete(service.start(rows))
    return service


async def _drive(service: QualityService, events) -> dict:
    """Submit the whole stream, then wait for the last window to apply."""
    loop = asyncio.get_running_loop()
    submitted = []
    started = loop.time()
    for event in events:
        t0 = loop.time()
        receipt = await service.submit(
            event.batch.delete_tids, event.batch.insert_rows
        )
        submitted.append((t0, receipt))
    applied = await asyncio.gather(*(r.applied for _, r in submitted))
    elapsed = loop.time() - started
    latencies = sorted(done - t0 for (t0, _), done in zip(submitted, applied))
    ops = sum(
        e.batch.insert_count + e.batch.delete_count for e in events
    )
    return {
        "elapsed": elapsed,
        "updates_per_second": ops / elapsed if elapsed else float("inf"),
        "p99_latency_ms": latencies[int(0.99 * (len(latencies) - 1))] * 1e3,
        "mean_latency_ms": sum(latencies) / len(latencies) * 1e3,
        "ops": ops,
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig11_service_sustained_throughput(benchmark, workers, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    events = _stream_events(len(rows))

    def setup():
        loop = asyncio.new_event_loop()
        service = _started_service(loop, rows, base_workload, workers)
        return (loop, service), {}

    def run(loop, service):
        measured = loop.run_until_complete(_drive(service, events))
        measured["service_stats"] = loop.run_until_complete(service.stats())
        loop.run_until_complete(service.stop())
        loop.close()
        return measured

    measured = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    stats = measured["service_stats"]
    assert stats["submissions"] == EVENTS
    # The maintained state answered throughout; nothing recomputed.
    assert stats["last_update_trace"] is None or stats["last_update_trace"]["mode"] == "incremental"
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples"] = BENCH_SIZE
    benchmark.extra_info["events"] = EVENTS
    benchmark.extra_info["ops"] = measured["ops"]
    benchmark.extra_info["updates_per_second"] = round(measured["updates_per_second"], 1)
    benchmark.extra_info["p99_latency_ms"] = round(measured["p99_latency_ms"], 3)
    benchmark.extra_info["mean_latency_ms"] = round(measured["mean_latency_ms"], 3)
    benchmark.extra_info["ships"] = stats["ships"]
    benchmark.extra_info["shipped_batches"] = stats["shipped_batches"]
    benchmark.extra_info["coalesced_away"] = (
        stats["coalescer"]["cancelled_inserts"] * 2
        + stats["coalescer"]["skipped_deletes"]
    )
    benchmark.extra_info["admission_waits"] = stats["admission"]["waits"]
    benchmark.extra_info["cores"] = os.cpu_count()


def test_fig11_streamed_state_exactness(base_workload):
    """The streamed, coalesced state equals a raw single-threaded replay."""
    rows = dataset_rows(BENCH_SIZE)
    events = _stream_events(len(rows))

    with DataQualityEngine(
        cust_ext_schema(), base_workload, backend="incremental"
    ) as reference:
        reference.load(rows)
        reference.detect()
        for event in events:
            reference.apply_update(event.batch)
        expected = reference.backend.detect()
        expected_count = reference.count()

    async def scenario():
        service = QualityService(
            cust_ext_schema(), base_workload, workers=4, executor="thread"
        )
        await service.start(rows)
        try:
            for event in events:
                await service.submit(event.batch.delete_tids, event.batch.insert_rows)
            counts = await service.detect()
            flags = await service._run_engine(service.engine.backend.detect)
            return counts, flags
        finally:
            await service.stop()

    counts, flags = asyncio.run(scenario())
    assert flags == expected
    assert counts == {**expected.summary(), "tuples": expected_count}
    # The service never fell back to a full re-detection.
    assert counts["dirty"] == expected.summary()["dirty"]
