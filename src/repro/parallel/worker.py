"""The standalone shard worker process of the remote fabric.

``python -m repro.parallel.worker --host 127.0.0.1 --port 0`` starts one
worker: an asyncio server speaking the length-prefixed RPC protocol of
:mod:`repro.parallel.transport` and executing the *same* shard functions
the in-host executors run (:func:`repro.parallel.sharded._shard_bootstrap`
and friends) — the lane/task protocol was shaped for this from the start,
so the worker is a network skin, not a re-implementation.

Execution model
---------------
Every request names a **lane** (a stable string identity chosen by the
coordinator).  The worker pins each lane to its own single-thread executor,
created on first use and kept for the worker's lifetime, so

* a lane's operations run strictly in submission order (the pipelining
  contract of ``incremental_update_many``);
* the SQLite-backed INCDETECT state a lane's bootstrap creates is only ever
  touched from the thread that created it (SQLite connections are
  thread-affine);
* a *reconnecting* coordinator (after a severed connection) reaches the
  same executor thread by sending the same lane id — shard state survives
  connection loss, though the coordinator conservatively re-bootstraps
  after any ambiguous failure.

Different lanes run concurrently; shard states live in the worker's copy of
:data:`repro.parallel.sharded._SHARD_STATES`, exactly as they do in a
process-pool lane.

The reduce stage
----------------
Bootstrap (and recovery ``full_summary``) calls do **not** return their
group summaries: each is *held* worker-side, and one ``reduce_summaries``
call per worker merges every held summary
(:func:`repro.detection.summaries.merge_summaries`) into a single partial
before it crosses the network.  With empty-LHS FDs a shard summary carries
``O(|shard|)`` witness tids, so the coordinator-bound traffic drops from
one ``O(|D|/shards)`` transfer per *shard* to one merged partial per
*worker*.

The worker prints ``READY <host> <port>`` on stdout once listening (the
spawn helpers parse it — ``--port 0`` binds an ephemeral port) and exits on
SIGTERM/SIGINT or a ``shutdown`` request.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import threading
import traceback
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.detection.summaries import merge_summaries
from repro.parallel import sharded as _sharded
from repro.parallel.transport import (
    FrameError,
    TransportClosed,
    encode_frame,
    read_frame,
    rpc_op,
)

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """One remote shard host: lane-pinned execution over the RPC protocol."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._lane_executors: dict[str, ThreadPoolExecutor] = {}
        #: lane id -> state keys bootstrapped on that lane's thread, so a
        #: clean shutdown can close each SQLite state on its owning thread.
        self._lane_keys: dict[str, set[str]] = {}
        self._held_summaries: dict[str, dict] = {}
        self._held_lock = threading.Lock()
        self._shutdown = asyncio.Event()
        #: Requests served / connections accepted, returned by ``ping``.
        self.requests = 0
        self.connections = 0

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drop every lane's shard states on their own threads, then retire
        # the executors — a clean worker exit leaks neither SQLite handles
        # nor threads.
        loop = asyncio.get_running_loop()
        for lane, executor in self._lane_executors.items():
            for key in sorted(self._lane_keys.get(lane, ())):
                try:
                    await loop.run_in_executor(executor, _sharded._shard_drop, key)
                except Exception:  # noqa: BLE001 - teardown is best-effort
                    pass
            executor.shutdown(wait=False)
        self._lane_executors.clear()
        self._lane_keys.clear()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    message, _ = await read_frame(reader)
                except (TransportClosed, FrameError):
                    # EOF, reset, or corrupt framing: this conversation
                    # cannot continue (states survive for a reconnect).
                    break
                seq, lane, op, payload = message
                self.requests += 1
                try:
                    handler = _HANDLERS[op]
                except KeyError:
                    reply = (seq, False, ("FabricError", f"unknown op {op!r}", ""))
                else:
                    executor = self._lane_executors.setdefault(
                        lane, ThreadPoolExecutor(max_workers=1, thread_name_prefix=lane)
                    )
                    try:
                        result = await loop.run_in_executor(
                            executor, handler, self, lane, payload
                        )
                        reply = (seq, True, result)
                    except Exception as exc:  # noqa: BLE001 - protocol boundary
                        reply = (
                            seq,
                            False,
                            (type(exc).__name__, str(exc), traceback.format_exc()),
                        )
                writer.write(encode_frame(reply))
                await writer.drain()
                if op == "shutdown":
                    self._shutdown.set()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Operations (each runs on the request's lane thread).  Every handler
    # carries its @rpc_op declaration — the idempotency flag is what the
    # coordinator's retry layer and the RPL002 lint rule key off.
    # ------------------------------------------------------------------
    @rpc_op("ping", idempotent=True)
    def _op_ping(self, lane: str, payload: Any) -> dict:
        return {
            "pong": True,
            "requests": self.requests,
            "connections": self.connections,
            "states": len(_sharded._SHARD_STATES),
        }

    @rpc_op("bootstrap", idempotent=True)
    def _op_bootstrap(self, lane: str, payload: Any) -> tuple:
        """Build one shard state; hold its summary for the reduce stage."""
        key = payload[0]
        # A re-bootstrap at an existing key (retry after an ambiguous
        # failure) must not leak the previous delegate's database.
        _sharded._shard_drop(key)
        key, violations, summary = _sharded._shard_bootstrap(payload)
        with self._held_lock:
            self._held_summaries[key] = summary
            self._lane_keys.setdefault(lane, set()).add(key)
        return (key, violations, None)

    @rpc_op("update", idempotent=False)
    def _op_update(self, lane: str, payload: Any) -> tuple:
        return _sharded._shard_update(payload)

    @rpc_op("full_summary", idempotent=True)
    def _op_full_summary(self, lane: str, payload: str) -> str:
        """Re-emit one live shard's full summary (recovery); held for reduce."""
        state = _sharded._SHARD_STATES[payload]
        summary = (
            state.backend.fd_group_summary(state.summary_fragments)
            if state.summary_fragments
            else {}
        )
        with self._held_lock:
            self._held_summaries[payload] = summary
        return payload

    @rpc_op("reduce_summaries", idempotent=False)
    def _op_reduce_summaries(self, lane: str, payload: Sequence[str]) -> dict:
        """Merge and release the held summaries of ``payload``'s state keys."""
        with self._held_lock:
            parts = [
                self._held_summaries.pop(key)
                for key in payload
                if key in self._held_summaries
            ]
        return merge_summaries(parts)

    @rpc_op("detect_shard", idempotent=True)
    def _op_detect_shard(self, lane: str, payload: Any) -> tuple:
        return _sharded._detect_shard(payload)

    @rpc_op("breakdown", idempotent=True)
    def _op_breakdown(self, lane: str, payload: str) -> tuple:
        return _sharded._shard_breakdown(payload)

    @rpc_op("state_stats", idempotent=True)
    def _op_state_stats(self, lane: str, payload: str) -> tuple:
        return _sharded._shard_state_stats(payload)

    @rpc_op("drop", idempotent=True)
    def _op_drop(self, lane: str, payload: str) -> str:
        with self._held_lock:
            self._held_summaries.pop(payload, None)
            for keys in self._lane_keys.values():
                keys.discard(payload)
        return _sharded._shard_drop(payload)

    @rpc_op("shutdown", idempotent=True)
    def _op_shutdown(self, lane: str, payload: Any) -> bool:
        return True


#: op name -> handler, derived from the @rpc_op tags above — the registry
#: is the single enumeration, so a declared-but-unrouted op cannot exist.
_HANDLERS = {
    handler.__rpc_op__.name: handler
    for handler in (
        ShardWorker._op_ping,
        ShardWorker._op_bootstrap,
        ShardWorker._op_update,
        ShardWorker._op_full_summary,
        ShardWorker._op_reduce_summaries,
        ShardWorker._op_detect_shard,
        ShardWorker._op_breakdown,
        ShardWorker._op_state_stats,
        ShardWorker._op_drop,
        ShardWorker._op_shutdown,
    )
}


async def _amain(host: str, port: int) -> None:
    worker = ShardWorker(host, port)
    await worker.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, worker._shutdown.set)
    print(f"READY {worker.host} {worker.port}", flush=True)
    await worker.serve_until_shutdown()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.worker",
        description="Run one remote shard worker of the repro fabric.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral one)"
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
