"""Exception hierarchy for the eCFD reproduction library.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or referenced inconsistently.

    Raised, for example, when an attribute name is duplicated, when a
    constraint mentions an attribute that does not belong to the schema, or
    when a tuple is built with missing / extra attributes.
    """


class DomainError(ReproError):
    """A value is used outside the declared domain of its attribute."""


class PatternError(ReproError):
    """A pattern tuple or pattern value is malformed.

    Examples: an empty value set, a pattern tuple that does not cover
    exactly the attributes of its eCFD, or overlapping ``Y`` / ``Yp``
    attribute lists.
    """


class ConstraintError(ReproError):
    """An eCFD / CFD / FD object is structurally invalid."""


class ParseError(ReproError):
    """The textual eCFD syntax could not be parsed.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        Character offset at which parsing failed, if known.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class UnsatisfiableError(ReproError):
    """Raised when an operation requires a satisfiable constraint set.

    For instance, asking for a witness tuple of an unsatisfiable set of
    eCFDs raises this error rather than returning ``None`` silently.
    """


class DetectionError(ReproError):
    """A violation-detection run failed (bad encoding, missing table, ...)."""


class DatabaseError(ReproError):
    """The SQLite substrate was used incorrectly (unknown table, reload, ...)."""


class RepairError(ReproError):
    """A repair could not be constructed (e.g. unsatisfiable constraints)."""


class DiscoveryError(ReproError):
    """eCFD discovery was invoked with invalid parameters."""
