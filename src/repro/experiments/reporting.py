"""Plain-text, CSV and JSON rendering of experiment series.

The JSON form (:meth:`ExperimentResult.to_json` /
:meth:`ExperimentResult.from_json`) is the interchange schema between the
experiment drivers and the figure registry: ``run_all --json-out DIR``
dumps one file per driver, and ``python -m repro.reports`` loads them via
``--experiments-dir`` to plot driver-produced sweeps instead of (or next
to) the benchmark artifacts.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.experiments.timing import Measurement

__all__ = ["ExperimentResult", "format_table", "to_csv"]

#: Version tag embedded in the JSON interchange form.
RESULT_SCHEMA = "repro.experiment-result/v1"


def _columns(rows: Sequence[dict[str, float | str]]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def format_table(rows: Sequence[dict[str, float | str]]) -> str:
    """Render rows as an aligned plain-text table (one line per row)."""
    if not rows:
        return "(no data)"
    columns = _columns(rows)
    rendered = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(columns[index]), *(len(line[index]) for line in rendered))
        for index in range(len(columns))
    ]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def to_csv(rows: Sequence[dict[str, float | str]]) -> str:
    """Render rows as CSV text (useful for re-plotting the figures)."""
    if not rows:
        return ""
    columns = _columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


@dataclass
class ExperimentResult:
    """The outcome of one figure driver: an identified series of measurements."""

    experiment_id: str
    title: str
    measurements: list[Measurement] = field(default_factory=list)

    def rows(self) -> list[dict[str, float | str]]:
        """The measurements flattened to plain dict rows."""
        return [m.as_row() for m in self.measurements]

    def series(self, label: str) -> list[Measurement]:
        """The measurements of one named series, in sweep order."""
        return [m for m in self.measurements if m.label == label]

    def to_table(self) -> str:
        """A printable report (title + aligned table)."""
        return f"== {self.experiment_id}: {self.title} ==\n{format_table(self.rows())}"

    def to_csv(self) -> str:
        """The measurements as CSV text."""
        return to_csv(self.rows())

    def to_json(self) -> str:
        """The result in the JSON interchange form (stable key order)."""
        payload = {
            "schema": RESULT_SCHEMA,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "measurements": [
                {
                    "label": m.label,
                    "parameter": m.parameter,
                    "seconds": m.seconds,
                    "extra": dict(m.extra),
                }
                for m in self.measurements
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse the JSON interchange form back into a result.

        Raises :class:`ValueError` with the structural problem when the
        payload is not an experiment result.
        """
        payload = json.loads(text)
        if not isinstance(payload, dict) or "experiment_id" not in payload:
            raise ValueError("not an experiment-result payload (no experiment_id)")
        result = cls(str(payload["experiment_id"]), str(payload.get("title", "")))
        for index, entry in enumerate(payload.get("measurements", [])):
            if not isinstance(entry, dict) or "label" not in entry:
                raise ValueError(f"measurements[{index}]: missing label")
            result.measurements.append(
                Measurement(
                    label=str(entry["label"]),
                    parameter=entry.get("parameter", 0),
                    seconds=float(entry.get("seconds", 0.0)),
                    extra=dict(entry.get("extra", {})),
                )
            )
        return result
