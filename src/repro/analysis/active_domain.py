"""Active domains for the static analyses of Sections III and IV.

All three constructions in the paper — the single-tuple witness search for
satisfiability (Proposition 3.1), the two-tuple counterexample search for
implication (Proposition 3.2), and the MAXSS → MAXGSAT reduction
(Section IV) — reason over a restricted *active domain* per attribute:

    adom(A) = the constants appearing in some pattern entry ``tp[A]``
              of the input constraints,
            + a bounded number of "fresh" values of ``dom(A)`` not among
              those constants (if the domain still has unused values).

The key observation is that pattern entries only test membership of the
mentioned constant sets, so any two values outside every mentioned set are
interchangeable; one fresh value suffices for a single-tuple model, and two
fresh values suffice for a two-tuple model (they allow the two tuples to
disagree on an attribute without touching any constant).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.ecfd import ECFD
from repro.core.schema import RelationSchema, Value

__all__ = ["active_domains", "mentioned_attributes"]


def mentioned_attributes(constraints: Sequence[ECFD]) -> list[str]:
    """Attributes mentioned by at least one constraint, in schema order."""
    if not constraints:
        return []
    schema = constraints[0].schema
    mentioned: set[str] = set()
    for constraint in constraints:
        mentioned |= constraint.attributes()
    return [name for name in schema.attribute_names if name in mentioned]


def active_domains(
    constraints: Sequence[ECFD],
    schema: RelationSchema,
    fresh_per_attribute: int = 1,
    extra_constants: dict[str, Iterable[Value]] | None = None,
) -> dict[str, list[Value]]:
    """The per-attribute active domains of a constraint set.

    Parameters
    ----------
    constraints:
        The eCFDs whose pattern constants seed the active domains.
    schema:
        The relation schema (the result covers every schema attribute, so
        callers can always build complete tuples).
    fresh_per_attribute:
        How many values outside the mentioned constants to add — 1 for the
        satisfiability construction, 2 for the implication construction.
        Fewer are added when a finite domain has no unused values left,
        mirroring the paper's "if there exists any" caveat.
    extra_constants:
        Additional constants to seed specific attributes with (the
        implication analysis adds the constants of the candidate eCFD).

    Returns
    -------
    dict
        Maps every attribute name of ``schema`` to a deterministic, sorted
        list of candidate values.
    """
    seeds: dict[str, set[Value]] = {name: set() for name in schema.attribute_names}
    for constraint in constraints:
        for attribute, values in constraint.constants().items():
            seeds[attribute].update(values)
    if extra_constants:
        for attribute, values in extra_constants.items():
            seeds[attribute].update(values)

    result: dict[str, list[Value]] = {}
    for attribute in schema.attribute_names:
        domain = schema.domain(attribute)
        candidates = {value for value in seeds[attribute] if value in domain}
        for _ in range(fresh_per_attribute):
            fresh = domain.fresh_value(exclude=candidates)
            if fresh is None:
                break
            candidates.add(fresh)
        result[attribute] = sorted(candidates, key=str)
    return result
