"""Fig. 6(b): INCDETECT vs BATCHDETECT as the error rate grows.

Paper setting: |D| = 100k, |ΔD⁺| = |ΔD⁻| = 10k, noise swept from 0% to 9%.
Expected shape: both curves are roughly flat in the noise rate, with
INCDETECT below BATCHDETECT throughout.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    incremental_engine,
    sweep,
    update_batch,
    updated_batch_engine,
)

NOISE_LEVELS = sweep([0.0, 1.0, 3.0, 5.0, 7.0, 9.0])
UPDATE_SIZE = max(BENCH_SIZE // 10, 50)


@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_fig6b_incdetect_scalability_in_noise(benchmark, noise, base_workload):
    rows = dataset_rows(BENCH_SIZE, noise=noise)
    batch = update_batch(len(rows), UPDATE_SIZE, noise=noise)

    def setup():
        return (incremental_engine(rows, base_workload),), {}

    def run(engine):
        # Deletions then insertions, maintained by one INCDETECT pass each.
        # Timed through the facade deliberately: apply_update is the
        # production hot path, so its bookkeeping is part of the measurement.
        return engine.apply_update(batch)

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["noise_percent"] = noise
    benchmark.extra_info["dirty"] = result.dirty_count


@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_fig6b_batchdetect_after_update_in_noise(benchmark, noise, base_workload):
    rows = dataset_rows(BENCH_SIZE, noise=noise)
    batch = update_batch(len(rows), UPDATE_SIZE, noise=noise)

    def setup():
        return (updated_batch_engine(rows, batch, base_workload),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["noise_percent"] = noise
    benchmark.extra_info["dirty"] = result.dirty_count
