"""The ``python -m repro.lint`` command line.

Exit codes: 0 clean (baselined findings do not fail the run), 1 when
violations or parse errors remain, 2 on usage errors (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.lint.registry import RULES
from repro.lint.runner import run_lint

__all__ = ["main"]

DEFAULT_PATHS = ("src", "benchmarks", "tests")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific AST invariant checks (rules RPL001-RPL007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are reported relative to (default: cwd)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{rule.code} [{rule.name}] {rule.summary}")
        return 0

    root = Path(args.root).resolve()
    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    baseline: set[tuple[str, str, str]] = set()
    if not args.write_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = run_lint(paths, root, baseline)

    if args.write_baseline:
        write_baseline(baseline_path, result.violations)
        print(
            f"wrote {len(result.violations)} baseline entr"
            f"{'y' if len(result.violations) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    if args.json:
        payload = {
            "files_checked": result.files_checked,
            "violations": [v.as_json() for v in result.violations],
            "baselined": [v.as_json() for v in result.baselined],
            "errors": [{"path": p, "message": m} for p, m in result.errors],
        }
        print(json.dumps(payload, indent=2))
    else:
        for path, message in result.errors:
            print(f"{path}: error: {message}")
        for violation in result.violations:
            print(violation.format())
        summary = (
            f"{result.files_checked} files checked, "
            f"{len(result.violations)} violation"
            f"{'' if len(result.violations) == 1 else 's'}"
        )
        if result.baselined:
            summary += f", {len(result.baselined)} baselined"
        if result.errors:
            summary += f", {len(result.errors)} parse errors"
        print(summary)

    return 0 if result.ok else 1
