"""Coordinator-local incremental re-validation for batched repair rounds.

Shipping every repair round to the backend costs one lane round-trip per
round; batching several rounds into one routed delta requires the planner's
*input flags* for rounds 2..k before anything was shipped.
:class:`MirrorValidator` supplies them: it maintains the exact violation
flags of the strategy's mirror relation under cell changes, so a repair
strategy can plan round after round locally and ship the accumulated fixes
as a single delta.

Exactness has two halves:

* **against the mirror** the validator is exact by construction: per
  embedded-FD fragment it keeps the ``xv → {tid: yv}`` group index (seeded
  with one pass over the mirror), every cell change moves its tuple between
  groups, and a group violates iff its yv multiset holds ≥ 2 distinct
  values — the reference semantics of
  :meth:`repro.core.ecfd.ECFD.violations`.  SV flags are re-derived for
  exactly the changed tuples;
* **against the backend** the validator matches patterns with the reference
  Python semantics, while SQL-backed delegates compare pattern constants as
  text (an ``int`` constant ``212`` matches the stored ``'212'`` in SQL but
  not in Python).  Both agree whenever every pattern constant is a string —
  all stored values are text — which :func:`text_safe_patterns` decides.
  Batched repair only engages when it holds, so the locally planned rounds
  are bit-identical to rounds planned against shipped backend flags.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.violations import ViolationSet

__all__ = ["MirrorValidator", "text_safe_patterns"]


def text_safe_patterns(sigma: ECFDSet | Sequence[ECFD]) -> bool:
    """Whether Python and SQL pattern matching coincide for ``sigma``.

    True iff every constant in every tableau entry is a string: stored
    values are always text, so string constants compare identically under
    the reference Python semantics and the SQL encoding's text comparison.
    A non-string constant (e.g. an ``int`` area code) matches in SQL but
    not in Python — local re-validation could then diverge from an
    SQL-backed delegate, so callers must fall back to shipped rounds.
    """
    for ecfd in sigma:
        for pattern in ecfd.tableau:
            for entry in list(pattern.lhs.values()) + list(pattern.rhs.values()):
                if any(not isinstance(c, str) for c in entry.constants()):
                    return False
    return True


class _FDIndex:
    """The live group index of one embedded-FD fragment."""

    __slots__ = ("fragment", "pattern", "attributes", "members", "counts", "violating")

    def __init__(self, fragment: ECFD):
        self.fragment = fragment
        self.pattern = fragment.tableau[0]
        #: Attributes whose change can move a tuple between groups (LHS
        #: pattern match + xv read the LHS, yv reads the RHS).
        self.attributes = frozenset(fragment.lhs) | frozenset(fragment.rhs)
        #: xv -> {tid: yv} over tuples matching the LHS pattern.
        self.members: dict[tuple, dict[int, tuple]] = {}
        #: xv -> {yv: positive count}; zero entries are pruned, so a group
        #: violates iff len(counts[xv]) >= 2 (reference MV semantics).
        self.counts: dict[tuple, dict[tuple, int]] = {}
        self.violating: set[tuple] = set()

    def _reclassify(self, xv: tuple) -> None:
        if len(self.counts.get(xv, ())) >= 2:
            self.violating.add(xv)
        else:
            self.violating.discard(xv)

    def membership(self, row: Mapping[str, object]) -> tuple[tuple, tuple] | None:
        """The ``(xv, yv)`` slot of a row, or ``None`` if the LHS mismatches."""
        if not self.pattern.matches_lhs(row):
            return None
        return (
            tuple(row[a] for a in self.fragment.lhs),
            tuple(row[a] for a in self.fragment.rhs),
        )

    def add(self, tid: int, xv: tuple, yv: tuple) -> None:
        self.members.setdefault(xv, {})[tid] = yv
        counts = self.counts.setdefault(xv, {})
        counts[yv] = counts.get(yv, 0) + 1
        self._reclassify(xv)

    def remove(self, tid: int, xv: tuple, yv: tuple) -> None:
        group = self.members[xv]
        del group[tid]
        counts = self.counts[xv]
        remaining = counts[yv] - 1
        if remaining > 0:
            counts[yv] = remaining
        else:
            del counts[yv]
        if group:
            self._reclassify(xv)
        else:
            del self.members[xv]
            del self.counts[xv]
            self.violating.discard(xv)


class MirrorValidator:
    """Exact maintained violation flags of a relation under cell changes.

    Parameters
    ----------
    sigma:
        The constraint set; fragments are the normalized single-pattern
        form, like everywhere else in the detection stack.
    relation:
        The relation whose flags to maintain.  The validator snapshots the
        rows at construction (one pass, O(|D| x fragments) index build) and
        afterwards tracks them itself through :meth:`apply_changes` — the
        caller may mutate ``relation`` in lockstep (the fix planner does)
        without confusing the validator.
    """

    def __init__(self, sigma: ECFDSet | Sequence[ECFD], relation: Relation):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self._fragments = [fragment for _, fragment in self.sigma.normalize()]
        self._rows: dict[int, dict[str, object]] = {
            t.tid: t.as_dict() for t in relation.tuples() if t.tid is not None
        }
        self._fd = [_FDIndex(f) for f in self._fragments if f.rhs]
        self._sv: set[int] = set()
        for tid, row in self._rows.items():
            self._refresh_sv(tid, row)
        for index in self._fd:
            for tid, row in self._rows.items():
                slot = index.membership(row)
                if slot is not None:
                    index.add(tid, *slot)

    def _refresh_sv(self, tid: int, row: Mapping[str, object]) -> None:
        for fragment in self._fragments:
            pattern = fragment.tableau[0]
            if pattern.matches_lhs(row) and not pattern.matches_rhs(row):
                self._sv.add(tid)
                return
        self._sv.discard(tid)

    def apply_changes(self, changes: Sequence) -> ViolationSet:
        """Fold a batch of cell changes in and return the updated flags.

        ``changes`` are :class:`~repro.repair.cost.CellChange`-shaped
        (``tid`` / ``attribute`` / ``new_value``), applied in order —
        exactly the batch a repair round planned.  Cost is proportional to
        the batch, never to |D|.
        """
        touched: set[int] = set()
        for change in changes:
            tid = change.tid
            row = self._rows[tid]
            new_row = dict(row)
            new_row[change.attribute] = str(change.new_value)
            for index in self._fd:
                if change.attribute not in index.attributes:
                    continue
                before = index.membership(row)
                after = index.membership(new_row)
                if before == after:
                    continue
                if before is not None:
                    index.remove(tid, *before)
                if after is not None:
                    index.add(tid, *after)
            self._rows[tid] = new_row
            touched.add(tid)
        for tid in touched:
            self._refresh_sv(tid, self._rows[tid])
        return self.flags()

    def flags(self) -> ViolationSet:
        """The current SV / MV flags (cost proportional to the violations)."""
        mv: set[int] = set()
        for index in self._fd:
            for xv in index.violating:
                mv.update(index.members[xv])
        return ViolationSet.from_flags(self._sv, mv)
