"""Unit tests for CFDs and the CFD <-> eCFD correspondence (repro.core.cfd)."""

import pytest

from repro.core.cfd import CFD, cfd_from_ecfd
from repro.core.ecfd import ECFD
from repro.core.instance import Relation
from repro.core.patterns import ValueSet, Wildcard
from repro.exceptions import ConstraintError


@pytest.fixture
def phi1(schema):
    """The CFD φ1 of Example 1.1: city determines area code for three cities."""
    return CFD(
        schema,
        lhs=["CT"],
        rhs=["AC"],
        tableau=[
            {"CT": "Albany", "AC": "518"},
            {"CT": "Troy", "AC": "518"},
            {"CT": "Colonie", "AC": "518"},
        ],
        name="phi1",
    )


class TestConstruction:
    def test_rows_must_cover_x_union_y(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["CT"], ["AC"], [{"CT": "Albany"}])
        with pytest.raises(ConstraintError):
            CFD(schema, ["CT"], ["AC"], [{"CT": "Albany", "AC": "518", "ZIP": "x"}])

    def test_entries_must_be_constants_or_wildcards(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["CT"], ["AC"], [{"CT": {"Albany", "Troy"}, "AC": "518"}])

    def test_empty_rhs_rejected(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["CT"], [], [{"CT": "Albany"}])

    def test_empty_tableau_rejected(self, schema):
        with pytest.raises(ConstraintError):
            CFD(schema, ["CT"], ["AC"], [])

    def test_wildcard_spellings(self, schema):
        cfd = CFD(schema, ["CT"], ["AC"], [{"CT": "_", "AC": None}])
        assert cfd.tableau[0] == {"CT": None, "AC": None}


class TestSemanticsViaEcfd:
    def test_phi1_catches_t1(self, phi1, d0):
        """Example 1.1: φ1 identifies t1 (Albany, 718) as an error."""
        violations = phi1.violations(d0, constraint_id=1)
        assert 1 in violations.sv_tids
        assert not phi1.is_satisfied_by(d0)

    def test_phi1_ignores_nyc_tuples(self, phi1, d0):
        violations = phi1.violations(d0)
        assert {4, 5, 6}.isdisjoint(violations.violating_tids)

    def test_pure_fd_as_cfd(self, schema):
        """A CFD with an all-wildcard row behaves like the plain FD."""
        cfd = CFD(schema, ["CT"], ["AC"], [{"CT": None, "AC": None}])
        clean = Relation(
            schema,
            [
                {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Troy", "ZIP": "1"},
                {"AC": "518", "PN": "2", "NM": "b", "STR": "s", "CT": "Troy", "ZIP": "1"},
            ],
        )
        dirty = Relation(
            schema,
            [
                {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Troy", "ZIP": "1"},
                {"AC": "519", "PN": "2", "NM": "b", "STR": "s", "CT": "Troy", "ZIP": "1"},
            ],
        )
        assert cfd.is_satisfied_by(clean)
        assert not cfd.is_satisfied_by(dirty)


class TestConversion:
    def test_to_ecfd_structure(self, phi1):
        ecfd = phi1.to_ecfd()
        assert isinstance(ecfd, ECFD)
        assert ecfd.pattern_rhs == ()
        assert ecfd.is_cfd()
        first = ecfd.tableau[0]
        assert first.lhs_entry("CT") == ValueSet(["Albany"])
        assert first.rhs_entry("AC") == ValueSet(["518"])

    def test_wildcards_stay_wildcards(self, schema):
        cfd = CFD(schema, ["CT"], ["AC"], [{"CT": None, "AC": "518"}])
        entry = cfd.to_ecfd().tableau[0].lhs_entry("CT")
        assert isinstance(entry, Wildcard)

    def test_round_trip(self, phi1):
        back = cfd_from_ecfd(phi1.to_ecfd())
        assert back.lhs == phi1.lhs
        assert back.rhs == phi1.rhs
        assert back.tableau == phi1.tableau

    def test_ecfd_with_disjunction_has_no_cfd_form(self, psi1, psi2):
        with pytest.raises(ConstraintError):
            cfd_from_ecfd(psi1)
        with pytest.raises(ConstraintError):
            cfd_from_ecfd(psi2)

    def test_equivalence_of_semantics(self, phi1, d0):
        """The CFD and its eCFD form agree on every violation."""
        assert phi1.violations(d0, constraint_id=5) == phi1.to_ecfd().violations(d0, constraint_id=5)
