"""repro.lint — project-specific AST invariant checks.

``python -m repro.lint [paths]`` runs seven AST-visitor rules encoding
the invariants the reproduction's correctness rests on but Python cannot
express: wire-safety of RPC payloads (RPL001), retry idempotency backed
by the ``@rpc_op`` registry (RPL002), engine determinism (RPL003),
asyncio hygiene (RPL004), SQLite thread affinity (RPL005), the
ReproError exception taxonomy (RPL006), and string-keyed registry
consistency (RPL007).

Findings suppress line-by-line with ``# reprolint: disable=RPLxxx`` and
project-wide via the (empty by policy) baseline file; see
``docs/LINTING.md`` for the catalog and the add-a-rule recipe.
"""

from __future__ import annotations

from repro.lint.model import Rule, SourceFile, Violation
from repro.lint.registry import RULES, rules_table
from repro.lint.runner import LintResult, run_lint

__all__ = [
    "LintResult",
    "RULES",
    "Rule",
    "SourceFile",
    "Violation",
    "rules_table",
    "run_lint",
]
