"""Fig. 8 (beyond the paper): sharded detection speedup vs. worker count.

The paper's evaluation is single-threaded; this benchmark extends it with
the sharded multi-core backend of :mod:`repro.parallel`.  BATCHDETECT runs
as the per-shard delegate over the default noisy dataset; ``workers=1`` is
the plain single-threaded backend (no sharding layer at all) and doubles as
the hot path tracked by the CI perf-regression gate
(``benchmarks/check_regression.py`` against ``benchmarks/baseline.json``).

Wall-clock speedup is recorded in ``extra_info`` for every worker count.
Exactness (sharded == single-threaded violation sets) is asserted at every
size; the ≥1.5x speedup expectation is only asserted on hardware that can
deliver it — at least 4 usable cores and a paper-scale relation
(``REPRO_BENCH_SIZE >= 50000``) — so correctness CI at reduced scale stays
deterministic.
"""

import os
import time

import pytest

from conftest import BENCH_SIZE, dataset_rows

from repro.core.schema import cust_ext_schema
from repro.engine import DataQualityEngine

WORKER_COUNTS = [1, 2, 4]
#: Scale at which the ≥1.5x @ 4 workers acceptance target is enforced.
SPEEDUP_ENFORCEMENT_SIZE = 50_000
SPEEDUP_TARGET = 1.5


def _engine(rows, workload, workers: int) -> DataQualityEngine:
    engine = DataQualityEngine(
        cust_ext_schema(), workload, backend="batch", workers=workers
    )
    engine.load(rows)
    return engine


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig8_sharded_batch_detect_scaling(benchmark, workers, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    partition_stats = {}

    def setup():
        return (_engine(rows, base_workload, workers),), {}

    def run(engine):
        result = engine.detect()
        if hasattr(engine.backend, "partition_stats"):
            partition_stats.update(engine.backend.partition_stats())
        engine.close()
        return result

    # Multiple rounds: the workers=1 mean feeds the CI regression gate, and
    # a single ~50 ms sample on a shared runner is all noise.
    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples"] = BENCH_SIZE
    benchmark.extra_info["dirty"] = result.dirty_count
    benchmark.extra_info["cores"] = os.cpu_count()
    # Replication/summary accounting for the BENCH_<sha>.json artifact; the
    # perf gate asserts replication_factor <= 1.0 (workers=1 bypasses the
    # sharding layer entirely — every row trivially "ships" once).
    benchmark.extra_info["replication_factor"] = partition_stats.get(
        "replication_factor", 1.0
    )
    benchmark.extra_info["summary_bytes"] = partition_stats.get("summary_bytes", 0)
    benchmark.extra_info["summary_groups"] = partition_stats.get("summary_groups", 0)


def test_fig8_sharded_exactness_and_speedup(base_workload):
    """Sharded results are bit-identical; speedup enforced at full scale."""
    rows = dataset_rows(BENCH_SIZE)

    single = _engine(rows, base_workload, workers=1)
    started = time.perf_counter()
    reference = single.detect()
    single_seconds = time.perf_counter() - started
    single.close()

    sharded = _engine(rows, base_workload, workers=4)
    started = time.perf_counter()
    parallel = sharded.detect()
    sharded_seconds = time.perf_counter() - started
    stats = sharded.backend.partition_stats()
    sharded.close()

    assert parallel.violations == reference.violations
    # Single-pass sharding: every stored row ships to exactly one shard.
    assert stats["replication_factor"] <= 1.0

    speedup = single_seconds / sharded_seconds if sharded_seconds else float("inf")
    cores = os.cpu_count() or 1
    print(
        f"\nfig8: |D|={BENCH_SIZE}, cores={cores}: "
        f"1 worker {single_seconds:.3f}s, 4 workers {sharded_seconds:.3f}s, "
        f"speedup {speedup:.2f}x, replication {stats['replication_factor']:.1f}x "
        f"(clustered plan would ship {stats['clustered_replication_factor']:.1f}x), "
        f"summary {stats['summary_bytes']} bytes in {stats['summary_groups']} groups"
    )
    if cores >= 4 and BENCH_SIZE >= SPEEDUP_ENFORCEMENT_SIZE:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x speedup at 4 workers on "
            f"{BENCH_SIZE} tuples with {cores} cores, measured {speedup:.2f}x"
        )
