"""Exact satisfiability analysis of eCFDs (Proposition 3.1).

The satisfiability problem asks, for a set Σ of eCFDs over a schema R,
whether some *nonempty* instance of R satisfies Σ.  The paper proves the
problem NP-complete and establishes the small-model property used here:

    Σ is satisfiable  ⟺  some instance consisting of a **single tuple**
                          satisfies Σ.

(The "if" direction is immediate; for "only if", any tuple of a satisfying
instance already satisfies every pattern constraint, and a one-tuple
instance can never violate an embedded FD.)

The checker therefore searches for a single witness tuple.  Candidate
values per attribute come from the active domain (pattern constants plus
one fresh value — values outside every mentioned constant set are
interchangeable), and the search is a straightforward backtracking over the
attributes mentioned by Σ with sound pruning:

* as soon as every LHS attribute of a (normalized, single-pattern)
  constraint is assigned and matches, any assigned RHS/Yp attribute that
  fails its pattern prunes the branch;
* attributes not mentioned by Σ are filled with an arbitrary domain value
  at the end.

For cross-validation, :func:`is_satisfiable_via_reduction` decides the same
question through the Section IV reduction (Σ is satisfiable iff the optimal
MAXGSAT solution of ``f(Σ)`` satisfies *all* formulas); the two paths are
compared in the test-suite and in the MAXSS ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.active_domain import active_domains, mentioned_attributes
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.schema import Value
from repro.exceptions import UnsatisfiableError

__all__ = ["find_witness", "is_satisfiable", "is_satisfiable_via_reduction", "witness_or_raise"]


def _as_list(sigma: ECFDSet | Sequence[ECFD]) -> list[ECFD]:
    return list(sigma)


def find_witness(sigma: ECFDSet | Sequence[ECFD]) -> dict[str, Value] | None:
    """Return a single-tuple witness ``{t} ⊨ Σ``, or ``None`` if Σ is unsatisfiable.

    The returned mapping covers every attribute of the schema, so it can be
    inserted directly into a :class:`~repro.core.instance.Relation`.
    """
    constraints = _as_list(sigma)
    if not constraints:
        return None
    schema = constraints[0].schema

    fragments = [fragment for constraint in constraints for fragment in constraint.normalize()]
    domains = active_domains(fragments, schema, fresh_per_attribute=1)
    search_order = mentioned_attributes(fragments)

    assignment: dict[str, Value] = {}

    def consistent() -> bool:
        """Sound pruning: no fragment is already irrecoverably violated."""
        for fragment in fragments:
            pattern = fragment.tableau[0]
            lhs_assigned = all(a in assignment for a in fragment.lhs)
            if not lhs_assigned:
                continue
            if not pattern.matches_lhs(assignment):
                continue
            for attribute in fragment.rhs_all:
                if attribute in assignment and not pattern.rhs_entry(attribute).matches(
                    assignment[attribute]
                ):
                    return False
        return True

    def backtrack(position: int) -> bool:
        if position == len(search_order):
            return True
        attribute = search_order[position]
        for value in domains[attribute]:
            assignment[attribute] = value
            if consistent() and backtrack(position + 1):
                return True
            del assignment[attribute]
        return False

    if not backtrack(0):
        return None

    # Complete the witness over unmentioned attributes with arbitrary values.
    witness = dict(assignment)
    for attribute in schema.attribute_names:
        if attribute not in witness:
            value = schema.domain(attribute).fresh_value()
            witness[attribute] = value if value is not None else domains[attribute][0]

    # Defensive final check (cheap, and guards the pruning logic).
    full_set = ECFDSet(constraints)
    assert full_set.satisfied_by_single_tuple(witness)
    return witness


def is_satisfiable(sigma: ECFDSet | Sequence[ECFD]) -> bool:
    """Decide satisfiability of Σ (empty Σ counts as satisfiable)."""
    constraints = _as_list(sigma)
    if not constraints:
        return True
    return find_witness(constraints) is not None


def witness_or_raise(sigma: ECFDSet | Sequence[ECFD]) -> dict[str, Value]:
    """Like :func:`find_witness` but raises :class:`UnsatisfiableError` on failure."""
    witness = find_witness(sigma)
    if witness is None:
        raise UnsatisfiableError("the given set of eCFDs is unsatisfiable")
    return witness


def is_satisfiable_via_reduction(sigma: ECFDSet | Sequence[ECFD]) -> bool:
    """Decide satisfiability through the Section IV MAXGSAT reduction.

    Σ is satisfiable iff there is a truth assignment satisfying *every*
    formula of ``f(Σ)``; the exact MAXGSAT solver provides that answer for
    the small instances this path is intended for (tests, ablations).
    """
    from repro.analysis.reduction import reduce_to_maxgsat
    from repro.sat.maxgsat import solve_exact

    constraints = _as_list(sigma)
    if not constraints:
        return True
    reduction = reduce_to_maxgsat(constraints)
    result = solve_exact(reduction.instance, max_variables=24)
    return result.score == reduction.instance.size
