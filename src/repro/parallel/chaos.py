"""A frame-aware fault-injection proxy for the remote shard fabric.

:class:`ChaosProxy` sits between the coordinator's lane connections and one
worker, speaking the length-prefixed framing of
:mod:`repro.parallel.transport` so faults land on *frame* boundaries — a
dropped frame is a lost call, not a half-frame that only tests the framing
code.  Per frame it can

* **pass** — forward unchanged;
* **drop** — swallow the frame (the caller times out);
* **delay** — hold the frame (and everything behind it on that direction)
  for a scripted interval before forwarding;
* **duplicate** — forward the frame twice (exercises the client's stale
  sequence-number discard);
* **sever** — close both sides of the connection mid-conversation.

Determinism: every decision comes from a ``decide(direction, index)``
callable.  The default is built from a seeded :class:`random.Random` and
the constructor's rates, drawn per connection and direction in frame order
— given the fabric's strictly pipelined per-lane streams, run *N* with
seed *s* makes exactly the decisions run *N-1* made.  No decision ever
reads the wall clock; scripted tests pass an explicit ``decide`` (e.g.
"sever the reply stream after frame 3") for pinpoint failures.

Duplication is applied only to worker→coordinator frames by the default
plan: duplicating a *request* would re-execute the operation on the worker
(TCP never does that), while a duplicated *reply* is precisely the stale
frame the transport promises to discard.

The proxy runs its own asyncio loop on a daemon thread, like the worker
pool it impersonates; ``start()`` / ``stop()`` are blocking and the bound
address is :attr:`address` — point ``remote_workers`` at it.
"""

from __future__ import annotations

import asyncio
import random
import threading
from collections.abc import Callable, Sequence

from repro.parallel.remote import Address, parse_address
from repro.parallel.transport import _LENGTH

__all__ = ["ChaosProxy", "scripted_plan", "start_proxies"]

#: Frame fates a plan may return.
_ACTIONS = ("pass", "drop", "delay", "duplicate", "sever")

#: Direction labels handed to ``decide``: coordinator→worker requests and
#: worker→coordinator replies.
REQUEST = "request"
REPLY = "reply"


def scripted_plan(
    script: dict[tuple[str, int], str]
) -> Callable[[str, int], str]:
    """A decide callable replaying an explicit ``(direction, index) -> action`` map.

    Unlisted frames pass.  The precision tool: "drop reply 2, sever after
    request 5" is four characters of script, not a seed hunt.
    """

    def decide(direction: str, index: int) -> str:
        return script.get((direction, index), "pass")

    return decide


class ChaosProxy:
    """A TCP proxy to one worker, injecting frame-level faults.

    Parameters
    ----------
    target:
        The real worker's endpoint (``"host:port"`` or ``(host, port)``).
    seed / drop / delay / duplicate / sever:
        Default-plan knobs: per-frame fault probabilities drawn from
        ``random.Random(seed)``.  ``duplicate`` applies to replies only
        (see the module docstring); ``sever`` closes the connection.
    delay_seconds:
        How long a delayed frame (and the frames queued behind it) waits.
        Scripted, not random — determinism lives in *which* frames are
        delayed, and the interval just has to outlast nothing (the lanes
        are pipelined, so a small constant exercises the reordering
        window without slowing the suite).
    decide:
        Overrides the default plan entirely:
        ``decide(direction, frame_index) -> action`` with ``direction``
        one of :data:`REQUEST` / :data:`REPLY` and ``frame_index``
        counting that connection's frames in that direction from 0.
    """

    def __init__(
        self,
        target: "str | Address",
        seed: int = 0,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        sever: float = 0.0,
        delay_seconds: float = 0.02,
        decide: Callable[[str, int], str] | None = None,
        host: str = "127.0.0.1",
    ):
        self.target = parse_address(target)
        self.host = host
        self.seed = seed
        self.rates = {"drop": drop, "delay": delay, "duplicate": duplicate, "sever": sever}
        self.delay_seconds = delay_seconds
        self._decide = decide
        self._server: asyncio.base_events.Server | None = None
        self._connection_ids = iter(range(1_000_000))
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        #: Fault accounting, summed over every connection and direction.
        self.counters = {action: 0 for action in _ACTIONS}
        self.connections = 0

    # ------------------------------------------------------------------
    # Decision plans
    # ------------------------------------------------------------------
    def _default_plan(self, connection_id: int, direction: str) -> Callable[[int], str]:
        """One seeded RNG per (connection, direction): frame order within a
        direction is the stream order, so the draw sequence is reproducible."""
        rng = random.Random(f"{self.seed}:{connection_id}:{direction}")

        def decide(index: int) -> str:
            roll = rng.random()
            threshold = 0.0
            for action in ("drop", "delay", "duplicate", "sever"):
                threshold += self.rates[action]
                if roll < threshold:
                    if action == "duplicate" and direction != REPLY:
                        return "pass"
                    return action
            return "pass"

        return decide

    # ------------------------------------------------------------------
    # Lifecycle (blocking wrappers over the loop thread)
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        assert self._server is not None, "proxy not started"
        return (self.host, self._server.sockets[0].getsockname()[1])

    def start(self) -> "ChaosProxy":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="chaos-proxy", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._server is None:
            raise RuntimeError("chaos proxy failed to start")
        return self

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._server = self._loop.run_until_complete(
            asyncio.start_server(self._handle, self.host, 0)
        )
        self._started.set()
        self._loop.run_forever()

    def stop(self) -> None:
        if self._loop is None:
            return

        async def _close() -> None:
            assert self._server is not None
            self._server.close()
            await self._server.wait_closed()

        try:
            asyncio.run_coroutine_threadsafe(_close(), self._loop).result(timeout=5.0)
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=5.0)
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Proxying
    # ------------------------------------------------------------------
    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        connection_id = next(self._connection_ids)
        host, port = self.target
        try:
            worker_reader, worker_writer = await asyncio.open_connection(host, port)
        except OSError:
            client_writer.close()
            return
        severed = asyncio.Event()
        pumps = [
            asyncio.ensure_future(
                self._pump(
                    client_reader, worker_writer, REQUEST, connection_id, severed
                )
            ),
            asyncio.ensure_future(
                self._pump(
                    worker_reader, client_writer, REPLY, connection_id, severed
                )
            ),
        ]
        await asyncio.wait(pumps)
        for writer in (client_writer, worker_writer):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
        connection_id: int,
        severed: asyncio.Event,
    ) -> None:
        decide = (
            (lambda index: self._decide(direction, index))
            if self._decide is not None
            else self._default_plan(connection_id, direction)
        )
        index = 0
        try:
            while not severed.is_set():
                prefix = await reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(prefix)
                frame = prefix + await reader.readexactly(length)
                action = decide(index)
                index += 1
                if action not in _ACTIONS:
                    raise ValueError(f"chaos plan returned unknown action {action!r}")
                self.counters[action] += 1
                if action == "drop":
                    continue
                if action == "sever":
                    severed.set()
                    break
                if action == "delay":
                    await asyncio.sleep(self.delay_seconds)
                writer.write(frame)
                if action == "duplicate":
                    writer.write(frame)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            # One direction ending ends the conversation: a stream proxy
            # cannot forward one side of a dead connection truthfully.
            severed.set()
            writer.close()


def start_proxies(
    targets: Sequence["str | Address"], seed: int = 0, **kwargs
) -> list[ChaosProxy]:
    """Start one proxy per target, seeding each distinctly off ``seed``."""
    proxies = []
    try:
        for offset, target in enumerate(targets):
            proxies.append(ChaosProxy(target, seed=seed + offset, **kwargs).start())
    except Exception:  # noqa: BLE001 - stop the partial proxy fleet, then re-raise unchanged
        for proxy in proxies:
            proxy.stop()
        raise
    return proxies
