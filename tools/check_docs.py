#!/usr/bin/env python3
"""Documentation checks: Markdown link integrity and runnable examples.

Two failure modes rot documentation silently: relative links / referenced
file paths pointing at files that moved, and code examples drifting from the
API they demonstrate.  This tool guards both:

* **link check** — every inline Markdown link ``[text](target)`` with a
  relative target must resolve to an existing file or directory (anchors
  and external ``http(s)``/``mailto`` targets are skipped), and every
  inline-code token that *looks like* a repository path (contains ``/``,
  no spaces or glob/placeholder characters) must exist — resolved against
  the repository root or the referencing file's directory;
* **doctests** — every ``>>>`` example in the checked files is executed
  with :func:`doctest.testfile` (the same engine ``python -m doctest``
  uses), so the fenced examples in the docs are real, passing code.

Checked files: ``README.md`` and ``docs/*.md``.  Exit status 0 when all
checks pass, 1 otherwise — CI runs this as the ``docs`` job, and the tier-1
suite runs the same functions via ``tests/docs/test_documentation.py``.

A third, opt-in check guards the *generated* documentation:

* **staleness** (``--stale``) — every ``<!-- generated: NAME -->`` block in
  the docs and every figure under ``docs/figures/`` is regenerated
  in-memory from the committed artifacts in `benchmarks/artifacts/` (via
  :mod:`repro.reports.docs_sync`) and compared byte-for-byte with what is
  committed; any drift fails the check with the command that fixes it.

Usage::

    PYTHONPATH=src python tools/check_docs.py            # links + doctests
    PYTHONPATH=src python tools/check_docs.py --stale    # + generated docs
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown link: [text](target) — target captured without spaces.
_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
#: Inline code span (single backticks).
_CODE_SPAN = re.compile(r"(?<!`)`([^`\n]+)`(?!`)")
#: Code-span tokens treated as repository paths: plain path characters only
#: (no spaces, globs, angle-bracket placeholders or option dashes) and at
#: least one separator.
_PATH_TOKEN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-/]*$")

DOCTEST_OPTIONS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


def documentation_files() -> list[Path]:
    """The Markdown files under guard: README plus everything in docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _resolves(target: str, base: Path) -> bool:
    """Whether a relative reference exists (against ``base`` or the repo root)."""
    candidate = target.split("#", 1)[0]
    if not candidate:
        return True  # pure anchor
    return (base / candidate).exists() or (REPO_ROOT / candidate).exists()


def check_links(path: Path) -> list[str]:
    """Broken relative links and missing referenced paths in one file."""
    text = path.read_text(encoding="utf-8")
    base = path.parent
    problems = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        if not _resolves(target, base):
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    for match in _CODE_SPAN.finditer(text):
        token = match.group(1)
        if "/" not in token or not _PATH_TOKEN.match(token):
            continue
        if not _resolves(token, base):
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: referenced path missing -> {token}"
            )
    return problems


def run_doctests(path: Path) -> tuple[int, int, str]:
    """Execute a file's ``>>>`` examples; returns (failures, attempted, log)."""
    runner_output: list[str] = []

    class _Runner(doctest.DocTestRunner):
        def report_failure(self, out, test, example, got):  # pragma: no cover
            runner_output.append(
                f"{path.relative_to(REPO_ROOT)}:{example.lineno + 1}: "
                f"expected {example.want!r}, got {got!r}"
            )
            return super().report_failure(out, test, example, got)

    text = path.read_text(encoding="utf-8")
    parser = doctest.DocTestParser()
    test = parser.get_doctest(text, {"__name__": "__docs__"}, str(path), str(path), 0)
    runner = _Runner(optionflags=DOCTEST_OPTIONS, verbose=False)
    if test.examples:
        runner.run(test, out=lambda _: None)
    results = runner.summarize(verbose=False)
    return results.failed, results.attempted, "\n".join(runner_output)


def check_generated() -> list[str]:
    """Stale generated blocks/figures (see ``repro.reports.docs_sync``)."""
    from repro.reports.docs_sync import check_stale

    return check_stale()


def main(argv: list[str] | None = None) -> int:
    # The doctested examples import the library; make `repro` importable
    # regardless of how the tool was invoked.
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)

    arguments = list(sys.argv[1:] if argv is None else argv)
    check_stale_requested = "--stale" in arguments

    failures = 0
    for path in documentation_files():
        problems = check_links(path)
        for problem in problems:
            print(f"LINK FAIL  {problem}")
        failures += len(problems)

        failed, attempted, log = run_doctests(path)
        status = "ok" if not failed else "FAIL"
        print(
            f"doctest {status:4} {path.relative_to(REPO_ROOT)} "
            f"({attempted} examples, {failed} failures)"
        )
        if log:
            print(log)
        failures += failed

    if check_stale_requested:
        stale = check_generated()
        for problem in stale:
            print(f"STALE      {problem}")
        status = "ok" if not stale else "FAIL"
        print(f"generated docs {status}")
        failures += len(stale)

    if failures:
        print(f"\ndocumentation checks FAILED ({failures} problems)", file=sys.stderr)
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
