"""Cross-engine equivalence: the same pipeline on SQLite and DuckDB.

The dialect layer's contract is that the generated detection SQL means
the same thing on every registered engine: for any Σ and any data, the
``batch-duckdb`` / ``incremental-duckdb`` backends must produce
*bit-identical* ViolationSets (and per-constraint breakdowns) to their
SQLite counterparts.  These tests stress that anchor with randomly
structured constraint sets — overlapping, disjoint and empty LHS sets,
value-set and complement-set patterns, and int-vs-string pattern
constants (both engines store text; an int constant ``42`` must match
the stored value ``"42"`` on both) — plus deletion-heavy incremental
update streams and sharded lanes.

Everything touching a real DuckDB connection skips cleanly when the
optional ``duckdb`` package is absent; the registry, error-message and
blank-marker tests run everywhere.
"""

import random
import sys

import pytest

from repro.core import ECFD, ECFDSet
from repro.core.patterns import ComplementSet
from repro.core.schema import cust_ext_schema
from repro.detection.database import ECFDDatabase
from repro.detection.engines import (
    available_engines,
    create_engine,
    duckdb_available,
)
from repro.engine import DataQualityEngine, available_backends
from repro.exceptions import DatabaseError, DetectionError

SCHEMA = cust_ext_schema()
requires_duckdb = pytest.mark.skipif(
    not duckdb_available(),
    reason="duckdb not installed — install the optional 'repro[duckdb]' extra",
)

#: Attributes drawn into random LHS/RHS sets.  PRICE's domain is *numeric
#: strings* so random pattern constants can be issued as Python ints: the
#: int-vs-string affinity trap a columnar engine could fall into.
ATTR_POOL = ["CT", "ZIP", "AC", "ITEM_TYPE", "ITEM_TITLE", "PRICE"]
CARDINALITY = {
    "AC": 5, "PN": 40, "NM": 30, "STR": 25, "CT": 4, "ZIP": 6,
    "ITEM_TYPE": 3, "ITEM_TITLE": 8, "PRICE": 5,
}
NUMERIC_ATTRS = {"PRICE", "ZIP"}


def _value(attribute: str, index: int) -> str:
    if attribute in NUMERIC_ATTRS:
        return str(100 + index)
    return f"{attribute.lower()}-{index}"


def _constant(rng: random.Random, attribute: str, index: int):
    """A pattern constant — randomly an int for numeric-string domains."""
    value = _value(attribute, index)
    if attribute in NUMERIC_ATTRS and rng.random() < 0.5:
        return int(value)
    return value


def _random_rows(rng: random.Random, count: int) -> list[dict]:
    return [
        {
            attribute: _value(attribute, rng.randrange(CARDINALITY[attribute]))
            for attribute in SCHEMA.attribute_names
        }
        for _ in range(count)
    ]


def _random_lhs_pattern(rng: random.Random, attribute: str):
    roll = rng.random()
    if roll < 0.6:
        return "_"
    values = {
        _constant(rng, attribute, i)
        for i in rng.sample(range(CARDINALITY[attribute]), k=rng.randint(1, 2))
    }
    if roll < 0.85:
        return values
    return ComplementSet(values)


def _random_sigma(rng: random.Random) -> ECFDSet:
    """3-6 constraints: embedded FDs (some empty-LHS) plus pattern riders."""
    ecfds = []
    for _ in range(rng.randint(2, 4)):
        lhs = rng.sample(ATTR_POOL, k=rng.choice([0, 1, 1, 1, 2]))
        rhs = [rng.choice([a for a in ATTR_POOL if a not in lhs])]
        tableau = [(
            {a: _random_lhs_pattern(rng, a) for a in lhs},
            {a: "_" for a in rhs},
        )]
        ecfds.append(ECFD(SCHEMA, lhs=lhs, rhs=rhs, tableau=tableau))
    for _ in range(rng.randint(1, 2)):
        lhs = [rng.choice(ATTR_POOL)]
        yp = rng.choice([a for a in ATTR_POOL if a not in lhs])
        allowed = {
            _constant(rng, yp, i)
            for i in rng.sample(range(CARDINALITY[yp]), k=rng.randint(1, 3))
        }
        ecfds.append(
            ECFD(
                SCHEMA, lhs=lhs, rhs=[], pattern_rhs=[yp],
                tableau=[({a: _random_lhs_pattern(rng, a) for a in lhs}, {yp: allowed})],
            )
        )
    return ECFDSet(ecfds)


def _detect(sigma: ECFDSet, rows: list[dict], backend: str, **kwargs):
    engine = DataQualityEngine(SCHEMA, sigma, backend=backend, **kwargs)
    engine.load(rows)
    result = engine.detect(with_breakdown=True)
    engine.close()
    return result


class TestEngineRegistry:
    def test_builtin_engines_are_registered(self):
        assert set(available_engines()) >= {"sqlite", "duckdb"}

    def test_unknown_engine_lists_the_registry(self):
        with pytest.raises(DetectionError) as excinfo:
            create_engine("postgres", ":memory:")
        message = str(excinfo.value)
        assert "postgres" in message and "sqlite" in message and "duckdb" in message

    def test_duckdb_backends_are_registered(self):
        assert {"batch-duckdb", "incremental-duckdb"} <= set(available_backends())

    def test_missing_duckdb_error_is_actionable(self, monkeypatch):
        # Simulate the package being absent even on duckdb-equipped runners:
        # a None sys.modules entry makes `import duckdb` raise ImportError.
        monkeypatch.setitem(sys.modules, "duckdb", None)
        with pytest.raises(DetectionError) as excinfo:
            create_engine("duckdb", ":memory:")
        message = str(excinfo.value)
        assert "repro[duckdb]" in message
        assert "sqlite" in message  # points at the engines that still work

    def test_missing_duckdb_error_surfaces_through_the_facade(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "duckdb", None)
        sigma = _random_sigma(random.Random(0))
        with pytest.raises(DetectionError, match=r"repro\[duckdb\]"):
            DataQualityEngine(SCHEMA, sigma, backend="batch-duckdb")


class TestBlankMarkerValidation:
    """Ingestion rejects values that would corrupt blanked group keys."""

    def test_database_rejects_the_blank_marker(self):
        with ECFDDatabase(SCHEMA) as database:
            row = {a: "x" for a in SCHEMA.attribute_names}
            row["CT"] = database.dialect.blank
            with pytest.raises(DatabaseError, match="blank marker"):
                database.insert_tuples([row])

    def test_database_rejects_the_key_separator(self):
        with ECFDDatabase(SCHEMA) as database:
            row = {a: "x" for a in SCHEMA.attribute_names}
            row["ZIP"] = "12\x1f345"
            with pytest.raises(DatabaseError, match="separator"):
                database.insert_tuples([row])

    def test_facade_load_rejects_the_blank_marker(self):
        sigma = _random_sigma(random.Random(1))
        engine = DataQualityEngine(SCHEMA, sigma, backend="batch")
        rows = _random_rows(random.Random(1), 3)
        rows[1]["CT"] = "@"
        with pytest.raises(DatabaseError, match="blank marker"):
            engine.load(rows)
        engine.close()


@requires_duckdb
class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_batch_bit_exact_on_random_sigma(self, seed):
        rng = random.Random(seed)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 250)
        reference = _detect(sigma, rows, "batch")
        result = _detect(sigma, rows, "batch-duckdb")
        assert result.violations == reference.violations
        assert result.per_constraint == reference.per_constraint

    def test_empty_lhs_heavy_sigma(self):
        sigma = ECFDSet([
            ECFD(SCHEMA, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})]),
            ECFD(SCHEMA, lhs=[], rhs=["ITEM_TYPE"], tableau=[({}, {"ITEM_TYPE": "_"})]),
            ECFD(SCHEMA, lhs=["AC"], rhs=["ZIP"], tableau=[({"AC": "_"}, {"ZIP": "_"})]),
        ])
        rows = _random_rows(random.Random(42), 200)
        reference = _detect(sigma, rows, "batch")
        result = _detect(sigma, rows, "batch-duckdb")
        assert result.violations == reference.violations

    def test_int_constants_match_stored_numeric_strings(self):
        # The stored PRICE value is the string "103"; the constraint names
        # the constant as the int 103.  Both engines must treat them as the
        # same value — and as different from, say, "103.0".
        sigma = ECFDSet([
            ECFD(
                SCHEMA, lhs=["PRICE"], rhs=["ITEM_TYPE"],
                tableau=[({"PRICE": {103, "104"}}, {"ITEM_TYPE": "_"})],
            ),
            ECFD(
                SCHEMA, lhs=["CT"], rhs=[], pattern_rhs=["ZIP"],
                tableau=[({"CT": "_"}, {"ZIP": {101, 102}})],
            ),
        ])
        rows = _random_rows(random.Random(7), 150)
        reference = _detect(sigma, rows, "batch")
        result = _detect(sigma, rows, "batch-duckdb")
        assert reference.dirty_count > 0  # the sigma actually bites
        assert result.violations == reference.violations
        assert result.per_constraint == reference.per_constraint

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_stream_bit_exact(self, seed):
        rng = random.Random(100 + seed)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 150)

        reference = DataQualityEngine(SCHEMA, sigma, backend="incremental")
        engine = DataQualityEngine(SCHEMA, sigma, backend="incremental-duckdb")
        for instance in (reference, engine):
            instance.load(rows)
            instance.detect()

        for _ in range(3):
            tids = reference.tids()
            deletes = rng.sample(tids, k=min(10, len(tids)))
            inserts = _random_rows(rng, 12)
            expected = reference.apply_update(delete_tids=deletes, insert_rows=inserts)
            result = engine.apply_update(delete_tids=deletes, insert_rows=inserts)
            assert result.violations == expected.violations
        reference.close()
        engine.close()

    def test_sharded_lanes_run_on_duckdb(self):
        rng = random.Random(5)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 200)
        reference = _detect(sigma, rows, "batch")

        engine = DataQualityEngine(
            SCHEMA, sigma, backend="batch-duckdb", workers=3, executor="serial"
        )
        engine.load(rows)
        result = engine.detect()
        assert result.violations == reference.violations
        engine.close()
