"""Unit tests for the Proposition 3.3 infinite-domain construction."""

import pytest

from repro.analysis import (
    domain_restriction_ecfd,
    is_satisfiable,
    rewrite_to_infinite_domains,
)
from repro.core import ECFD, ECFDSet
from repro.core.patterns import ComplementSet
from repro.core.schema import Attribute, Domain, RelationSchema
from repro.exceptions import ConstraintError


@pytest.fixture
def finite_schema():
    """A schema with one finite-domain attribute (A ∈ {T, F}) and one infinite."""
    return RelationSchema(
        "r",
        [Attribute("A", Domain("bool", frozenset(["T", "F"]))), Attribute("B")],
    )


class TestDomainRestriction:
    def test_restriction_ecfd_structure(self, finite_schema):
        ecfd = domain_restriction_ecfd(finite_schema, "A", ["T", "F"])
        assert ecfd.lhs == ("A",)
        assert ecfd.rhs == ()
        assert ecfd.pattern_rhs == ("A",)

    def test_restriction_semantics(self, finite_schema):
        ecfd = domain_restriction_ecfd(finite_schema, "A", ["T", "F"])
        assert ecfd.satisfied_by_single_tuple({"A": "T", "B": "x"})
        assert not ecfd.satisfied_by_single_tuple({"A": "Z", "B": "x"})


class TestRewrite:
    def test_schema_becomes_infinite(self, finite_schema):
        ecfd = ECFD(finite_schema, ["A"], ["B"], tableau=[({"A": "_"}, {"B": "_"})])
        new_schema, new_sigma = rewrite_to_infinite_domains([ecfd])
        assert not any(a.domain.is_finite for a in new_schema.attributes)
        assert new_schema.attribute_names == finite_schema.attribute_names

    def test_restriction_constraints_added_per_finite_attribute(self, finite_schema):
        ecfd = ECFD(finite_schema, ["A"], ["B"], tableau=[({"A": "_"}, {"B": "_"})])
        _, new_sigma = rewrite_to_infinite_domains([ecfd])
        assert len(new_sigma) == 2  # the original plus one restriction for A

    def test_satisfiability_preserved_positive(self, finite_schema):
        ecfd = ECFD(finite_schema, ["A"], ["B"], tableau=[({"A": {"T"}}, {"B": {"yes"}})])
        _, new_sigma = rewrite_to_infinite_domains([ecfd])
        assert is_satisfiable([ecfd]) == is_satisfiable(new_sigma) is True

    def test_satisfiability_preserved_negative(self, finite_schema):
        """Unsatisfiable only because dom(A) is finite: A must avoid both T and F.

        After the rewrite A ranges over an infinite domain, but the added
        restriction eCFD re-imposes A ∈ {T, F}, so unsatisfiability is preserved.
        """
        ecfd = ECFD(
            finite_schema,
            ["B"],
            [],
            ["A"],
            tableau=[({"B": "_"}, {"A": ComplementSet(["T", "F"])})],
        )
        assert not is_satisfiable([ecfd])
        _, new_sigma = rewrite_to_infinite_domains([ecfd])
        assert not is_satisfiable(new_sigma)

    def test_without_rewrite_the_infinite_version_is_satisfiable(self, finite_schema):
        """Sanity check of the construction's point: dropping the restriction
        constraint makes the same pattern satisfiable over infinite domains."""
        ecfd = ECFD(
            finite_schema,
            ["B"],
            [],
            ["A"],
            tableau=[({"B": "_"}, {"A": ComplementSet(["T", "F"])})],
        )
        new_schema, new_sigma = rewrite_to_infinite_domains([ecfd])
        rewritten_only = [c for c in new_sigma if c.name != "domain_restriction_A"]
        assert is_satisfiable(rewritten_only)

    def test_empty_input_rejected(self):
        with pytest.raises(ConstraintError):
            rewrite_to_infinite_domains([])

    def test_already_infinite_schema_unchanged_in_count(self, schema, psi1, psi2):
        new_schema, new_sigma = rewrite_to_infinite_domains([psi1, psi2])
        assert len(new_sigma) == 2
        assert new_schema.attribute_names == schema.attribute_names
