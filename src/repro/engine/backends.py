"""Pluggable detector backends and the string-keyed backend registry.

The three detectors of :mod:`repro.detection` grew three different call
conventions: ``NaiveDetector(sigma).detect(relation)`` works on in-memory
relations, ``BatchDetector(db, sigma).detect()`` owns a SQLite database, and
``IncrementalDetector(db, sigma)`` adds update entry points on top.  The
engine façade needs one interface, so this module defines

* :class:`DetectorBackend` — the abstract interface every backend
  implements: data lifecycle (``load_rows`` / ``load_relation`` /
  ``apply_delta`` / ``clear``), detection (``detect`` and, for backends
  advertising ``supports_incremental``, ``incremental_update``) and
  introspection (``count`` / ``tids`` / ``to_relation`` /
  ``violation_counts`` / ``breakdown``);
* three adapters wrapping the existing detectors without changing their
  direct use: :class:`NaiveBackend`, :class:`BatchBackend` and
  :class:`IncrementalBackend`;
* a string-keyed registry (:func:`register_backend`,
  :func:`available_backends`, :func:`create_backend`) that further backends
  plug into — :class:`repro.parallel.ShardedBackend` registers itself here
  as ``"sharded"``, wrapping any of the three adapters below as per-shard
  delegates.

Tuple-identifier discipline
---------------------------
All backends assign identifiers exactly like the SQLite substrate does
(fresh rows get ``max(tid) + 1`` onward, relations keep their own tids, and
values are stored as text), so violation sets produced by different backends
over the same load/update history are directly comparable — the invariant
the engine's cross-backend equivalence guarantees rest on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence
from typing import ClassVar

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import RelationSchema, Value
from repro.core.violations import ViolationSet
from repro.detection.batch import BatchDetector
from repro.detection.database import ECFDDatabase
from repro.detection.encoding import AUX_TABLE, ENC_TABLE, MACRO_TABLE
from repro.detection.incremental import IncrementalDetector
from repro.detection.naive import NaiveDetector
from repro.detection.sqlgen import (
    group_key_join,
    lhs_match_condition,
    rhs_violation_condition,
)
from repro.detection.summaries import summarize_rows, summary_delta
from repro.exceptions import EngineError, UnknownBackendError

__all__ = [
    "DetectorBackend",
    "InMemoryRelationBackend",
    "NaiveBackend",
    "BatchBackend",
    "IncrementalBackend",
    "BatchDuckDBBackend",
    "IncrementalDuckDBBackend",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "create_backend",
    "resolve_backend_factory",
]


class DetectorBackend(ABC):
    """One detection strategy behind the :class:`~repro.engine.DataQualityEngine`.

    Parameters
    ----------
    schema:
        Relation schema of the data the backend stores.
    sigma:
        The eCFD workload to check.
    path:
        Storage location for database-backed backends (ignored by purely
        in-memory ones); the default keeps everything in-process.
    """

    #: Registry key of the backend (set by subclasses).
    name: ClassVar[str] = ""
    #: Whether :meth:`incremental_update` maintains violations without a full pass.
    supports_incremental: ClassVar[bool] = False
    #: Full detection passes run so far — the trace counter the repair
    #: strategies' "no hidden recompute" guarantees are asserted on.
    #: Backends that track it shadow this with an instance attribute (or a
    #: property); 0 means "never counted", not "never detected".
    full_detect_count: int = 0

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
    ):
        self.schema = schema
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))

    # ------------------------------------------------------------------
    # Data lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def load_rows(self, rows: Sequence[Mapping[str, Value]]) -> list[int]:
        """Insert plain rows; returns the assigned tuple identifiers."""

    @abstractmethod
    def load_relation(self, relation: Relation) -> int:
        """Insert an in-memory relation preserving its tids; returns the row count."""

    @abstractmethod
    def apply_delta(
        self, delete_tids: Sequence[int], insert_rows: Sequence[Mapping[str, Value]]
    ) -> list[int]:
        """Apply an update to *storage only* (no violation maintenance).

        Returns the tids assigned to the inserted rows.  Backends that
        maintain detection state across calls must invalidate it here.
        """

    @abstractmethod
    def clear(self) -> None:
        """Drop every stored tuple (detection state is recomputed on next use)."""

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    @abstractmethod
    def detect(self) -> ViolationSet:
        """The violation set of the currently stored data."""

    def detect_with_breakdown(self) -> ViolationSet:
        """Detect, also preparing :meth:`breakdown` for the same pass.

        For most backends the per-constraint statistics are cheap follow-up
        queries on maintained state, so the default is a plain
        :meth:`detect`.  Backends that would otherwise have to repeat the
        whole detection to answer :meth:`breakdown` (sharded) override this
        to collect both in one pass; the engine calls it when the caller
        asked for a breakdown.
        """
        return self.detect()

    def incremental_update(
        self,
        delete_tids: Sequence[int],
        insert_rows: Sequence[Mapping[str, Value]],
        insert_tids: Sequence[int] | None = None,
    ) -> ViolationSet:
        """Apply an update *and* maintain the violation set in one step.

        Only available when :attr:`supports_incremental` is true; the engine
        falls back to ``apply_delta`` + ``detect`` otherwise.  Deletions are
        processed before insertions (the ΔD⁻ / ΔD⁺ order of INCDETECT).

        ``insert_tids`` optionally pins the identifiers of the inserted rows
        (aligned with ``insert_rows``).  Ordinary callers leave it ``None``
        — fresh ``max(tid) + 1`` identifiers are assigned, exactly like
        ``apply_delta`` — but a *coordinator* holding the global tid
        sequence (the sharded backend driving per-shard delegates) must pin
        them so shard-local state stays tid-compatible with a
        single-threaded pass.
        """
        raise EngineError(
            f"backend {self.name!r} does not support incremental updates"
        )

    def incremental_update_many(
        self,
        batches: Sequence[
            tuple[Sequence[int], Sequence[Mapping[str, Value]], Sequence[int] | None]
        ],
    ) -> ViolationSet:
        """Apply a sequence of updates, maintaining violations throughout.

        ``batches`` is an ordered sequence of ``(delete_tids, insert_rows,
        insert_tids)`` triples with the same per-batch semantics as
        :meth:`incremental_update`; the returned violation set describes the
        state after the *last* batch (for an empty sequence: the current
        maintained state).  The default replays the batches one at a time —
        semantically the reference behaviour every override must match.
        Backends with a fan-out path override it to *pipeline* the whole
        sequence (the sharded backend routes batch ``N+1`` while its lanes
        are still chewing batch ``N``), which must stay bit-exact with this
        sequential replay.
        """
        violations: ViolationSet | None = None
        for delete_tids, insert_rows, insert_tids in batches:
            violations = self.incremental_update(
                delete_tids, insert_rows, insert_tids=insert_tids
            )
        if violations is None:
            self.ensure_ready()
            violations = self.detect()
        return violations

    def ensure_ready(self) -> None:
        """Bring any lazily initialised detection state up to date.

        Called by the engine before timing an incremental update, so
        first-time initialisation cost is never attributed to the update.
        """

    def apply_cell_changes(self, changes: Sequence) -> None:
        """Apply repair cell changes to storage, preserving tuple identifiers.

        ``changes`` is a sequence of :class:`repro.repair.cost.CellChange`
        (duck-typed: ``tid`` / ``attribute`` / ``new_value``), applied in
        order — the in-place fix path of :meth:`DataQualityEngine.repair`,
        replacing the old materialise-and-reload.  Values are stringified
        like every other ingestion path.  Backends that maintain detection
        state across calls must invalidate it here.  The generic fallback
        patches a materialised copy and reloads it; the built-in adapters
        override with true in-place updates.
        """
        patched = self.to_relation()
        for change in changes:
            patched.replace_cell(change.tid, change.attribute, str(change.new_value))
        self.clear()
        self.load_relation(patched)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @abstractmethod
    def count(self) -> int:
        """Number of stored tuples."""

    @abstractmethod
    def tids(self) -> list[int]:
        """All stored tuple identifiers, ascending."""

    @abstractmethod
    def to_relation(self) -> Relation:
        """Materialise the stored data as an in-memory relation (tids preserved)."""

    @abstractmethod
    def violation_counts(self) -> dict[str, int]:
        """SV / MV / dirty counts of the latest detection state."""

    def breakdown(self) -> dict[int, dict[str, int]]:
        """Per-constraint violation statistics keyed by normalized ``CID``.

        Each entry carries ``sv`` (tuples violating the pattern constraint),
        ``mv_groups`` (violating embedded-FD groups) and ``mv_tuples``
        (tuples inside those groups).  Backends without the necessary
        bookkeeping may return an empty mapping.
        """
        return {}

    def fd_group_summary(self, fragments: Sequence[tuple[int, ECFD]]) -> dict:
        """Embedded-FD group summaries of the stored data.

        The shard-side emission hook of single-pass sharded detection
        (:mod:`repro.detection.summaries`): per ``(global CID, fragment)``
        pair, the ``(cid, xv) → (yv multiset, witness tids)`` groups of
        every stored tuple matching the fragment's LHS pattern — bounded
        output (aggregated groups, never raw rows).  The default
        materialises the stored relation and matches in Python, which any
        backend supports; the built-in adapters override it with their
        detectors' cheaper paths (bound relation / pushed-down SQL scan).
        """
        relation = self.to_relation()
        return summarize_rows(fragments, ((t.tid, t) for t in relation.tuples()))

    def fd_summary_delta(
        self,
        fragments: Sequence[tuple[int, ECFD]],
        deleted: Sequence[tuple[int, Mapping[str, Value]]],
        inserted: Sequence[tuple[int, Mapping[str, Value]]],
    ) -> dict:
        """The signed group-summary contribution of one update slice.

        Must use the *same* LHS-match semantics as :meth:`fd_group_summary`
        — the coordinator folds both into one store, and disagreeing
        emissions leave ghost witnesses that deltas can never retire.  The
        default (and the in-memory adapters) match with the reference
        Python semantics; the SQL adapters override with the encoding's
        stringified-constant semantics.
        """
        return summary_delta(fragments, deleted, inserted)

    @property
    def database(self) -> ECFDDatabase | None:
        """The SQL substrate, for backends that have one (else ``None``)."""
        return None

    def close(self) -> None:
        """Release any resources held by the backend."""


# ----------------------------------------------------------------------
# In-memory backends
# ----------------------------------------------------------------------
class InMemoryRelationBackend(DetectorBackend):
    """Shared storage plumbing for backends keeping an in-memory relation.

    Implements the data lifecycle over a :class:`~repro.core.instance.Relation`
    with the SQLite substrate's discipline (fresh rows get ``max(tid) + 1``
    onward, every value stored as text) so violation sets stay comparable
    across backends.  Subclasses provide detection; :meth:`_on_mutation` is
    called after every storage change for cache invalidation.
    """

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
    ):
        super().__init__(schema, sigma, path)
        self._relation = Relation(schema)

    # -- data lifecycle -------------------------------------------------
    def _max_tid(self) -> int:
        tids = self._relation.tids()
        return tids[-1] if tids else 0

    def _stringified(self, row: Mapping[str, Value]) -> dict[str, str]:
        # Mirror the SQLite substrate, which stores every value as TEXT.
        return {a: str(row[a]) for a in self.schema.attribute_names}

    def _on_mutation(self) -> None:
        """Hook run after every storage change (default: nothing)."""

    def load_rows(self, rows: Sequence[Mapping[str, Value]]) -> list[int]:
        start = self._max_tid() + 1
        assigned = []
        for offset, row in enumerate(rows):
            stored = self._relation.insert_with_tid(start + offset, self._stringified(row))
            assigned.append(stored.tid)
        self._on_mutation()
        return assigned

    def load_relation(self, relation: Relation) -> int:
        if relation.schema != self.schema:
            raise EngineError(
                f"relation over {relation.schema.name!r} cannot be loaded into a "
                f"backend for {self.schema.name!r}"
            )
        for t in relation.tuples():
            assert t.tid is not None
            self._relation.insert_with_tid(t.tid, self._stringified(t))
        self._on_mutation()
        return len(relation)

    def apply_delta(
        self, delete_tids: Sequence[int], insert_rows: Sequence[Mapping[str, Value]]
    ) -> list[int]:
        for tid in delete_tids:
            if self._relation.get(tid) is not None:
                self._relation.delete(tid)
        return self.load_rows(list(insert_rows))

    def clear(self) -> None:
        self._relation = Relation(self.schema)
        self._on_mutation()

    def apply_cell_changes(self, changes: Sequence) -> None:
        for change in changes:
            self._relation.replace_cell(
                change.tid, change.attribute, str(change.new_value)
            )
        self._on_mutation()

    # -- introspection --------------------------------------------------
    def count(self) -> int:
        return len(self._relation)

    def tids(self) -> list[int]:
        return self._relation.tids()

    def to_relation(self) -> Relation:
        return self._relation.copy()


class NaiveBackend(InMemoryRelationBackend):
    """The reference (pure-Python) detector behind the engine interface.

    Keeps the data as an in-memory :class:`~repro.core.instance.Relation`
    and evaluates the reference semantics on every ``detect()``.  Slowest of
    the backends but dependency-free and fully introspectable — it is the
    oracle the SQL backends are validated against.
    """

    name = "naive"

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
    ):
        super().__init__(schema, sigma, path)
        self.detector = NaiveDetector(self.sigma, self._relation)
        self.full_detect_count = 0

    def _on_mutation(self) -> None:
        # Any storage change invalidates the cached detection result (and
        # clear() swaps the relation object itself): introspection must
        # lazily re-detect instead of reporting pre-mutation flags.
        self.detector.relation = self._relation
        self.detector.last_violations = None

    # -- detection ------------------------------------------------------
    def detect(self) -> ViolationSet:
        self.full_detect_count += 1
        return self.detector.detect()

    def fd_group_summary(self, fragments: Sequence[tuple[int, ECFD]]) -> dict:
        # The bound relation is the storage itself — no materialising copy.
        return self.detector.fd_group_summary(fragments, relation=self._relation)

    # -- introspection --------------------------------------------------
    def violation_counts(self) -> dict[str, int]:
        return self.detector.violation_counts()

    def breakdown(self) -> dict[int, dict[str, int]]:
        violations = self.detector.last_violations
        if violations is None:
            violations = self.detect()
        per: dict[int, dict[str, object]] = {}

        def entry(cid: int) -> dict[str, object]:
            return per.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": set()})

        for record in violations.single_records:
            entry(record.constraint_id)["sv"] += 1  # type: ignore[operator]
        for record in violations.multi_records:
            slot = entry(record.constraint_id)
            slot["mv_groups"] += 1  # type: ignore[operator]
            slot["mv_tuples"].update(record.tids)  # type: ignore[union-attr]
        return {
            cid: {
                "sv": int(slot["sv"]),  # type: ignore[arg-type]
                "mv_groups": int(slot["mv_groups"]),  # type: ignore[arg-type]
                "mv_tuples": len(slot["mv_tuples"]),  # type: ignore[arg-type]
            }
            for cid, slot in sorted(per.items())
        }


# ----------------------------------------------------------------------
# SQL-backed backends
# ----------------------------------------------------------------------
def _sql_breakdown(database: ECFDDatabase) -> dict[int, dict[str, int]]:
    """Per-constraint statistics computed from the encoding/auxiliary tables.

    ``sv`` re-runs ``Q_sv`` grouped by constraint (the flags themselves do
    not record which constraint fired); the MV statistics come straight from
    the maintained Aux(D) and macro relations.
    """
    schema = database.schema
    dialect = database.dialect
    quote = dialect.quote_identifier
    per: dict[int, dict[str, int]] = {}

    def entry(cid: int) -> dict[str, int]:
        return per.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})

    sv_rows = database.query(
        f"SELECT c.CID, COUNT(DISTINCT t.tid)\n"
        f"FROM {quote(schema.name)} t, {quote(ENC_TABLE)} c\n"
        f"WHERE {lhs_match_condition(schema, dialect=dialect)}\n"
        f"      AND ({rhs_violation_condition(schema, dialect=dialect)})\n"
        f"GROUP BY c.CID"
    )
    for cid, count in sv_rows:
        entry(cid)["sv"] = count

    for cid, count in database.query(
        f"SELECT cid, COUNT(*) FROM {quote(AUX_TABLE)} GROUP BY cid"
    ):
        entry(cid)["mv_groups"] = count

    for cid, count in database.query(
        f"SELECT a.cid, COUNT(DISTINCT m.tid)\n"
        f"FROM {quote(AUX_TABLE)} a\n"
        f"JOIN {quote(MACRO_TABLE)} m ON {group_key_join('m', 'a')}\n"
        f"GROUP BY a.cid"
    ):
        entry(cid)["mv_tuples"] = count

    return dict(sorted(per.items()))


class _SQLBackend(DetectorBackend):
    """Shared SQL plumbing for the BATCHDETECT / INCDETECT adapters.

    ``engine`` selects the SQL engine of the substrate (``"sqlite"`` is the
    dependency-free default; ``"duckdb"`` runs the same statements on the
    vectorized columnar engine).
    """

    #: SQL engine of the substrate; duckdb subclasses shadow this.
    engine: ClassVar[str] = "sqlite"

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
    ):
        super().__init__(schema, sigma, path)
        self._database = ECFDDatabase(schema, path, engine=self.engine)

    @property
    def database(self) -> ECFDDatabase:
        return self._database

    def load_rows(self, rows: Sequence[Mapping[str, Value]]) -> list[int]:
        return self._database.insert_tuples(list(rows))

    def load_relation(self, relation: Relation) -> int:
        return self._database.load_relation(relation)

    def apply_delta(
        self, delete_tids: Sequence[int], insert_rows: Sequence[Mapping[str, Value]]
    ) -> list[int]:
        self._database.delete_tuples(delete_tids)
        if insert_rows:
            return self._database.insert_tuples(list(insert_rows))
        return []

    def clear(self) -> None:
        self._database.clear()

    def count(self) -> int:
        return self._database.count()

    def tids(self) -> list[int]:
        return self._database.all_tids()

    def to_relation(self) -> Relation:
        return self._database.to_relation()

    def violation_counts(self) -> dict[str, int]:
        return self._database.flag_counts()

    def apply_cell_changes(self, changes: Sequence) -> None:
        self._database.update_cells(
            (change.tid, change.attribute, change.new_value) for change in changes
        )
        # The flags, Aux(D) and macro rows described the pre-repair data;
        # leave the store looking fresh and never-detected so flag-reading
        # introspection (violation_counts, breakdown) re-detects instead of
        # reporting stale violations on the repaired rows.
        self._database.reset_flags()
        quote = self._database.dialect.quote_identifier
        self._database.execute(f"DELETE FROM {quote(AUX_TABLE)}")
        self._database.execute(f"DELETE FROM {quote(MACRO_TABLE)}")
        self._database.commit()

    def breakdown(self) -> dict[int, dict[str, int]]:
        return _sql_breakdown(self._database)

    def fd_summary_delta(
        self,
        fragments: Sequence[tuple[int, ECFD]],
        deleted: Sequence[tuple[int, Mapping[str, Value]]],
        inserted: Sequence[tuple[int, Mapping[str, Value]]],
    ) -> dict:
        # Mirror the encoding's semantics: pattern constants are compared
        # as text (an int constant 212 matches the stored '212'), exactly
        # like the pushed-down fd_group_summary scan that seeded the store.
        return summary_delta(fragments, deleted, inserted, text_constants=True)

    def close(self) -> None:
        self._database.close()


class BatchBackend(_SQLBackend):
    """BATCHDETECT (Section V-A) behind the engine interface.

    Every ``detect()`` recomputes the flags, Aux(D) and the macro relation
    from scratch — the right choice for one-shot scans and for workloads
    whose updates rewrite most of the data.
    """

    name = "batch"

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
    ):
        super().__init__(schema, sigma, path)
        self.detector = BatchDetector(self._database, self.sigma)
        self.full_detect_count = 0

    def detect(self) -> ViolationSet:
        self.full_detect_count += 1
        return self.detector.detect()

    def fd_group_summary(self, fragments: Sequence[tuple[int, ECFD]]) -> dict:
        return self.detector.fd_group_summary(fragments)


class IncrementalBackend(_SQLBackend):
    """INCDETECT (Section V-B) behind the engine interface.

    The first ``detect()`` runs the batch pass; afterwards
    :meth:`incremental_update` repairs the flags and Aux(D) touching only
    the affected part of the database.  Out-of-band loads and deltas reset
    the maintained state so the next detection re-initialises.
    """

    name = "incremental"
    supports_incremental = True

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
    ):
        super().__init__(schema, sigma, path)
        self.detector = IncrementalDetector(self._database, self.sigma)

    def detect(self) -> ViolationSet:
        return self.detector.detect()

    def ensure_ready(self) -> None:
        if not self.detector.initialized:
            self.detector.initialize()

    def incremental_update(
        self,
        delete_tids: Sequence[int],
        insert_rows: Sequence[Mapping[str, Value]],
        insert_tids: Sequence[int] | None = None,
    ) -> ViolationSet:
        result: ViolationSet | None = None
        if delete_tids:
            result = self.detector.delete_tuples(delete_tids)
        if insert_rows:
            result = self.detector.insert_tuples(list(insert_rows), tids=insert_tids)
        return result if result is not None else self.detector.violations()

    def fd_group_summary(self, fragments: Sequence[tuple[int, ECFD]]) -> dict:
        return self.detector.fd_group_summary(fragments)

    @property
    def full_detect_count(self) -> int:  # type: ignore[override]
        """Batch initialisation passes run by the maintained INCDETECT state.

        Incremental updates never move this counter — the repair strategies
        assert on it that delta re-validation ran zero full re-detections
        after the seeding scan.
        """
        return self.detector.full_detect_count

    @property
    def last_readback(self) -> dict | None:
        """Flag-readback diagnostics of the most recent incremental update."""
        return self.detector.last_readback

    def aux_size(self) -> int:
        """Number of violating groups in the maintained Aux(D) relation."""
        return self.detector.aux_size()

    def state_stats(self) -> dict[str, int]:
        """Size of the maintained INCDETECT state (tuples, Aux(D), macro rows)."""
        return self.detector.state_stats()

    def load_rows(self, rows: Sequence[Mapping[str, Value]]) -> list[int]:
        assigned = super().load_rows(rows)
        self.detector.reset()
        return assigned

    def load_relation(self, relation: Relation) -> int:
        loaded = super().load_relation(relation)
        self.detector.reset()
        return loaded

    def apply_delta(
        self, delete_tids: Sequence[int], insert_rows: Sequence[Mapping[str, Value]]
    ) -> list[int]:
        assigned = super().apply_delta(delete_tids, insert_rows)
        self.detector.reset()
        return assigned

    def apply_cell_changes(self, changes: Sequence) -> None:
        # An out-of-band storage mutation: the maintained flags / Aux(D) no
        # longer describe the data, so the state resets (the *incremental*
        # repair strategy avoids exactly this by shipping its fixes through
        # incremental_update instead).
        super().apply_cell_changes(changes)
        self.detector.reset()

    def clear(self) -> None:
        super().clear()
        self.detector.reset()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
BackendFactory = Callable[..., DetectorBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory under ``name`` (last registration wins).

    ``factory`` is called as ``factory(schema=..., sigma=..., path=...)``
    and must return a :class:`DetectorBackend`.
    """
    if not name:
        raise EngineError("backend name must be a non-empty string")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (unknown names raise the usual error)."""
    if name not in _REGISTRY:
        raise UnknownBackendError(name, available_backends())
    del _REGISTRY[name]


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend_factory(name: str) -> BackendFactory:
    """The factory registered under ``name``.

    For callers that must carry the construction recipe across process
    boundaries — the sharded backend ships the resolved factory to its pool
    workers so runtime-registered delegates work even under ``spawn`` start
    methods, where child processes re-import a registry containing only the
    built-ins.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, available_backends()) from None


def create_backend(
    name: str,
    schema: RelationSchema,
    sigma: ECFDSet | Sequence[ECFD],
    path: str = ":memory:",
    **options,
) -> DetectorBackend:
    """Instantiate the backend registered under ``name``.

    Extra keyword ``options`` are forwarded to the factory for backends with
    configuration beyond the common trio — e.g. the ``sharded`` backend's
    ``delegate`` / ``workers`` / ``executor``.

    Raises
    ------
    UnknownBackendError
        When no backend is registered under ``name``; the message lists the
        available backends.
    """
    return resolve_backend_factory(name)(schema=schema, sigma=sigma, path=path, **options)


class BatchDuckDBBackend(BatchBackend):
    """BATCHDETECT on the DuckDB columnar engine (``backend="batch-duckdb"``).

    Byte-identical SQL pipeline, vectorized executor: relations bulk-load
    via Arrow/columnar appends and the detection queries run over columnar
    storage.  A plain picklable class (not a closure) so sharded lanes can
    ship it as a delegate factory.  Construction raises an actionable
    :class:`~repro.exceptions.DetectionError` when the optional ``duckdb``
    package is not installed.
    """

    name = "batch-duckdb"
    engine = "duckdb"


class IncrementalDuckDBBackend(IncrementalBackend):
    """INCDETECT on the DuckDB columnar engine (``backend="incremental-duckdb"``).

    The maintained-state SQL of Section V-B is engine-portable, so the
    incremental path runs on DuckDB unchanged — without secondary indexes:
    the affected-group joins are answered by vectorized scans instead
    (see :meth:`~repro.detection.dialect.DuckDBDialect.create_index`).
    """

    name = "incremental-duckdb"
    engine = "duckdb"


register_backend(NaiveBackend.name, NaiveBackend)
register_backend(BatchBackend.name, BatchBackend)
register_backend(IncrementalBackend.name, IncrementalBackend)
register_backend(BatchDuckDBBackend.name, BatchDuckDBBackend)
register_backend(IncrementalDuckDBBackend.name, IncrementalDuckDBBackend)
