"""Command-line entry point: regenerate every figure of the paper's evaluation.

Usage::

    python -m repro.experiments.run_all                 # bench scale (default)
    REPRO_SCALE=paper python -m repro.experiments.run_all   # the paper's sizes
    python -m repro.experiments.run_all fig5a fig7b         # a subset of drivers
    python -m repro.experiments.run_all --list              # registry contents
    python -m repro.experiments.run_all --json-out results/ # dump sweeps as JSON

The set of drivers comes from the registry in
:mod:`repro.experiments.figures` (``@register_driver``) — this module has
no driver list of its own, so a newly registered driver is runnable here
immediately.  ``--json-out`` writes each driver's
:class:`~repro.experiments.reporting.ExperimentResult` in the JSON
interchange form that ``python -m repro.reports --experiments-dir``
consumes, connecting the drivers to the figure registry.

Each driver prints its series as an aligned text table; redirect to a file
to keep a record (EXPERIMENTS.md was produced this way).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.figures import available_drivers, resolve_driver
from repro.experiments.runner import current_scale

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Run the requested figure drivers (the whole registry by default)."""
    arguments = list(sys.argv[1:] if argv is None else argv)

    json_out: Path | None = None
    if "--json-out" in arguments:
        index = arguments.index("--json-out")
        try:
            json_out = Path(arguments[index + 1])
        except IndexError:
            print("--json-out needs a directory argument", file=sys.stderr)
            return 2
        del arguments[index:index + 2]

    drivers = available_drivers()
    if "--list" in arguments:
        for name, spec in drivers.items():
            print(f"{name:<20} {spec.kind}")
        return 0

    scale = current_scale()
    requested = arguments or list(drivers)

    print(f"# eCFD reproduction experiments (scale: {scale.name})\n")
    for name in requested:
        try:
            spec = resolve_driver(name)
        except ValueError as error:
            print(error)
            return 2
        result = spec.fn(scale)
        print(result.to_table())
        print()
        if json_out is not None:
            json_out.mkdir(parents=True, exist_ok=True)
            path = json_out / f"{name}.json"
            path.write_text(result.to_json(), encoding="utf-8")
            print(f"(wrote {path})\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
