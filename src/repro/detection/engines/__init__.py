"""Concrete SQL engines and their registry.

The only modules in the codebase allowed to import DB driver packages
(:mod:`sqlite3`, :mod:`duckdb`) live in this package — lint rule RPL005
(engine-affinity) enforces the confinement.  Everything above this layer
speaks :class:`~repro.detection.engines.base.SqlEngine` plus the dialect.

:class:`DuckDBEngine` is always importable; the :mod:`duckdb` package
itself is only required at construction time, so the registry can list the
engine even in dependency-free environments (construction then raises an
actionable :class:`~repro.exceptions.DetectionError`).
"""

from __future__ import annotations

from repro.detection.engines.base import SqlEngine
from repro.detection.engines.duckdb_engine import DuckDBEngine, duckdb_available
from repro.detection.engines.sqlite_engine import SQLiteEngine
from repro.exceptions import DetectionError

__all__ = [
    "SqlEngine",
    "SQLiteEngine",
    "DuckDBEngine",
    "duckdb_available",
    "register_engine",
    "available_engines",
    "create_engine",
]

_ENGINES: dict[str, type[SqlEngine]] = {}


def register_engine(engine_cls: type[SqlEngine]) -> None:
    """Register an engine class under its ``name`` (last wins)."""
    if not engine_cls.name:
        raise DetectionError("engine name must be a non-empty string")
    _ENGINES[engine_cls.name] = engine_cls


def available_engines() -> tuple[str, ...]:
    """The registered engine names, sorted."""
    return tuple(sorted(_ENGINES))


def create_engine(name: str, path: str = ":memory:") -> SqlEngine:
    """Construct the engine registered under ``name``.

    Raises
    ------
    DetectionError
        For unknown names (the message lists what is available), or when
        the engine's driver package is not installed.
    """
    try:
        engine_cls = _ENGINES[name]
    except KeyError:
        raise DetectionError(
            f"unknown SQL engine {name!r}; available: "
            f"{', '.join(available_engines())}"
        ) from None
    return engine_cls(path)


register_engine(SQLiteEngine)
register_engine(DuckDBEngine)
