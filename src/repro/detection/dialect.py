"""SQL dialects — the engine-specific half of the detection SQL stack.

The paper's central claim (Section V) is that eCFD detection compiles to a
*fixed pair of SQL queries* that any RDBMS can execute.  The query shapes in
:mod:`repro.detection.sqlgen` are engine-agnostic; everything an engine is
allowed to disagree about lives here, behind :class:`SqlDialect`:

* identifier quoting and the type affinity of the data columns;
* the string-concatenation idiom building the ``xv_key`` / ``yv_key``
  group identities;
* DDL forms: temporary tables, index creation (a row-store wants the
  ``(cid, xv_key)`` and ``tid`` indexes; a columnar engine is faster
  without them), and the upsert form used for idempotent reloads;
* the blank marker of the ``Q_mv`` GROUP BY trick and the validation that
  keeps it unambiguous (a data value equal to the marker, or containing
  the key separator, would corrupt group identities *silently*).

Two implementations ship: :class:`SQLiteDialect` (the row-at-a-time
reference engine) and :class:`DuckDBDialect` (the vectorized columnar
engine).  Dialects are pure SQL-text factories — connection handling lives
in :mod:`repro.detection.engines`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import ClassVar

from repro.core.schema import Value
from repro.exceptions import DatabaseError, DetectionError

__all__ = [
    "KEY_SEPARATOR",
    "SqlDialect",
    "SQLiteDialect",
    "DuckDBDialect",
    "get_dialect",
    "available_dialects",
    "register_dialect",
]

#: Separator concatenated between blanked values in ``xv_key`` / ``yv_key``.
#: An ASCII unit separator, rejected on ingestion (see
#: :meth:`SqlDialect.validate_text_value`) so concatenated keys can never
#: be ambiguous.
KEY_SEPARATOR = "\x1f"


class SqlDialect:
    """Engine-specific SQL idioms shared by every detection query.

    The base class *is* the portable core-SQL dialect (double-quoted
    identifiers, ``||`` concatenation, ``?`` placeholders, standard
    ``ON CONFLICT`` upserts); subclasses override only where their engine
    genuinely differs.
    """

    #: Registry key of the dialect (set by subclasses).
    name: ClassVar[str] = ""
    #: Column type of the data/pattern value columns.
    text_type: ClassVar[str] = "TEXT"
    #: Column type of tuple/constraint identifiers.
    integer_type: ClassVar[str] = "INTEGER"
    #: Blank marker of the ``Q_mv`` GROUP BY trick (Section V-A): attributes
    #: irrelevant to an embedded FD are replaced by this constant, which
    #: must not occur in the data (the paper uses ``"@"``).
    blank: ClassVar[str] = "@"
    #: Parameter placeholder of the engine's prepared statements.
    placeholder: ClassVar[str] = "?"

    # ------------------------------------------------------------------
    # Identifiers and expressions
    # ------------------------------------------------------------------
    def quote_identifier(self, name: str) -> str:
        """Quote an SQL identifier (table or column name)."""
        escaped = name.replace('"', '""')
        return f'"{escaped}"'

    def string_literal(self, value: str) -> str:
        """A single-quoted SQL string literal."""
        escaped = value.replace("'", "''")
        return f"'{escaped}'"

    def concat(self, parts: Sequence[str]) -> str:
        """The expression concatenating ``parts`` with :data:`KEY_SEPARATOR`.

        Builds the ``xv_key`` / ``yv_key`` group identities; both shipped
        engines use the standard ``||`` operator over non-NULL text.
        """
        joiner = f" || {self.string_literal(KEY_SEPARATOR)} || "
        return joiner.join(parts)

    # ------------------------------------------------------------------
    # DDL forms
    # ------------------------------------------------------------------
    def drop_table(self, table: str) -> str:
        return f"DROP TABLE IF EXISTS {self.quote_identifier(table)}"

    def create_temp_table(self, table: str, column_defs: Sequence[str]) -> str:
        """``CREATE TEMP TABLE`` with explicit column definitions."""
        return (
            f"CREATE TEMP TABLE {self.quote_identifier(table)} "
            f"({', '.join(column_defs)})"
        )

    def create_temp_table_as(self, table: str, select: str) -> str:
        """``CREATE TEMP TABLE ... AS`` materialising a query result."""
        return f"CREATE TEMP TABLE {self.quote_identifier(table)} AS {select}"

    def create_index(
        self, index_name: str, table: str, columns: Sequence[str]
    ) -> str | None:
        """Index DDL, or ``None`` when the engine should not build one.

        Row stores need the ``(cid, xv_key)`` / ``tid`` indexes to keep the
        incremental maintenance joins affected-part-proportional; columnar
        engines answer the same joins from vectorized scans and only pay
        index maintenance on every bulk append, so their dialects return
        ``None`` and the caller skips the statement.
        """
        quoted = ", ".join(self.quote_identifier(column) for column in columns)
        return (
            f"CREATE INDEX IF NOT EXISTS {self.quote_identifier(index_name)} "
            f"ON {self.quote_identifier(table)} ({quoted})"
        )

    def upsert(
        self,
        table: str,
        columns: Sequence[str],
        key_columns: Sequence[str],
    ) -> str:
        """``INSERT ... ON CONFLICT (keys) DO UPDATE`` parameterised statement.

        The idempotent-reload form: engines replaying a load (e.g. a shard
        re-bootstrap after a lost lane) can apply it twice without
        duplicating rows.  Non-key columns take the incoming values.
        """
        keys = set(key_columns)
        updates = [column for column in columns if column not in keys]
        quoted_columns = ", ".join(self.quote_identifier(c) for c in columns)
        placeholders = ", ".join(self.placeholder for _ in columns)
        conflict = ", ".join(self.quote_identifier(c) for c in key_columns)
        statement = (
            f"INSERT INTO {self.quote_identifier(table)} ({quoted_columns}) "
            f"VALUES ({placeholders}) ON CONFLICT ({conflict}) DO "
        )
        if not updates:
            return statement + "NOTHING"
        assignments = ", ".join(
            f"{self.quote_identifier(c)} = excluded.{self.quote_identifier(c)}"
            for c in updates
        )
        return statement + f"UPDATE SET {assignments}"

    # ------------------------------------------------------------------
    # Ingestion validation
    # ------------------------------------------------------------------
    def validate_text_value(self, value: str) -> str:
        """Reject values that would corrupt the blanked group identities.

        A stored value equal to the blank marker is indistinguishable from
        a blanked attribute inside ``xv_key`` / ``yv_key``, and a value
        containing :data:`KEY_SEPARATOR` can forge another tuple's key —
        both would mis-group embedded-FD violations *silently*, so every
        ingestion path routes through this check and fails loudly instead.
        """
        if value == self.blank:
            raise DatabaseError(
                f"value {value!r} equals the blank marker {self.blank!r} used "
                "by the Q_mv GROUP BY encoding; it cannot be stored without "
                "corrupting group identities"
            )
        if KEY_SEPARATOR in value:
            raise DatabaseError(
                f"value {value!r} contains the reserved key separator "
                f"{KEY_SEPARATOR!r}; it cannot be stored without corrupting "
                "xv_key/yv_key group identities"
            )
        return value

    def stringify(self, value: Value) -> str:
        """The validated text form a value is stored as (every engine stores text)."""
        return self.validate_text_value(str(value))


class SQLiteDialect(SqlDialect):
    """The SQLite dialect — the reference row-store of this reproduction."""

    name = "sqlite"
    text_type = "TEXT"


class DuckDBDialect(SqlDialect):
    """The DuckDB dialect — vectorized columnar execution of the same queries."""

    name = "duckdb"
    text_type = "VARCHAR"

    def create_index(
        self, index_name: str, table: str, columns: Sequence[str]
    ) -> str | None:
        # DuckDB's vectorized hash joins and zone maps serve the detection
        # joins without secondary indexes; ART index maintenance would tax
        # every columnar bulk append for no scan benefit.
        return None


_DIALECTS: dict[str, SqlDialect] = {}


def register_dialect(dialect: SqlDialect) -> None:
    """Register a dialect instance under its ``name`` (last wins)."""
    if not dialect.name:
        raise DetectionError("dialect name must be a non-empty string")
    _DIALECTS[dialect.name] = dialect


def available_dialects() -> tuple[str, ...]:
    """The registered dialect names, sorted."""
    return tuple(sorted(_DIALECTS))


def get_dialect(name: str) -> SqlDialect:
    """The dialect registered under ``name``.

    Raises
    ------
    DetectionError
        For unknown names; the message lists what is available.
    """
    try:
        return _DIALECTS[name]
    except KeyError:
        raise DetectionError(
            f"unknown SQL dialect {name!r}; available: "
            f"{', '.join(available_dialects())}"
        ) from None


register_dialect(SQLiteDialect())
register_dialect(DuckDBDialect())
