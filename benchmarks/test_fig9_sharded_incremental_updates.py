"""Fig. 9 (beyond the paper): sharded INCDETECT update maintenance.

The paper's Fig. 7 measures single-threaded INCDETECT against BATCHDETECT
re-detection as the update size grows; this benchmark extends the setting to
the sharded backend.  A bootstrapped engine (``backend="incremental"``,
``workers`` swept over 1 / 2 / 4) applies one 2%-of-|D| mixed
insert/delete batch; only ``apply_update`` is timed — shard bootstrapping
happens in ``ensure_ready`` during setup, matching the paper's assumption
that vio(D) is known before the update arrives.

``workers=1`` is the plain single-threaded incremental delegate (no
sharding layer at all) and doubles as the second hot path tracked by the CI
perf-regression gate (``benchmarks/check_regression.py`` against
``benchmarks/baseline.json``).  Exactness of the sharded path is asserted
separately below and in ``tests/parallel/test_sharded_incremental.py``.
"""

import os

import pytest

from conftest import BENCH_SIZE, dataset_rows, update_batch

from repro.core.schema import cust_ext_schema
from repro.engine import DataQualityEngine

WORKER_COUNTS = [1, 2, 4]
#: |ΔD⁺| = |ΔD⁻| as a fraction of |D| (the paper's smallest Fig. 7 point).
UPDATE_FRACTION = 0.02


def _bootstrapped_engine(rows, workload, workers: int) -> DataQualityEngine:
    engine = DataQualityEngine(
        cust_ext_schema(), workload, backend="incremental", workers=workers
    )
    engine.load(rows)
    # Initialise the maintained state (flags + Aux(D), per shard when
    # workers > 1) outside the timed region.
    engine.backend.ensure_ready()
    return engine


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig9_sharded_incremental_update(benchmark, workers, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), max(1, int(BENCH_SIZE * UPDATE_FRACTION)))

    trace = {}

    def setup():
        return (_bootstrapped_engine(rows, base_workload, workers),), {}

    def run(engine):
        result = engine.apply_update(batch)
        update_trace = getattr(engine.backend, "last_update_trace", None)
        if update_trace:
            trace.update(update_trace)
        engine.close()
        return result

    # Multiple rounds: the workers=1 mean feeds the CI regression gate.
    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert result.incremental, "the update must be maintained, not recomputed"
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["tuples"] = BENCH_SIZE
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = result.dirty_count
    benchmark.extra_info["cores"] = os.cpu_count()
    # Readback accounting: flags probed (bounded by the shards' maintained
    # violation sets) and summary groups
    # touched by the routed update (sharded runs only).
    benchmark.extra_info["readback_tids"] = trace.get("readback_tids", 0)
    benchmark.extra_info["summary_groups_touched"] = trace.get(
        "summary_groups_touched", 0
    )


def test_fig9_sharded_incremental_exactness(base_workload):
    """Sharded maintenance equals the single-threaded incremental pass."""
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), max(1, int(BENCH_SIZE * UPDATE_FRACTION)))

    single = _bootstrapped_engine(rows, base_workload, workers=1)
    expected = single.apply_update(batch)
    single.close()

    sharded = _bootstrapped_engine(rows, base_workload, workers=4)
    result = sharded.apply_update(batch)
    trace = sharded.backend.last_update_trace
    sharded.close()

    assert result.incremental and expected.incremental
    assert result.violations == expected.violations
    assert result.tuple_count == expected.tuple_count
    # Work is proportional to the routed delta: the trace never reports a
    # bootstrap inside the timed update, and the routed counts match |ΔD|
    # times the clusters each tuple replicates into.
    assert trace["mode"] == "incremental"
    assert not trace["bootstrap"]
    assert trace["shards_touched"] <= trace["shards_total"]
