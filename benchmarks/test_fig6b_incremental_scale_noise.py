"""Fig. 6(b): INCDETECT vs BATCHDETECT as the error rate grows.

Paper setting: |D| = 100k, |ΔD⁺| = |ΔD⁻| = 10k, noise swept from 0% to 9%.
Expected shape: both curves are roughly flat in the noise rate, with
INCDETECT below BATCHDETECT throughout.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    prepared_batch_detector,
    prepared_incremental_detector,
    sweep,
    update_batch,
)

NOISE_LEVELS = sweep([0.0, 1.0, 3.0, 5.0, 7.0, 9.0])
UPDATE_SIZE = max(BENCH_SIZE // 10, 50)


@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_fig6b_incdetect_scalability_in_noise(benchmark, noise, base_workload):
    rows = dataset_rows(BENCH_SIZE, noise=noise)
    batch = update_batch(len(rows), UPDATE_SIZE, noise=noise)

    def setup():
        return (prepared_incremental_detector(rows, base_workload),), {}

    def run(detector):
        detector.delete_tuples(batch.delete_tids)
        return detector.insert_tuples(list(batch.insert_rows))

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["noise_percent"] = noise
    benchmark.extra_info["dirty"] = len(violations)


@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_fig6b_batchdetect_after_update_in_noise(benchmark, noise, base_workload):
    rows = dataset_rows(BENCH_SIZE, noise=noise)
    batch = update_batch(len(rows), UPDATE_SIZE, noise=noise)

    def setup():
        detector = prepared_batch_detector(rows, base_workload)
        detector.detect()
        detector.database.delete_tuples(batch.delete_tids)
        detector.database.insert_tuples(list(batch.insert_rows))
        return (detector,), {}

    def run(detector):
        return detector.detect()

    violations = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["noise_percent"] = noise
    benchmark.extra_info["dirty"] = len(violations)
