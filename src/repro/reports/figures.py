"""The built-in figure generators.

Three groups:

* ``paper`` — the paper's evaluation figures (5a–7b) plus the two
  ablations, regenerated from the fig5–7 benchmark families of a
  ``BENCH_<sha>.json`` artifact (or, when ``--experiments-dir`` provides a
  driver sweep with the same id, from the driver's richer sweep);
* ``growth`` — the figures of this reproduction's growth beyond the
  paper: fig8 parallel scaling (with replication-factor annotations),
  fig9 update routing, fig10 repair convergence across strategies, and
  fig11 sustained service throughput / latency;
* ``trajectory`` — the cross-commit perf trajectory over *all* loaded
  artifacts (everything else plots only the newest).

Every generator is pure: context in, :class:`FigureData` out.  Names of
``paper``-group figures deliberately equal the experiment-driver names in
:mod:`repro.experiments.figures` — a regression test enumerates both
registries and fails when a driver exists without a figure (or vice
versa), which is what keeps the two from diverging.
"""

from __future__ import annotations

from repro.reports.context import ReportContext
from repro.reports.markdown import fmt_number
from repro.reports.model import Annotation, FigureData, ReportDataError, Series
from repro.reports.registry import register_figure
from repro.reports.trajectory import trajectory_figure

__all__: list[str] = []


def _series_from_rows(rows: list[dict[str, object]], y_field: str = "seconds") -> list[Series]:
    """Group normalized rows into series (first-seen label order, x-sorted)."""
    order: list[str] = []
    grouped: dict[str, Series] = {}
    for row in rows:
        label = str(row.get("series", ""))
        if label not in grouped:
            grouped[label] = Series(label=label)
            order.append(label)
        x = row.get("parameter", 0)
        y = row.get(y_field, 0)
        if isinstance(x, (int, float)) and isinstance(y, (int, float)):
            grouped[label].points.append((float(x), float(y)))
    for series in grouped.values():
        series.points.sort(key=lambda point: point[0])
    return [grouped[label] for label in order]


def _line_figure(
    ctx: ReportContext,
    name: str,
    title: str,
    xlabel: str,
    bench_specs: list[tuple[str, str, tuple[str, ...]]],
    ylabel: str = "seconds",
) -> FigureData:
    rows = ctx.figure_rows(name, bench_specs)
    figure = FigureData(name=name, title=title, xlabel=xlabel, ylabel=ylabel,
                        series=_series_from_rows(rows))
    if figure.is_empty():
        raise ReportDataError(
            f"figure {name!r}: the newest artifact ({ctx.latest.path.name}) has no "
            f"entries for {', '.join(base for base, _, _ in bench_specs)} and no "
            f"experiment sweep {name!r} was provided"
        )
    return figure


# ----------------------------------------------------------------------
# Group "paper" — the paper's evaluation shapes
# ----------------------------------------------------------------------
@register_figure("fig5a", "paper", "BATCHDETECT scalability in |D|")
def fig5a(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig5a", "BATCHDETECT running time vs |D|", "|D| (tuples)",
                         [("test_fig5a_batchdetect_scalability_in_tuples",
                           "batchdetect", ("tuples",))])]


@register_figure("fig5b", "paper", "BATCHDETECT scalability in noise%")
def fig5b(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig5b", "BATCHDETECT running time vs noise%", "noise (%)",
                         [("test_fig5b_batchdetect_scalability_in_noise",
                           "batchdetect", ("noise_percent",))])]


@register_figure("fig5c", "paper", "BATCHDETECT scalability in |Tp|")
def fig5c(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig5c", "BATCHDETECT running time vs |Tp|", "|Tp| (pattern tuples)",
                         [("test_fig5c_batchdetect_scalability_in_tableau",
                           "batchdetect", ("tableau_size",))])]


@register_figure("fig6a", "paper", "INCDETECT vs BATCHDETECT in |D|")
def fig6a(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig6a", "INCDETECT vs BATCHDETECT vs |D|", "|D| (tuples)",
                         [("test_fig6a_incdetect_scalability_in_tuples",
                           "incdetect", ("tuples",)),
                          ("test_fig6a_batchdetect_after_update_in_tuples",
                           "batchdetect-after-update", ("tuples",))])]


@register_figure("fig6b", "paper", "INCDETECT vs BATCHDETECT in noise%")
def fig6b(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig6b", "INCDETECT vs BATCHDETECT vs noise%", "noise (%)",
                         [("test_fig6b_incdetect_scalability_in_noise",
                           "incdetect", ("noise_percent",)),
                          ("test_fig6b_batchdetect_after_update_in_noise",
                           "batchdetect-after-update", ("noise_percent",))])]


@register_figure("fig6c", "paper", "INCDETECT vs BATCHDETECT in |Tp|")
def fig6c(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig6c", "INCDETECT vs BATCHDETECT vs |Tp|", "|Tp| (pattern tuples)",
                         [("test_fig6c_incdetect_scalability_in_tableau",
                           "incdetect", ("tableau_size",)),
                          ("test_fig6c_batchdetect_after_update_in_tableau",
                           "batchdetect-after-update", ("tableau_size",))])]


@register_figure("fig7a", "paper", "Effect of update size on detection cost")
def fig7a(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "fig7a", "INCDETECT vs BATCHDETECT vs |ΔD|", "|ΔD| (tuples)",
                         [("test_fig7a_incdetect_by_update_size",
                           "incdetect", ("update_size",)),
                          ("test_fig7a_batchdetect_by_update_size",
                           "batchdetect-after-update", ("update_size",))])]


@register_figure("fig7b", "paper", "Violation growth with update size")
def fig7b(ctx: ReportContext) -> list[FigureData]:
    rows = ctx.figure_rows(
        "fig7b",
        [("test_fig7b_violation_growth_with_update_size", "growth", ("update_size",))],
    )
    figure = FigureData(name="fig7b", title="Violation growth vs update size",
                        xlabel="|ΔD| (tuples)", ylabel="violations")
    # Driver sweeps report the symmetric differences (dsv/dmv); benchmark
    # artifacts report absolute before/after counts.  Plot whichever the
    # rows carry.
    fields = (("dsv", "ΔSV"), ("dmv", "ΔMV")) if any("dsv" in row for row in rows) else (
        ("sv_after", "SV after update"), ("mv_after", "MV after update"))
    for field_name, label in fields:
        series = Series(label=label)
        for row in rows:
            x, y = row.get("parameter"), row.get(field_name)
            if isinstance(x, (int, float)) and isinstance(y, (int, float)):
                series.points.append((float(x), float(y)))
        series.points.sort(key=lambda point: point[0])
        if series.points:
            figure.series.append(series)
    if figure.is_empty():
        raise ReportDataError(
            f"figure 'fig7b': no violation-growth readings in {ctx.latest.path.name}"
        )
    return [figure]


# ----------------------------------------------------------------------
# Group "ablation"
# ----------------------------------------------------------------------
@register_figure("ablation-encoding", "ablation", "Encoded SQL vs naive per-pattern detection")
def ablation_encoding(ctx: ReportContext) -> list[FigureData]:
    return [_line_figure(ctx, "ablation_encoding",
                         "Encoded SQL detection vs naive per-pattern detection",
                         "|Tp| (pattern tuples)",
                         [("test_ablation_sql_batchdetect",
                           "batchdetect-sql", ("tableau_size",)),
                          ("test_ablation_naive_python_detector",
                           "naive-python", ("tableau_size",))])]


@register_figure("ablation-maxss", "ablation", "MAXSS approximation quality")
def ablation_maxss(ctx: ReportContext) -> list[FigureData]:
    entries = ctx.latest.parametrized("test_ablation_maxss_solver")
    experiment = ctx.experiments.get("ablation-maxss")
    figure = FigureData(name="ablation_maxss",
                        title="MAXSS approximation quality vs exact optimum",
                        xlabel="solver", ylabel="recovered / optimal cardinality",
                        kind="bar", x_ticklabels=[])
    ratio = Series(label="approximation ratio")
    if experiment is not None and experiment.measurements:
        # Average the per-trial ratios of each solver series.
        by_solver: dict[str, list[float]] = {}
        for m in experiment.measurements:
            value = m.extra.get("ratio")
            if isinstance(value, (int, float)):
                by_solver.setdefault(m.label, []).append(float(value))
        for index, (solver, values) in enumerate(sorted(by_solver.items())):
            figure.x_ticklabels.append(solver)
            ratio.points.append((float(index), round(sum(values) / len(values), 3)))
    else:
        for index, entry in enumerate(entries):
            figure.x_ticklabels.append(entry.param or entry.name)
            ratio.points.append((float(index), entry.number("ratio", 0.0) or 0.0))
    figure.series.append(ratio)
    if figure.is_empty():
        raise ReportDataError(
            f"figure 'ablation-maxss': no solver readings in {ctx.latest.path.name}"
        )
    return [figure]


# ----------------------------------------------------------------------
# Group "growth" — beyond the paper
# ----------------------------------------------------------------------
@register_figure("fig8", "growth", "Parallel batch-detect scaling")
def fig8(ctx: ReportContext) -> list[FigureData]:
    entries = ctx.latest.parametrized("test_fig8_sharded_batch_detect_scaling")
    if not entries:
        raise ReportDataError(f"figure 'fig8': no fig8 entries in {ctx.latest.path.name}")
    tuples = entries[0].number("tuples")
    figure = FigureData(
        name="fig8_parallel_scaling",
        title=f"Sharded BATCHDETECT vs workers (|D| = {fmt_number(tuples or 0)})",
        xlabel="workers", ylabel="detect wall time (s)",
    )
    wall = Series(label="detect()")
    for entry in entries:
        workers = entry.parameter(("workers",))
        wall.points.append((workers, entry.mean))
        factor = entry.number("replication_factor")
        if factor is not None:
            note = f"r={fmt_number(factor, 2)}x"
            summary_bytes = entry.number("summary_bytes")
            if summary_bytes:
                note += f", {fmt_number(summary_bytes / 1024.0, 1)} KB summaries"
            figure.annotations.append(Annotation(workers, entry.mean, note))
    figure.series.append(wall)
    figure.caption = (
        "Every stored row ships to exactly one shard; the per-point annotation is "
        "the replication factor (gated <= 1.0 in CI) and the size of the cross-shard "
        "(cid, xv, yv-multiset) summaries."
    )
    return [figure]


@register_figure("fig9", "growth", "Sharded incremental update routing")
def fig9(ctx: ReportContext) -> list[FigureData]:
    entries = ctx.latest.parametrized("test_fig9_sharded_incremental_update")
    if not entries:
        raise ReportDataError(f"figure 'fig9': no fig9 entries in {ctx.latest.path.name}")
    update_size = entries[0].number("update_size")
    figure = FigureData(
        name="fig9_update_routing",
        title=f"INCDETECT update maintenance vs workers (|ΔD| = {fmt_number(update_size or 0)})",
        xlabel="workers", ylabel="apply_update wall time (s)",
    )
    wall = Series(label="apply_update()")
    for entry in entries:
        workers = entry.parameter(("workers",))
        wall.points.append((workers, entry.mean))
        readback = entry.number("readback_tids")
        if readback:
            figure.annotations.append(
                Annotation(workers, entry.mean, f"{fmt_number(readback)} tids probed")
            )
    figure.series.append(wall)
    figure.caption = (
        "Updates route through the partition plan to the shards they touch; the "
        "annotation counts the violation-flag probes of the readback (bounded by the "
        "maintained violation set, never a whole-shard scan)."
    )
    return [figure]


@register_figure("fig10", "growth", "Repair convergence across strategies")
def fig10(ctx: ReportContext) -> list[FigureData]:
    entries = ctx.latest.parametrized("test_fig10_repair_convergence")
    if not entries:
        raise ReportDataError(f"figure 'fig10': no fig10 entries in {ctx.latest.path.name}")
    figure = FigureData(
        name="fig10_repair_convergence",
        title="Full repair wall time by strategy (identical fixes by construction)",
        xlabel="strategy", ylabel="repair wall time (s)",
        kind="bar", x_ticklabels=[],
    )
    wall = Series(label="repair()")
    captions: list[str] = []
    for index, entry in enumerate(entries):
        strategy = entry.param or str(entry.extra.get("strategy", entry.name))
        figure.x_ticklabels.append(strategy)
        wall.points.append((float(index), entry.mean))
        rounds = entry.number("rounds")
        cells = entry.number("cells_changed")
        if rounds is not None and cells is not None:
            captions.append(
                f"{strategy}: {fmt_number(rounds)} rounds, {fmt_number(cells)} cells, "
                f"{fmt_number(entry.number('full_detects', 0) or 0)} full detections"
            )
    figure.series.append(wall)
    figure.caption = (
        "All strategies share one deterministic FixPlanner (bit-exact repaired "
        "relations); they differ only in re-validation cost. " + "; ".join(captions)
    )
    return [figure]


@register_figure("fig11", "growth", "Sustained service throughput and latency")
def fig11(ctx: ReportContext) -> list[FigureData]:
    entries = ctx.latest.parametrized("test_fig11_service_sustained_throughput")
    if not entries:
        raise ReportDataError(f"figure 'fig11': no fig11 entries in {ctx.latest.path.name}")
    throughput = FigureData(
        name="fig11_service_throughput",
        title="Always-on service: sustained update throughput vs workers",
        xlabel="workers", ylabel="updates / second",
        caption=(
            "A Poisson-structured update stream driven through admission control, the "
            "delta coalescer and the pump as fast as the service admits it."
        ),
    )
    latency = FigureData(
        name="fig11_service_latency",
        title="Always-on service: submit-to-applied latency vs workers",
        xlabel="workers", ylabel="latency (ms)",
        caption="p99 and mean of the per-submission applied-future latency.",
    )
    rate = Series(label="sustained updates/s")
    p99 = Series(label="p99")
    mean = Series(label="mean")
    for entry in entries:
        workers = entry.parameter(("workers",))
        value = entry.number("updates_per_second")
        if value is not None:
            rate.points.append((workers, value))
        for series, key in ((p99, "p99_latency_ms"), (mean, "mean_latency_ms")):
            reading = entry.number(key)
            if reading is not None:
                series.points.append((workers, reading))
    throughput.series.append(rate)
    latency.series = [series for series in (p99, mean) if series.points]
    figures = [figure for figure in (throughput, latency) if not figure.is_empty()]
    if not figures:
        raise ReportDataError(
            f"figure 'fig11': fig11 entries in {ctx.latest.path.name} carry no "
            "throughput/latency readings in extra_info"
        )
    return figures


@register_figure("fig13", "growth", "Cross-engine detection: SQLite vs DuckDB")
def fig13(ctx: ReportContext) -> list[FigureData]:
    entries = ctx.latest.parametrized("test_fig13_cross_engine_batch_detect")
    if not entries:
        raise ReportDataError(f"figure 'fig13': no fig13 entries in {ctx.latest.path.name}")
    figure = FigureData(
        name="fig13_cross_engine",
        title="Same detection pipeline, two engines: BATCHDETECT vs |D|",
        xlabel="|D| (tuples)", ylabel="detect wall time (s)",
    )
    by_engine: dict[str, Series] = {}
    for entry in entries:
        engine = str(entry.extra.get("engine", "")) or "sqlite"
        tuples = entry.number("tuples")
        if tuples is None:
            continue
        series = by_engine.setdefault(engine, Series(label=engine))
        series.points.append((tuples, entry.mean))
        speedup = entry.number("speedup_vs_sqlite")
        if engine == "duckdb" and speedup is not None:
            figure.annotations.append(
                Annotation(tuples, entry.mean, f"{fmt_number(speedup, 2)}x vs sqlite")
            )
    for engine in sorted(by_engine):
        by_engine[engine].points.sort(key=lambda point: point[0])
        figure.series.append(by_engine[engine])
    figure.caption = (
        "The identical generated SQL pair (Q_sv scan + GROUP BY macro pass), "
        "emitted through the dialect layer, executed on SQLite's row store and "
        "DuckDB's columnar engine; per-point annotations are the measured "
        "speedup (gated >= 3.0x at |D| >= 100k in CI). Violation sets are "
        "bit-identical across engines at every point."
    )
    if figure.is_empty():
        raise ReportDataError(
            f"figure 'fig13': fig13 entries in {ctx.latest.path.name} carry no "
            "tuples readings in extra_info"
        )
    return [figure]


# ----------------------------------------------------------------------
# Group "trajectory"
# ----------------------------------------------------------------------
@register_figure("perf-trajectory", "trajectory", "Perf trajectory across commits")
def perf_trajectory(ctx: ReportContext) -> list[FigureData]:
    figure = trajectory_figure(ctx.runs)
    if figure.is_empty():
        raise ReportDataError(
            "figure 'perf-trajectory': none of the loaded artifacts contain a "
            "tracked hot-path benchmark"
        )
    return [figure]
