"""Shared plumbing for the experiment drivers.

The figure drivers in :mod:`repro.experiments.figures` all follow the same
recipe: generate a dataset at some scale, load it into SQLite, run one of
the detectors, and record wall-clock time plus violation counts.  This
module holds that plumbing, together with the scale configuration.

Scales
------
The paper's sweeps run up to 100k tuples on a 2005-era server with a
commercial DBMS; a test-suite should not take that long by default.  Three
named scales are provided and selected via the ``REPRO_SCALE`` environment
variable (or explicitly through the API):

* ``smoke``  — tiny sizes, used by the unit tests of the harness itself;
* ``bench``  — the default for ``pytest benchmarks/``: small enough that the
  whole benchmark suite finishes in a few minutes, large enough that the
  paper's qualitative shapes (linearity, incremental-vs-batch ordering) are
  visible;
* ``paper``  — the sizes of the paper (10k-100k tuples, |Tp| up to 500); use
  this for a faithful, longer run via
  ``REPRO_SCALE=paper python -m repro.experiments.run_all``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.core.ecfd import ECFDSet
from repro.core.schema import RelationSchema, cust_ext_schema
from repro.core.violations import ViolationSet
from repro.datagen.updates import UpdateBatch
from repro.detection.database import ECFDDatabase
from repro.engine import DataQualityEngine
from repro.experiments.timing import Measurement

__all__ = [
    "Scale",
    "SCALES",
    "current_scale",
    "load_database",
    "make_engine",
    "timed_batch_detection",
    "timed_incremental_update",
    "timed_batch_after_update",
]


@dataclass(frozen=True)
class Scale:
    """Sweep sizes for one named scale.

    Attributes mirror the paper's experimental parameters: the |D| sweep of
    Fig. 5(a)/6(a), the default database size, the default noise rate, the
    noise sweep of Fig. 5(b)/6(b), the |Tp| sweep of Fig. 5(c)/6(c), the
    update-size sweep of Fig. 7 and the fixed update size of Fig. 6.
    """

    name: str
    dataset_sizes: tuple[int, ...]
    default_size: int
    default_noise: float
    noise_levels: tuple[float, ...]
    tableau_sizes: tuple[int, ...]
    update_sizes: tuple[int, ...]
    fixed_update_size: int


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        dataset_sizes=(100, 200, 300),
        default_size=300,
        default_noise=5.0,
        noise_levels=(0.0, 5.0, 9.0),
        tableau_sizes=(10, 30, 50),
        update_sizes=(20, 60, 120),
        fixed_update_size=30,
    ),
    "bench": Scale(
        name="bench",
        dataset_sizes=(1_000, 2_000, 4_000, 6_000, 8_000, 10_000),
        default_size=10_000,
        default_noise=5.0,
        noise_levels=(0.0, 1.0, 3.0, 5.0, 7.0, 9.0),
        tableau_sizes=(50, 100, 200, 300, 400, 500),
        update_sizes=(200, 400, 800, 1_200, 2_000, 5_000),
        fixed_update_size=1_000,
    ),
    "paper": Scale(
        name="paper",
        dataset_sizes=(10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000, 90_000, 100_000),
        default_size=100_000,
        default_noise=5.0,
        noise_levels=(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0),
        tableau_sizes=(50, 100, 150, 200, 250, 300, 350, 400, 450, 500),
        update_sizes=(2_000, 4_000, 6_000, 8_000, 10_000, 12_000, 20_000, 40_000, 60_000),
        fixed_update_size=10_000,
    ),
}


def current_scale(name: str | None = None) -> Scale:
    """Resolve the active scale: explicit name > ``REPRO_SCALE`` env var > bench."""
    resolved = name or os.environ.get("REPRO_SCALE", "bench")
    if resolved not in SCALES:
        raise ValueError(f"unknown scale {resolved!r}; choose one of {sorted(SCALES)}")
    return SCALES[resolved]


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
def load_database(
    rows: Sequence[dict[str, str]], schema: RelationSchema | None = None
) -> ECFDDatabase:
    """Create an in-memory SQLite database and bulk-load ``rows`` into it."""
    schema = schema if schema is not None else cust_ext_schema()
    database = ECFDDatabase(schema)
    database.insert_tuples(rows)
    return database


def make_engine(
    rows: Sequence[dict[str, str]],
    sigma: ECFDSet,
    backend: str = "batch",
    schema: RelationSchema | None = None,
) -> DataQualityEngine:
    """A loaded :class:`DataQualityEngine` over an in-memory store.

    All timed experiment building blocks go through this helper, so the
    engine façade is the exercised hot path of the whole harness.
    """
    schema = schema if schema is not None else cust_ext_schema()
    engine = DataQualityEngine(schema, sigma, backend=backend)
    engine.load(rows)
    return engine


def timed_batch_detection(
    rows: Sequence[dict[str, str]],
    sigma: ECFDSet,
    parameter: float,
    label: str = "batchdetect",
    schema: RelationSchema | None = None,
) -> tuple[Measurement, ViolationSet]:
    """Load ``rows``, run BATCHDETECT once and record its wall-clock time.

    Loading and encoding happen outside the timed region — the paper times
    the detection queries, not the data import.
    """
    engine = make_engine(rows, sigma, backend="batch", schema=schema)
    try:
        result = engine.detect()
        measurement = Measurement(
            label=label,
            parameter=parameter,
            seconds=result.seconds,
            extra={"tuples": len(rows), "sv": result.sv_count,
                   "mv": result.mv_count, "dirty": result.dirty_count},
        )
        return measurement, result.violations
    finally:
        engine.close()


def timed_incremental_update(
    rows: Sequence[dict[str, str]],
    sigma: ECFDSet,
    batch: UpdateBatch,
    parameter: float,
    schema: RelationSchema | None = None,
) -> tuple[Measurement, Measurement, ViolationSet]:
    """Time INCDETECT's handling of one update batch (deletions then insertions).

    Returns one measurement for the deletion phase and one for the insertion
    phase (the paper reports them as separate curves), plus the final
    violation set.  The initial batch run that establishes Aux(D) is *not*
    part of the timed region, matching the paper's setting where vio(D) is
    assumed known before the update arrives.
    """
    engine = make_engine(rows, sigma, backend="incremental", schema=schema)
    try:
        engine.detect()  # initial batch pass (untimed)

        delete_seconds = insert_seconds = 0.0
        if batch.delete_tids:
            delete_seconds = engine.apply_update(delete_tids=batch.delete_tids).seconds
        if batch.insert_rows:
            insert_seconds = engine.apply_update(insert_rows=list(batch.insert_rows)).seconds
        violations = engine.detect().violations  # maintained flags, no recomputation
        counts = engine.violation_counts()

        deletions = Measurement(
            label="incdetect-delete",
            parameter=parameter,
            seconds=delete_seconds,
            extra={"deleted": batch.delete_count, **counts},
        )
        insertions = Measurement(
            label="incdetect-insert",
            parameter=parameter,
            seconds=insert_seconds,
            extra={"inserted": batch.insert_count, **counts},
        )
        return deletions, insertions, violations
    finally:
        engine.close()


def timed_batch_after_update(
    rows: Sequence[dict[str, str]],
    sigma: ECFDSet,
    batch: UpdateBatch,
    parameter: float,
    schema: RelationSchema | None = None,
) -> tuple[Measurement, ViolationSet]:
    """Time BATCHDETECT recomputed from scratch on the updated database.

    This is the comparison point of Experiment 2: "BATCHDETECT was applied
    to the data after database updates are executed".
    """
    engine = make_engine(rows, sigma, backend="batch", schema=schema)
    try:
        engine.detect()  # establish the pre-update state (untimed)
        result = engine.apply_update(batch)  # delta applied, then re-detected
        measurement = Measurement(
            label="batchdetect-after-update",
            parameter=parameter,
            seconds=result.seconds,  # detection only; delta application is apply_seconds
            extra={"tuples": result.tuple_count, "sv": result.sv_count,
                   "mv": result.mv_count, "dirty": result.dirty_count},
        )
        return measurement, result.violations
    finally:
        engine.close()
