"""Deterministic SVG rendering of :class:`~repro.reports.model.FigureData`.

The renderer is dependency-free on purpose: the container that regenerates
the committed figures in CI has no plotting stack, and the docs staleness
check needs byte-identical output for identical input.  Every coordinate
is formatted with an explicit precision, ordering is the figure's own
series order, and nothing (no timestamp, no library version) leaks into
the output.

PNG output is an optional extra gated on matplotlib being importable —
:func:`png_available` / :func:`render_png` — because raster output cannot
be produced portably from the standard library.
"""

from __future__ import annotations

import importlib.util
import math
from xml.sax.saxutils import escape

from repro.reports.model import FigureData, ReportError, Series

__all__ = ["render_svg", "png_available", "render_png", "PALETTE"]

#: Colorblind-safe categorical palette (Observable 10 ordering).
PALETTE = (
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0",
    "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
)

WIDTH, HEIGHT = 760, 440
MARGIN_LEFT, MARGIN_RIGHT, MARGIN_TOP, MARGIN_BOTTOM = 72, 24, 48, 56
AXIS_COLOR = "#6b7280"
GRID_COLOR = "#e5e7eb"
TEXT_COLOR = "#1f2937"
FONT = "font-family=\"Helvetica,Arial,sans-serif\""


def _fmt(value: float) -> str:
    """Pixel coordinates at fixed 2-decimal precision (deterministic)."""
    return f"{value:.2f}"


def _tick_label(value: float) -> str:
    """Human tick labels: integers bare, large values thinned, floats trimmed."""
    if abs(value) >= 10000 and value == int(value):
        return f"{int(value):,}".replace(",", " ")  # thin space groups
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    text = f"{value:.4f}".rstrip("0").rstrip(".")
    return text or "0"


def _nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Rounded tick positions covering [low, high]."""
    if high <= low:
        high = low + (abs(low) or 1.0)
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    tick = first
    while tick <= high + step * 1e-9:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


def _marker(x: float, y: float, index: int, color: str) -> str:
    """A per-series marker shape so series stay distinguishable in grayscale."""
    shape = index % 4
    r = 4.0
    if shape == 0:  # circle
        return f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="{r}" fill="{color}"/>'
    if shape == 1:  # square
        return (f'<rect x="{_fmt(x - r)}" y="{_fmt(y - r)}" width="{_fmt(2 * r)}" '
                f'height="{_fmt(2 * r)}" fill="{color}"/>')
    if shape == 2:  # diamond
        points = f"{_fmt(x)},{_fmt(y - r - 1)} {_fmt(x + r + 1)},{_fmt(y)} " \
                 f"{_fmt(x)},{_fmt(y + r + 1)} {_fmt(x - r - 1)},{_fmt(y)}"
        return f'<polygon points="{points}" fill="{color}"/>'
    points = f"{_fmt(x)},{_fmt(y - r - 1)} {_fmt(x + r + 1)},{_fmt(y + r)} " \
             f"{_fmt(x - r - 1)},{_fmt(y + r)}"
    return f'<polygon points="{points}" fill="{color}"/>'


def _data_bounds(series: list[Series]) -> tuple[float, float, float, float]:
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(0.0, min(ys)), max(ys)
    if x_high == x_low:
        x_low, x_high = x_low - 0.5, x_high + 0.5
    if y_high == y_low:
        y_high = y_low + (abs(y_low) or 1.0)
    return x_low, x_high, y_low, y_high


def render_svg(figure: FigureData) -> str:
    """The figure as standalone SVG text (one trailing newline)."""
    if figure.is_empty():
        raise ReportError(f"figure {figure.name!r} has no data points to render")

    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    categorical = figure.kind == "bar"

    if categorical:
        categories = figure.x_ticklabels or []
        x_low, x_high = -0.5, max(len(categories) - 0.5, 0.5)
        _, _, y_low, y_high = _data_bounds(figure.series)
        y_ticks = _nice_ticks(y_low, y_high)
        y_high = max(y_high, y_ticks[-1])
        x_ticks = list(range(len(categories)))
    else:
        x_low, x_high, y_low, y_high = _data_bounds(figure.series)
        x_ticks = _nice_ticks(x_low, x_high)
        y_ticks = _nice_ticks(y_low, y_high)
        x_low, x_high = min(x_low, x_ticks[0]), max(x_high, x_ticks[-1])
        y_high = max(y_high, y_ticks[-1])
        y_low = min(y_low, y_ticks[0])

    def px(x: float) -> float:
        return MARGIN_LEFT + (x - x_low) / (x_high - x_low) * plot_w

    def py(y: float) -> float:
        return MARGIN_TOP + plot_h - (y - y_low) / (y_high - y_low) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'viewBox="0 0 {WIDTH} {HEIGHT}">',
        f"<desc>{escape(figure.caption or figure.title)}</desc>",
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="#ffffff"/>',
        f'<text x="{MARGIN_LEFT}" y="24" {FONT} font-size="15" font-weight="bold" '
        f'fill="{TEXT_COLOR}">{escape(figure.title)}</text>',
    ]

    # Gridlines + y ticks.
    for tick in y_ticks:
        if not (y_low - 1e-9 <= tick <= y_high + 1e-9):
            continue
        y = py(tick)
        parts.append(f'<line x1="{MARGIN_LEFT}" y1="{_fmt(y)}" '
                     f'x2="{MARGIN_LEFT + plot_w}" y2="{_fmt(y)}" '
                     f'stroke="{GRID_COLOR}" stroke-width="1"/>')
        parts.append(f'<text x="{MARGIN_LEFT - 8}" y="{_fmt(y + 4)}" {FONT} '
                     f'font-size="11" text-anchor="end" fill="{AXIS_COLOR}">'
                     f"{escape(_tick_label(tick))}</text>")

    # X ticks.
    for index, tick in enumerate(x_ticks):
        if not categorical and not (x_low - 1e-9 <= tick <= x_high + 1e-9):
            continue
        x = px(float(tick))
        label = (figure.x_ticklabels[index]
                 if categorical and figure.x_ticklabels and index < len(figure.x_ticklabels)
                 else _tick_label(float(tick)))
        parts.append(f'<line x1="{_fmt(x)}" y1="{MARGIN_TOP + plot_h}" '
                     f'x2="{_fmt(x)}" y2="{MARGIN_TOP + plot_h + 5}" '
                     f'stroke="{AXIS_COLOR}" stroke-width="1"/>')
        parts.append(f'<text x="{_fmt(x)}" y="{MARGIN_TOP + plot_h + 20}" {FONT} '
                     f'font-size="11" text-anchor="middle" fill="{AXIS_COLOR}">'
                     f"{escape(label)}</text>")

    # Axes.
    parts.append(f'<line x1="{MARGIN_LEFT}" y1="{MARGIN_TOP}" x2="{MARGIN_LEFT}" '
                 f'y2="{MARGIN_TOP + plot_h}" stroke="{AXIS_COLOR}" stroke-width="1"/>')
    parts.append(f'<line x1="{MARGIN_LEFT}" y1="{MARGIN_TOP + plot_h}" '
                 f'x2="{MARGIN_LEFT + plot_w}" y2="{MARGIN_TOP + plot_h}" '
                 f'stroke="{AXIS_COLOR}" stroke-width="1"/>')
    parts.append(f'<text x="{MARGIN_LEFT + plot_w / 2:.2f}" y="{HEIGHT - 12}" {FONT} '
                 f'font-size="12" text-anchor="middle" fill="{TEXT_COLOR}">'
                 f"{escape(figure.xlabel)}</text>")
    parts.append(f'<text x="16" y="{MARGIN_TOP + plot_h / 2:.2f}" {FONT} font-size="12" '
                 f'text-anchor="middle" fill="{TEXT_COLOR}" '
                 f'transform="rotate(-90 16 {MARGIN_TOP + plot_h / 2:.2f})">'
                 f"{escape(figure.ylabel)}</text>")

    # Series.
    if categorical:
        groups = max(len(figure.series), 1)
        slot = plot_w / max(len(figure.x_ticklabels or []), 1)
        bar_w = slot * 0.7 / groups
        for s_index, series in enumerate(figure.series):
            color = PALETTE[s_index % len(PALETTE)]
            for x, y in series.points:
                left = px(x) - (0.35 * slot) + s_index * bar_w
                top = py(y)
                parts.append(
                    f'<rect x="{_fmt(left)}" y="{_fmt(top)}" width="{_fmt(bar_w)}" '
                    f'height="{_fmt(MARGIN_TOP + plot_h - top)}" fill="{color}"/>'
                )
                parts.append(f'<text x="{_fmt(left + bar_w / 2)}" y="{_fmt(top - 6)}" {FONT} '
                             f'font-size="10" text-anchor="middle" fill="{TEXT_COLOR}">'
                             f"{escape(_tick_label(y))}</text>")
    else:
        for s_index, series in enumerate(figure.series):
            color = PALETTE[s_index % len(PALETTE)]
            if len(series.points) > 1:
                path = " ".join(
                    ("M" if index == 0 else "L") + f"{_fmt(px(x))},{_fmt(py(y))}"
                    for index, (x, y) in enumerate(series.points)
                )
                parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                             f'stroke-width="2"/>')
            for x, y in series.points:
                parts.append(_marker(px(x), py(y), s_index, color))

    # Legend (top-right, inside the plot).
    legend_x = MARGIN_LEFT + plot_w - 8
    for s_index, series in enumerate(figure.series):
        color = PALETTE[s_index % len(PALETTE)]
        y = MARGIN_TOP + 10 + s_index * 16
        parts.append(f'<rect x="{_fmt(legend_x - 10)}" y="{_fmt(y - 8)}" width="10" '
                     f'height="10" fill="{color}"/>')
        parts.append(f'<text x="{_fmt(legend_x - 16)}" y="{_fmt(y + 1)}" {FONT} '
                     f'font-size="11" text-anchor="end" fill="{TEXT_COLOR}">'
                     f"{escape(series.label)}</text>")

    # Annotations.
    for annotation in figure.annotations:
        x, y = px(annotation.x), py(annotation.y)
        parts.append(f'<text x="{_fmt(x + 6)}" y="{_fmt(y - 8)}" {FONT} font-size="10" '
                     f'fill="{AXIS_COLOR}">{escape(annotation.text)}</text>')

    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def png_available() -> bool:
    """Whether the optional matplotlib-based PNG renderer can run here."""
    return importlib.util.find_spec("matplotlib") is not None


def render_png(figure: FigureData, path: str) -> None:
    """Rasterize a figure to PNG via matplotlib (optional dependency).

    Raises :class:`ReportError` with installation guidance when matplotlib
    is absent — the SVG output is the canonical, dependency-free artifact.
    """
    if not png_available():
        raise ReportError(
            "PNG rendering needs matplotlib, which is not installed; "
            "the SVG output carries the same figure without extra dependencies"
        )
    import matplotlib  # noqa: PLC0415 - optional, gated above

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt  # noqa: PLC0415

    fig, axes = plt.subplots(figsize=(7.6, 4.4), dpi=100)
    if figure.kind == "bar":
        groups = max(len(figure.series), 1)
        width = 0.7 / groups
        for index, series in enumerate(figure.series):
            xs = [x + (index - (groups - 1) / 2) * width for x, _ in series.points]
            axes.bar(xs, series.ys(), width=width, label=series.label,
                     color=PALETTE[index % len(PALETTE)])
        if figure.x_ticklabels:
            axes.set_xticks(range(len(figure.x_ticklabels)))
            axes.set_xticklabels(figure.x_ticklabels)
    else:
        for index, series in enumerate(figure.series):
            axes.plot(series.xs(), series.ys(), marker="o", label=series.label,
                      color=PALETTE[index % len(PALETTE)])
    axes.set_title(figure.title)
    axes.set_xlabel(figure.xlabel)
    axes.set_ylabel(figure.ylabel)
    axes.legend()
    fig.tight_layout()
    fig.savefig(path)
    plt.close(fig)
