"""Unit tests for standard FD machinery (repro.core.fd)."""

import pytest

from repro.core.fd import (
    FunctionalDependency,
    attribute_closure,
    check_fd,
    implies,
    minimal_cover,
)
from repro.core.instance import Relation
from repro.core.schema import RelationSchema
from repro.exceptions import ConstraintError, SchemaError


@pytest.fixture
def schema():
    return RelationSchema("r", ["A", "B", "C", "D", "E"])


class TestFunctionalDependency:
    def test_construction_normalises_and_validates(self, schema):
        fd = FunctionalDependency(schema, ["B", "A", "A"], ["C"])
        assert fd.lhs == ("A", "B")
        assert fd.rhs == ("C",)
        with pytest.raises(SchemaError):
            FunctionalDependency(schema, ["Z"], ["A"])

    def test_str(self, schema):
        fd = FunctionalDependency(schema, ["A"], ["B"])
        assert str(fd) == "r: [A] -> [B]"
        assert "∅" in str(FunctionalDependency(schema, [], ["B"]))

    def test_holds_on_satisfying_tuples(self, schema):
        fd = FunctionalDependency(schema, ["A"], ["B"])
        relation = Relation(schema, [[1, 10, 0, 0, 0], [1, 10, 1, 1, 1], [2, 20, 0, 0, 0]])
        assert fd.holds_on(relation.tuples())
        assert fd.violating_groups(relation.tuples()) == {}

    def test_violating_groups(self, schema):
        fd = FunctionalDependency(schema, ["A"], ["B"])
        relation = Relation(schema, [[1, 10, 0, 0, 0], [1, 11, 0, 0, 0], [2, 20, 0, 0, 0]])
        groups = fd.violating_groups(relation.tuples())
        assert list(groups) == [(1,)]
        assert len(groups[(1,)]) == 2

    def test_empty_rhs_trivially_holds(self, schema):
        fd = FunctionalDependency(schema, ["A"], [])
        relation = Relation(schema, [[1, 10, 0, 0, 0], [1, 11, 0, 0, 0]])
        assert fd.holds_on(relation.tuples())

    def test_empty_lhs_requires_constant_rhs(self, schema):
        fd = FunctionalDependency(schema, [], ["B"])
        constant_rel = Relation(schema, [[1, 10, 0, 0, 0], [2, 10, 0, 0, 0]])
        varying_rel = Relation(schema, [[1, 10, 0, 0, 0], [2, 11, 0, 0, 0]])
        assert fd.holds_on(constant_rel.tuples())
        assert not fd.holds_on(varying_rel.tuples())


class TestClosureAndImplication:
    def test_textbook_closure(self, schema):
        fds = [
            FunctionalDependency(schema, ["A"], ["B"]),
            FunctionalDependency(schema, ["B"], ["C"]),
            FunctionalDependency(schema, ["C", "D"], ["E"]),
        ]
        assert attribute_closure(["A"], fds) == frozenset({"A", "B", "C"})
        assert attribute_closure(["A", "D"], fds) == frozenset({"A", "B", "C", "D", "E"})

    def test_implies_transitivity(self, schema):
        fds = [
            FunctionalDependency(schema, ["A"], ["B"]),
            FunctionalDependency(schema, ["B"], ["C"]),
        ]
        assert implies(fds, FunctionalDependency(schema, ["A"], ["C"]))
        assert not implies(fds, FunctionalDependency(schema, ["C"], ["A"]))

    def test_implies_reflexivity_and_augmentation(self, schema):
        assert implies([], FunctionalDependency(schema, ["A", "B"], ["A"]))
        fds = [FunctionalDependency(schema, ["A"], ["B"])]
        assert implies(fds, FunctionalDependency(schema, ["A", "C"], ["B", "C"]))


class TestMinimalCover:
    def test_removes_redundant_fd(self, schema):
        fds = [
            FunctionalDependency(schema, ["A"], ["B"]),
            FunctionalDependency(schema, ["B"], ["C"]),
            FunctionalDependency(schema, ["A"], ["C"]),  # implied by the first two
        ]
        cover = minimal_cover(fds)
        assert FunctionalDependency(schema, ["A"], ["C"]) not in cover
        # The cover is equivalent to the original set.
        for fd in fds:
            assert implies(cover, fd)
        for fd in cover:
            assert implies(fds, fd)

    def test_removes_extraneous_lhs_attribute(self, schema):
        fds = [
            FunctionalDependency(schema, ["A"], ["B"]),
            FunctionalDependency(schema, ["A", "B"], ["C"]),
        ]
        cover = minimal_cover(fds)
        assert FunctionalDependency(schema, ["A"], ["C"]) in cover

    def test_splits_rhs(self, schema):
        fds = [FunctionalDependency(schema, ["A"], ["B", "C"])]
        cover = minimal_cover(fds)
        assert all(len(fd.rhs) == 1 for fd in cover)
        assert len(cover) == 2

    def test_empty_input(self):
        assert minimal_cover([]) == []

    def test_mixed_schemas_rejected(self, schema):
        other = RelationSchema("s", ["A", "B"])
        with pytest.raises(ConstraintError):
            minimal_cover(
                [
                    FunctionalDependency(schema, ["A"], ["B"]),
                    FunctionalDependency(other, ["A"], ["B"]),
                ]
            )


class TestCheckFd:
    def test_check_fd_on_relation(self, schema):
        fd = FunctionalDependency(schema, ["A"], ["B"])
        relation = Relation(schema, [[1, 10, 0, 0, 0], [1, 11, 0, 0, 0]])
        groups = check_fd(relation, fd)
        assert (1,) in groups

    def test_check_fd_schema_mismatch(self, schema):
        other = RelationSchema("s", ["A", "B"])
        fd = FunctionalDependency(other, ["A"], ["B"])
        relation = Relation(schema, [[1, 10, 0, 0, 0]])
        with pytest.raises(ConstraintError):
            check_fd(relation, fd)
