"""Static analyses of eCFDs (paper Sections III and IV).

* :mod:`repro.analysis.satisfiability` — exact satisfiability via the
  single-tuple small-model property (Proposition 3.1);
* :mod:`repro.analysis.implication` — exact implication via the two-tuple
  counterexample search (Proposition 3.2), plus redundancy removal;
* :mod:`repro.analysis.tractable` — the infinite-domain rewriting of
  Proposition 3.3;
* :mod:`repro.analysis.reduction` / :mod:`repro.analysis.maxss` — the
  MAXSS → MAXGSAT approximation-factor-preserving reduction of Section IV
  and the resulting approximation algorithm for the maximum satisfiable
  subset.
"""

from repro.analysis.active_domain import active_domains, mentioned_attributes
from repro.analysis.implication import (
    find_counterexample,
    implies,
    irredundant_cover,
    is_redundant,
)
from repro.analysis.maxss import MaxSSResult, max_satisfiable_subset
from repro.analysis.reduction import ReductionResult, reduce_to_maxgsat, variable_name
from repro.analysis.satisfiability import (
    find_witness,
    is_satisfiable,
    is_satisfiable_via_reduction,
    witness_or_raise,
)
from repro.analysis.tractable import domain_restriction_ecfd, rewrite_to_infinite_domains

__all__ = [
    "MaxSSResult",
    "ReductionResult",
    "active_domains",
    "domain_restriction_ecfd",
    "find_counterexample",
    "find_witness",
    "implies",
    "irredundant_cover",
    "is_redundant",
    "is_satisfiable",
    "is_satisfiable_via_reduction",
    "max_satisfiable_subset",
    "mentioned_attributes",
    "reduce_to_maxgsat",
    "rewrite_to_infinite_domains",
    "variable_name",
    "witness_or_raise",
]
