"""Fig. 5(c): BATCHDETECT scalability in the number of pattern tuples |Tp|.

Paper setting: |D| = 100k, noise = 5%, the selected eCFD's tableau swept from
50 to 500 pattern tuples.  Expected shape: running time grows linearly in
|Tp| (the data is scanned a fixed number of times; each tuple is joined
against more encoded pattern rows).
"""

import pytest

from conftest import BENCH_SIZE, batch_engine, dataset_rows, sweep, workload_with_tableau

TABLEAU_SIZES = sweep([50, 100, 200, 300, 400, 500])


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_fig5c_batchdetect_scalability_in_tableau(benchmark, tableau_size):
    rows = dataset_rows(BENCH_SIZE)
    sigma = workload_with_tableau(tableau_size)

    def setup():
        return (batch_engine(rows, sigma),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = result.dirty_count
