"""The RDBMS substrate: one relation's data table over an abstract SQL engine.

The detection algorithms of Section V are *SQL-generation* algorithms: the
paper's point is that a fixed pair of SQL queries (plus a handful of update
statements) detects all violations of an arbitrary set of eCFDs, so the work
can be pushed into any RDBMS.  The authors ran a commercial DBMS; this
reproduction takes the claim literally and runs the same statements on
interchangeable engines — the dependency-free :mod:`sqlite3` row store and
the optional vectorized DuckDB column store — behind the
:class:`~repro.detection.engines.base.SqlEngine` interface.  Everything
engine-specific about the SQL *text* (quoting, type affinity, DDL forms,
the blank marker) lives in the engine's
:class:`~repro.detection.dialect.SqlDialect`; this module only knows the
detection schema.

:class:`ECFDDatabase` owns the engine and the data table:

* the data table is named after the relation schema and has an integer
  primary key ``tid`` (matching the tuple identifiers of
  :class:`~repro.core.instance.Relation`), one text-typed column per
  attribute and the two violation flags ``SV`` / ``MV`` of Section V;
* helpers load in-memory relations or plain dictionaries (validating every
  value against the dialect's blank marker and key separator on the way
  in), read violation flags back as a
  :class:`~repro.core.violations.ViolationSet`, and expose a tiny
  ``execute`` / ``query`` API used by the encoder and the detectors.

All attribute values are stored as text.  The paper's data (cities, area
codes, zip codes, item titles) is string-typed; storing a single type keeps
value comparisons between the data table and the pattern tables exact.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.core.instance import Relation, RelationTuple
from repro.core.schema import RelationSchema, Value
from repro.core.violations import ViolationSet
from repro.detection.dialect import SQLiteDialect, SqlDialect
from repro.detection.engines import SqlEngine, create_engine
from repro.exceptions import DatabaseError

__all__ = ["ECFDDatabase", "quote_identifier", "BLANK"]

#: The blank marker of the Q_mv GROUP BY trick (Section V-A).  Owned by the
#: dialects since the cross-engine split; re-exported here because the
#: marker is dialect-invariant (group keys must be comparable across
#: engines) and half the detection stack refers to it by this name.
BLANK = SqlDialect.blank

_DEFAULT_DIALECT = SQLiteDialect()


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier for the default (SQLite) dialect.

    Compatibility shim: quoting is dialect-owned now — engine-aware code
    should call ``database.dialect.quote_identifier`` instead.
    """
    return _DEFAULT_DIALECT.quote_identifier(name)


class ECFDDatabase:
    """An engine-backed store for one relation plus the eCFD encoding tables.

    Parameters
    ----------
    schema:
        The relation schema of the data table.
    path:
        Database storage path; the default ``":memory:"`` keeps everything
        in-process, which is what the tests and benchmarks use.
    engine:
        Either a registry name (``"sqlite"``, ``"duckdb"``) or an already
        constructed :class:`~repro.detection.engines.base.SqlEngine`.
    """

    def __init__(
        self,
        schema: RelationSchema,
        path: str = ":memory:",
        engine: str | SqlEngine = "sqlite",
    ):
        self.schema = schema
        if isinstance(engine, SqlEngine):
            self.engine = engine
        else:
            self.engine = create_engine(engine, path)
        self._create_data_table()

    @property
    def dialect(self) -> SqlDialect:
        """The SQL dialect of the underlying engine."""
        return self.engine.dialect

    @property
    def engine_name(self) -> str:
        """Registry name of the underlying engine."""
        return self.engine.name

    def _quote(self, name: str) -> str:
        return self.dialect.quote_identifier(name)

    # ------------------------------------------------------------------
    # Schema / DDL
    # ------------------------------------------------------------------
    @property
    def table_name(self) -> str:
        """Name of the data table (the relation name of the schema)."""
        return self.schema.name

    def _create_data_table(self) -> None:
        text = self.dialect.text_type
        integer = self.dialect.integer_type
        columns = ", ".join(
            f"{self._quote(a)} {text}" for a in self.schema.attribute_names
        )
        self.engine.execute(
            f"CREATE TABLE IF NOT EXISTS {self._quote(self.table_name)} ("
            f"tid {integer} PRIMARY KEY, {columns}, "
            f"SV {integer} NOT NULL DEFAULT 0, "
            f"MV {integer} NOT NULL DEFAULT 0)"
        )
        self.engine.commit()

    # ------------------------------------------------------------------
    # Loading data
    # ------------------------------------------------------------------
    def load_relation(self, relation: Relation) -> int:
        """Load an in-memory relation, preserving its tuple identifiers.

        Every value is validated against the dialect's blank marker and key
        separator (see :meth:`SqlDialect.validate_text_value`) — a colliding
        value would corrupt the Q_mv group identities silently, so loading
        fails loudly instead.  Returns the number of rows inserted.
        """
        if relation.schema != self.schema:
            raise DatabaseError(
                f"relation over {relation.schema.name!r} cannot be loaded into a database "
                f"for {self.schema.name!r}"
            )
        stringify = self.dialect.stringify
        rows = [
            (t.tid, *[stringify(t[a]) for a in self.schema.attribute_names])
            for t in relation.tuples()
        ]
        return self._insert_rows(rows)

    def insert_tuples(
        self, rows: Iterable[Mapping[str, Value] | RelationTuple], tids: Sequence[int] | None = None
    ) -> list[int]:
        """Insert rows (dictionaries or tuples) and return their assigned tids.

        When ``tids`` is given it must align with ``rows``; otherwise fresh
        identifiers continuing from the current maximum are assigned.
        """
        materialised = list(rows)
        if tids is None:
            start = self.max_tid() + 1
            assigned = list(range(start, start + len(materialised)))
        else:
            assigned = list(tids)
            if len(assigned) != len(materialised):
                raise DatabaseError("tids and rows must have the same length")
        stringify = self.dialect.stringify
        packed = []
        for tid, row in zip(assigned, materialised):
            packed.append(
                (tid, *[stringify(row[a]) for a in self.schema.attribute_names])
            )
        self._insert_rows(packed)
        return assigned

    def _insert_rows(self, rows: list[tuple]) -> int:
        columns = ["tid", *self.schema.attribute_names]
        inserted = self.engine.bulk_insert(self.table_name, columns, rows)
        self.engine.commit()
        return inserted

    def update_cells(self, cells: Iterable[tuple[int, str, Value]]) -> int:
        """Overwrite single cells in place; returns the number of updates run.

        ``cells`` yields ``(tid, attribute, value)`` triples, applied in
        order with values validated and stored as text like every other
        ingestion path.  Tuple identifiers (and the SV/MV flag columns) are
        untouched — this is the storage primitive of in-place repair.
        Updating a tid that does not exist raises (matching
        :meth:`repro.core.instance.Relation.replace_cell`) — a silently
        dropped fix would break the cross-backend equivalence discipline.
        """
        count = 0
        for tid, attribute, value in cells:
            if attribute not in self.schema:
                raise DatabaseError(
                    f"cannot update unknown attribute {attribute!r} of "
                    f"{self.schema.name!r}"
                )
            affected = self.engine.update_rowcount(
                f"UPDATE {self._quote(self.table_name)} "
                f"SET {self._quote(attribute)} = {self.dialect.placeholder} "
                f"WHERE tid = {self.dialect.placeholder}",
                (self.dialect.stringify(value), tid),
            )
            if affected == 0:
                self.engine.rollback()
                raise DatabaseError(
                    f"table {self.table_name!r} has no tuple with tid={tid}"
                )
            count += 1
        self.engine.commit()
        return count

    def delete_tuples(self, tids: Iterable[int]) -> int:
        """Delete the rows with the given identifiers; returns the count removed."""
        tid_list = list(tids)
        self.engine.executemany(
            f"DELETE FROM {self._quote(self.table_name)} "
            f"WHERE tid = {self.dialect.placeholder}",
            [(tid,) for tid in tid_list],
        )
        self.engine.commit()
        return len(tid_list)

    # ------------------------------------------------------------------
    # Generic SQL access (used by the encoder and detectors)
    # ------------------------------------------------------------------
    def execute(self, sql: str, parameters: Sequence = ()) -> Any:
        """Execute one SQL statement; the return value is engine-native."""
        return self.engine.execute(sql, parameters)

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        """Execute one SQL statement for many parameter rows."""
        self.engine.executemany(sql, rows)

    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Execute a query and fetch all rows."""
        return self.engine.query(sql, parameters)

    def commit(self) -> None:
        """Commit the current transaction."""
        self.engine.commit()

    def close(self) -> None:
        """Close the underlying engine connection."""
        self.engine.close()

    def __enter__(self) -> "ECFDDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Data-table convenience queries
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of rows in the data table."""
        [(count,)] = self.query(f"SELECT COUNT(*) FROM {self._quote(self.table_name)}")
        return count

    def max_tid(self) -> int:
        """Largest tuple identifier in use (0 when the table is empty)."""
        [(value,)] = self.query(
            f"SELECT COALESCE(MAX(tid), 0) FROM {self._quote(self.table_name)}"
        )
        return value

    def all_tids(self) -> list[int]:
        """All tuple identifiers, ascending."""
        return [tid for (tid,) in self.query(
            f"SELECT tid FROM {self._quote(self.table_name)} ORDER BY tid"
        )]

    def fetch_row(self, tid: int) -> dict[str, str] | None:
        """The attribute values of one row as a dict, or ``None``."""
        columns = ", ".join(self._quote(a) for a in self.schema.attribute_names)
        rows = self.query(
            f"SELECT {columns} FROM {self._quote(self.table_name)} "
            f"WHERE tid = {self.dialect.placeholder}",
            (tid,),
        )
        if not rows:
            return None
        return dict(zip(self.schema.attribute_names, rows[0]))

    def to_relation(self) -> Relation:
        """Materialise the data table back into an in-memory relation.

        Tuple identifiers are preserved, so violation sets computed in SQL
        and in memory are directly comparable.
        """
        relation = Relation(self.schema)
        columns = ", ".join(self._quote(a) for a in self.schema.attribute_names)
        rows = self.query(
            f"SELECT tid, {columns} FROM {self._quote(self.table_name)} ORDER BY tid"
        )
        for tid, *values in rows:
            relation.insert_with_tid(tid, list(values))
        return relation

    def clear(self) -> int:
        """Remove every row from the data table; returns the count removed.

        The encoding and auxiliary tables are left alone — they are
        recomputed by the next detection run.
        """
        removed = self.count()
        self.execute(f"DELETE FROM {self._quote(self.table_name)}")
        self.commit()
        return removed

    # ------------------------------------------------------------------
    # Violation flags
    # ------------------------------------------------------------------
    def reset_flags(self) -> None:
        """Set SV = MV = 0 on every row."""
        self.execute(f"UPDATE {self._quote(self.table_name)} SET SV = 0, MV = 0")
        self.commit()

    def violations(self) -> ViolationSet:
        """Read the SV / MV flags back as a :class:`ViolationSet`."""
        sv = [tid for (tid,) in self.query(
            f"SELECT tid FROM {self._quote(self.table_name)} WHERE SV = 1"
        )]
        mv = [tid for (tid,) in self.query(
            f"SELECT tid FROM {self._quote(self.table_name)} WHERE MV = 1"
        )]
        return ViolationSet.from_flags(sv_tids=sv, mv_tids=mv)

    def flag_counts(self) -> dict[str, int]:
        """Counts of SV / MV / dirty rows straight from SQL (Fig. 7(b) series)."""
        [(sv,)] = self.query(
            f"SELECT COUNT(*) FROM {self._quote(self.table_name)} WHERE SV = 1"
        )
        [(mv,)] = self.query(
            f"SELECT COUNT(*) FROM {self._quote(self.table_name)} WHERE MV = 1"
        )
        [(dirty,)] = self.query(
            f"SELECT COUNT(*) FROM {self._quote(self.table_name)} WHERE SV = 1 OR MV = 1"
        )
        return {"sv": sv, "mv": mv, "dirty": dirty}
