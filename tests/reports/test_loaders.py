"""Loader tolerance: graceful on degraded inputs, loud on broken ones."""

import json

import pytest

from repro.reports import ReportDataError, load_bench_dirs, load_bench_file

from synthetic_artifacts import (
    SHA_NEW,
    SHA_OLD,
    bench_entry,
    make_payload,
    write_artifact,
)


def test_runs_ordered_oldest_first(bench_dir):
    runs = load_bench_dirs([bench_dir])
    assert [run.sha for run in runs] == [SHA_OLD, SHA_NEW]
    assert runs[0].short_sha == "a" * 7


def test_payload_sha_beats_filename(tmp_path):
    # A renamed artifact must not lie about its commit.
    path = tmp_path / f"BENCH_{'c' * 40}.json"
    payload = make_payload(SHA_OLD, "2026-01-01T00:00:00+00:00",
                           [bench_entry("test_x", 0.01)])
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert load_bench_file(path).sha == SHA_OLD


def test_filename_sha_used_when_payload_has_none(tmp_path):
    path = tmp_path / f"BENCH_{'c' * 40}.json"
    path.write_text(json.dumps({"benchmarks": [bench_entry("test_x", 0.01)]}),
                    encoding="utf-8")
    assert load_bench_file(path).sha == "c" * 40


def test_duplicate_sha_last_directory_wins(bench_dir, tmp_path):
    fresh = tmp_path / "fresh"
    write_artifact(fresh, SHA_NEW, "2026-02-01T00:00:00+00:00",
                   [bench_entry("test_only_here", 0.5)])
    runs = load_bench_dirs([bench_dir, fresh])
    assert len(runs) == 2
    newest = runs[-1]
    assert newest.sha == SHA_NEW
    assert newest.entry("test_only_here") is not None


def test_parametrized_numeric_aware_order(bench_dir):
    run = load_bench_dirs([bench_dir])[-1]
    entries = run.parametrized("test_fig8_sharded_batch_detect_scaling")
    assert [entry.param for entry in entries] == ["1", "2", "4"]


def test_unknown_benchmark_names_are_tolerated_never_selected(bench_dir):
    run = load_bench_dirs([bench_dir])[-1]
    assert run.entry("test_some_future_benchmark[1]") is not None
    assert run.parametrized("test_never_ran") == []
    assert run.rows("test_never_ran") == []


def test_missing_extra_info_keys_degrade_to_defaults(bench_dir):
    run = load_bench_dirs([bench_dir])[-1]
    entry = run.entry("test_some_future_benchmark[1]")
    assert entry.number("replication_factor") is None
    assert entry.number("replication_factor", 1.5) == 1.5
    # parameter() falls back to the parametrization when the preferred
    # extra_info fields are absent.
    assert entry.parameter(("workers",)) == 1.0


def test_rows_are_normalized(bench_dir):
    run = load_bench_dirs([bench_dir])[-1]
    rows = run.rows("test_fig8_sharded_batch_detect_scaling",
                    label="detect", prefer=("workers",))
    assert [row["parameter"] for row in rows] == [1.0, 2.0, 4.0]
    assert all(row["series"] == "detect" for row in rows)
    assert all(row["seconds"] > 0 for row in rows)
    assert rows[0]["replication_factor"] == 1.0  # extra_info rides along


def test_empty_bench_dir_is_an_actionable_error(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    with pytest.raises(ReportDataError) as excinfo:
        load_bench_dirs([empty])
    message = str(excinfo.value)
    assert str(empty) in message
    assert "pytest benchmarks" in message          # says how to produce one
    assert "benchmarks/artifacts" in message       # and where history lives


def test_structurally_broken_artifact_names_the_file(tmp_path):
    path = tmp_path / f"BENCH_{'d' * 40}.json"
    path.write_text(json.dumps({"benchmarks": [{"stats": {}}]}), encoding="utf-8")
    with pytest.raises(ReportDataError) as excinfo:
        load_bench_file(path)
    assert path.name in str(excinfo.value)


def test_unparsable_json_names_the_file(tmp_path):
    path = tmp_path / f"BENCH_{'e' * 40}.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ReportDataError) as excinfo:
        load_bench_file(path)
    assert path.name in str(excinfo.value)
