"""Property-based tests: the three detectors agree on randomized datasets.

The central correctness property of the reproduction is that the SQL-based
BATCHDETECT, the SQL-based INCDETECT (after arbitrary update sequences) and
the pure-Python reference semantics always compute the same violation set.
Hypothesis drives randomized datasets, noise rates and update batches
through all three.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Relation, cust_ext_schema
from repro.datagen import DatasetGenerator, UpdateGenerator, paper_workload
from repro.detection import BatchDetector, ECFDDatabase, IncrementalDetector, NaiveDetector

SIGMA = paper_workload()
SCHEMA = cust_ext_schema()

dataset_params = st.tuples(
    st.integers(min_value=5, max_value=80),       # dataset size
    st.floats(min_value=0.0, max_value=20.0),     # noise percent
    st.integers(min_value=0, max_value=2**16),    # generator seed
)


def _rows(size, noise, seed):
    return DatasetGenerator(seed=seed).generate_rows(size, noise)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dataset_params)
def test_batch_sql_matches_naive_oracle(params):
    size, noise, seed = params
    rows = _rows(size, noise, seed)
    with ECFDDatabase(SCHEMA) as db:
        db.insert_tuples(rows)
        sql_result = BatchDetector(db, SIGMA).detect()
        naive_result = NaiveDetector(SIGMA).detect_database(db)
    assert sql_result == naive_result


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    dataset_params,
    st.integers(min_value=0, max_value=15),   # insert count
    st.integers(min_value=0, max_value=15),   # delete count
    st.integers(min_value=0, max_value=2**16) # update seed
)
def test_incremental_matches_batch_after_update(params, inserts, deletes, update_seed):
    size, noise, seed = params
    rows = _rows(size, noise, seed)
    deletes = min(deletes, size)

    with ECFDDatabase(SCHEMA) as db:
        db.insert_tuples(rows)
        detector = IncrementalDetector(db, SIGMA)
        detector.initialize()
        batch = UpdateGenerator(DatasetGenerator(seed=update_seed), seed=update_seed).make_batch(
            existing_tids=range(1, size + 1),
            insert_count=inserts,
            delete_count=deletes,
            noise_percent=noise,
        )
        if batch.delete_tids:
            detector.delete_tuples(batch.delete_tids)
        if batch.insert_rows:
            detector.insert_tuples(list(batch.insert_rows))
        incremental_result = detector.violations()
        final_relation = db.to_relation()

    with ECFDDatabase(SCHEMA) as reference_db:
        reference_db.load_relation(final_relation)
        batch_result = BatchDetector(reference_db, SIGMA).detect()
        naive_result = NaiveDetector(SIGMA).detect_database(reference_db)

    assert incremental_result == batch_result == naive_result
