"""Coordinator side of the remote shard fabric: worker pools and lanes.

:class:`RemoteWorkerPool` gives :class:`~repro.parallel.ShardedBackend`'s
``executor="remote"`` the same contract its in-host lanes have — submit a
``(lane, task)`` pair, get back a result thunk — but over the network:

* every **lane** (shard index) owns one :class:`~repro.parallel.transport.RpcConnection`
  to the worker it is *pinned* to (``addresses[lane % len(addresses)]``
  initially).  The worker pins the lane id to a single executor thread, so
  a lane's remote calls run strictly in submission order and its INCDETECT
  shard state stays on one thread for the worker's lifetime — pinning, not
  load balancing, is what lets shard state survive across calls;
* the pool runs a private asyncio event loop on a daemon thread; a per-lane
  ``asyncio.Lock`` serialises each lane's calls (FIFO), so the pipelining
  discipline of ``incremental_update_many`` — submit several waves, collect
  once — holds across the wire exactly as it does in-process;
* failures are classified at the collect point: a transport-level failure
  (worker death, severed connection, timeout) surfaces as
  :class:`~repro.exceptions.LaneFailedError` naming the lane, which the
  coordinator catches to re-pin the lane and re-bootstrap its shard; a
  :class:`~repro.exceptions.RemoteCallError` means the worker is healthy
  and the *operation* raised, so it propagates;
* operations *declared idempotent* in the :func:`~repro.parallel.transport.rpc_op`
  registry (bootstrap, summaries, statistics, drops) may be submitted
  ``retryable=True``: transport failures then reconnect to the lane's
  pinned address and retry under the pool's
  :class:`~repro.parallel.transport.RetryPolicy` before the lane is
  declared lost.  ``submit`` *refuses* ``retryable=True`` for any op not
  registered idempotent — ``update`` is declared non-idempotent (a reply
  lost after execution would double-apply the delta), so its failure path
  is lane loss and re-bootstrap, which is exact because coordinator
  storage receives every delta before the lanes do.

:func:`spawn_local_workers` forks ``python -m repro.parallel.worker``
subprocesses on localhost (ephemeral ports, parsed off the worker's
``READY`` line) — the harness used by the engine's auto-spawn path, the
fabric tests and the doctested example in ``ARCHITECTURE.md``.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
from collections.abc import Callable, Iterable, Mapping, Sequence
from itertools import count as _counter
from typing import Any

from repro.exceptions import FabricError, LaneFailedError, RemoteCallError
from repro.parallel.transport import (
    FrameError,
    RetryPolicy,
    RpcConnection,
    TransportClosed,
    is_idempotent,
)

__all__ = [
    "Address",
    "LocalWorkerHandle",
    "RemoteWorkerPool",
    "parse_address",
    "spawn_local_workers",
]

#: A worker endpoint, always normalised to ``(host, port)``.
Address = tuple[str, int]

#: Distinguishes coexisting pools' lane ids on a shared worker.
_POOL_IDS = _counter(1)

#: Failure classes that mean "the lane's transport is gone", as opposed to a
#: healthy worker whose operation raised.
_TRANSPORT_FAILURES = (
    TransportClosed,
    FrameError,
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
    TimeoutError,
)


def parse_address(address: "str | Address") -> Address:
    """Normalise ``"host:port"`` / ``(host, port)`` to an ``(host, port)`` pair."""
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise FabricError(
                f"worker address {address!r} is not of the form 'host:port'"
            )
        try:
            return host, int(port)
        except ValueError as exc:
            raise FabricError(f"worker address {address!r} has a non-numeric port") from exc
    host, port = address
    return str(host), int(port)


class LocalWorkerHandle:
    """One spawned localhost worker subprocess, addressable and killable.

    ``kill()`` is deliberately SIGKILL — the chaos tests need a worker that
    dies *without* any goodbye, exactly like a crashed host; ``stop()`` is
    the polite teardown for fixtures and ``close()`` paths.
    """

    def __init__(self, process: subprocess.Popen, address: Address):
        self.process = process
        self.address = address

    @classmethod
    def spawn(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_timeout: float = 30.0,
        stderr: int | None = subprocess.DEVNULL,
    ) -> "LocalWorkerHandle":
        """Fork one worker and wait for its ``READY host port`` line."""
        # The worker must import repro regardless of how the parent found
        # it, so the package root rides along on PYTHONPATH.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.parallel.worker", "--host", host, "--port", str(port)],
            stdout=subprocess.PIPE,
            stderr=stderr,
            env=env,
            text=True,
        )
        # readline() has no timeout, so a watchdog thread does the waiting:
        # either the READY line arrives, or the worker died and readline
        # returned "" at EOF, or nothing happens within the deadline.
        box: dict[str, str] = {}

        def _read_ready() -> None:
            assert process.stdout is not None
            box["line"] = process.stdout.readline()

        reader = threading.Thread(target=_read_ready, daemon=True)
        reader.start()
        reader.join(ready_timeout)
        line = box.get("line", "")
        parts = line.split()
        if reader.is_alive() or len(parts) != 3 or parts[0] != "READY":
            process.kill()
            process.wait()
            raise FabricError(
                f"worker subprocess did not become ready (got {line!r}, "
                f"exit code {process.poll()})"
            )
        return cls(process, (parts[1], int(parts[2])))

    def is_alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the worker — no cleanup, no goodbye (chaos tests)."""
        self.process.kill()
        self.process.wait()

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate the worker, escalating to SIGKILL if it lingers."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_local_workers(
    count: int,
    host: str = "127.0.0.1",
    stderr: int | None = subprocess.DEVNULL,
) -> list[LocalWorkerHandle]:
    """Spawn ``count`` localhost workers on ephemeral ports, all ready."""
    handles: list[LocalWorkerHandle] = []
    try:
        for _ in range(count):
            handles.append(LocalWorkerHandle.spawn(host, stderr=stderr))
    except Exception:  # noqa: BLE001 - stop the partial fleet, then re-raise unchanged
        for handle in handles:
            handle.stop()
        raise
    return handles


class RemoteWorkerPool:
    """Pinned remote shard lanes over a fixed set of worker addresses.

    Parameters
    ----------
    addresses:
        The worker endpoints (``"host:port"`` strings or ``(host, port)``
        pairs).  Lane *i* is initially pinned to
        ``addresses[i % len(addresses)]`` and stays there until
        :meth:`repin_lanes` moves it after a failure.
    rpc_timeout:
        Per-call reply deadline; an overdue call poisons its connection
        (the stream can no longer be trusted) and loses the lane.
    retry:
        Backoff schedule for connection establishment and for calls
        submitted ``retryable=True``.
    lane_prefix:
        Namespace for lane ids on the workers; defaults to a per-process
        unique value so pools sharing a worker never share lane threads.
    """

    def __init__(
        self,
        addresses: Iterable["str | Address"],
        rpc_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        lane_prefix: str | None = None,
    ):
        self.addresses: list[Address] = [parse_address(a) for a in addresses]
        if not self.addresses:
            raise FabricError("a remote worker pool needs at least one worker address")
        self.rpc_timeout = rpc_timeout
        self.retry = retry or RetryPolicy()
        self._lane_prefix = lane_prefix or f"pool-{os.getpid()}-{next(_POOL_IDS)}"
        self._lane_addresses: dict[int, Address] = {}
        self._connections: dict[int, RpcConnection] = {}
        self._lane_locks: dict[int, asyncio.Lock] = {}
        self._closed = False
        #: Transport counters folded into traces/stats by the coordinator.
        self._stats = {
            "rpc_calls": 0,
            "rpc_retries": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "lanes_lost": 0,
            "repins": 0,
        }
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=self._lane_prefix, daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Submission (the lane-pool contract of ``_submit_to_lanes``)
    # ------------------------------------------------------------------
    def lane_id(self, lane: int) -> str:
        """The stable on-worker identity of lane ``lane``."""
        return f"{self._lane_prefix}:{lane}"

    def lane_address(self, lane: int) -> Address:
        """The worker endpoint lane ``lane`` is currently pinned to."""
        return self._lane_addresses.get(
            lane, self.addresses[lane % len(self.addresses)]
        )

    def submit(
        self, lane: int, op: str, payload: Any, retryable: bool = False
    ) -> Callable[[], Any]:
        """Dispatch one call to a lane; returns a blocking result thunk.

        Calls submitted to the same lane execute in submission order (the
        pipelining contract).  The thunk re-raises worker-side operation
        failures as :class:`~repro.exceptions.RemoteCallError` and collapses
        every transport-level failure into
        :class:`~repro.exceptions.LaneFailedError` naming the lane.

        ``retryable=True`` is accepted only for ops *declared idempotent*
        in the :func:`~repro.parallel.transport.rpc_op` registry — blind
        retries of anything else could double-apply an effect, so the pool
        fails fast instead of trusting the caller's claim.
        """
        if self._closed:
            raise FabricError("the remote worker pool is closed")
        if retryable and not is_idempotent(op):
            raise FabricError(
                f"op {op!r} is not registered idempotent; refusing retryable "
                "submission (declare it with @rpc_op(idempotent=True) if a "
                "blind retry is genuinely safe)"
            )
        future = asyncio.run_coroutine_threadsafe(
            self._invoke(lane, op, payload, retryable), self._loop
        )

        def collect() -> Any:
            try:
                return future.result()
            except RemoteCallError:
                raise
            except _TRANSPORT_FAILURES as exc:
                self._stats["lanes_lost"] += 1
                raise LaneFailedError(
                    f"remote lane {lane} failed during {op!r}: {exc}",
                    lane=lane,
                    address=self.lane_address(lane),
                ) from exc

        return collect

    def call(self, lane: int, op: str, payload: Any, retryable: bool = False) -> Any:
        """Blocking single call — :meth:`submit` immediately collected."""
        return self.submit(lane, op, payload, retryable)()

    # ------------------------------------------------------------------
    # Event-loop side (everything below ``_invoke`` runs on the loop thread)
    # ------------------------------------------------------------------
    async def _invoke(self, lane: int, op: str, payload: Any, retryable: bool) -> Any:
        lock = self._lane_locks.setdefault(lane, asyncio.Lock())
        async with lock:  # per-lane FIFO: wave N completes before wave N+1
            if not retryable:
                connection = await self._ensure_connection(lane)
                return await self._call_on(connection, lane, op, payload)

            attempts = 0

            async def attempt() -> Any:
                nonlocal attempts
                attempts += 1
                connection = await self._ensure_connection(lane)
                return await self._call_on(connection, lane, op, payload)

            try:
                return await self.retry.run(attempt)
            finally:
                self._stats["rpc_retries"] += max(0, attempts - 1)

    async def _call_on(
        self, connection: RpcConnection, lane: int, op: str, payload: Any
    ) -> Any:
        self._stats["rpc_calls"] += 1
        before_sent, before_received = connection.bytes_sent, connection.bytes_received
        try:
            return await connection.call(self.lane_id(lane), op, payload, self.rpc_timeout)
        finally:
            self._stats["bytes_sent"] += connection.bytes_sent - before_sent
            self._stats["bytes_received"] += connection.bytes_received - before_received

    async def _ensure_connection(self, lane: int) -> RpcConnection:
        connection = self._connections.get(lane)
        if connection is not None and connection.healthy:
            return connection
        if connection is not None:
            await connection.close()
        host, port = self.lane_address(lane)
        connection = await RpcConnection.open(host, port, retry=self.retry)
        self._lane_addresses[lane] = (host, port)
        self._connections[lane] = connection
        return connection

    async def _probe(self, address: Address) -> bool:
        """Whether a fresh connection to ``address`` answers a ping (no retry)."""
        host, port = address
        try:
            connection = await RpcConnection.open(
                host, port, retry=RetryPolicy(attempts=1), connect_timeout=2.0
            )
        except _TRANSPORT_FAILURES + (FabricError,):
            return False
        try:
            reply = await connection.call(
                f"{self._lane_prefix}:probe", "ping", None, 5.0
            )
            return bool(reply.get("pong"))
        except _TRANSPORT_FAILURES + (RemoteCallError,):
            return False
        finally:
            await connection.close()

    async def _probe_all(self) -> dict[Address, bool]:
        distinct = list(dict.fromkeys(self.addresses))
        results = await asyncio.gather(*(self._probe(a) for a in distinct))
        return dict(zip(distinct, results))

    async def _repin(self, lanes: Sequence[int]) -> dict[int, Address]:
        health = await self._probe_all()
        healthy = [address for address in self.addresses if health.get(address)]
        if not healthy:
            raise FabricError(
                f"no healthy worker remains among {self.addresses}; "
                "cannot re-pin lost lanes"
            )
        moved: dict[int, Address] = {}
        for lane in lanes:
            connection = self._connections.pop(lane, None)
            if connection is not None:
                await connection.close()
            self._lane_addresses[lane] = healthy[lane % len(healthy)]
            moved[lane] = self._lane_addresses[lane]
            self._stats["repins"] += 1
        return moved

    async def _close_all(self) -> None:
        for connection in self._connections.values():
            await connection.close()
        self._connections.clear()

    # ------------------------------------------------------------------
    # Health / recovery (blocking wrappers used by the coordinator)
    # ------------------------------------------------------------------
    def probe_addresses(self) -> dict[Address, bool]:
        """Ping every distinct worker address; ``True`` means it answered."""
        return asyncio.run_coroutine_threadsafe(self._probe_all(), self._loop).result()

    def repin_lanes(self, lanes: Sequence[int]) -> dict[int, Address]:
        """Move ``lanes`` onto healthy workers; raises when none remains.

        Deterministic placement (``healthy[lane % len(healthy)]``) so
        recovery is reproducible under the chaos tests.  Returns the new
        pinning of every moved lane.
        """
        return asyncio.run_coroutine_threadsafe(self._repin(lanes), self._loop).result()

    def lanes_by_address(self, lanes: Iterable[int]) -> dict[Address, list[int]]:
        """Group lanes by the worker endpoint they are currently pinned to.

        The reduce stage's fan-in map: one ``reduce_summaries`` call per
        worker merges every held summary of that worker's lanes.
        """
        grouped: dict[Address, list[int]] = {}
        for lane in lanes:
            grouped.setdefault(self.lane_address(lane), []).append(lane)
        return {address: sorted(group) for address, group in grouped.items()}

    def transport_stats(self) -> dict[str, int]:
        """A snapshot of the pool's transport counters."""
        return dict(self._stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown_workers(self) -> None:
        """Best-effort ``shutdown`` request to every distinct worker address.

        Used by owners of spawned worker fleets; external workers are left
        running (closing a pool must not kill infrastructure it was given).
        """
        for address in dict.fromkeys(self.addresses):
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown_one(address), self._loop
                ).result(timeout=5.0)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass

    async def _shutdown_one(self, address: Address) -> None:
        host, port = address
        connection = await RpcConnection.open(
            host, port, retry=RetryPolicy(attempts=1), connect_timeout=2.0
        )
        try:
            await connection.call(f"{self._lane_prefix}:probe", "shutdown", None, 5.0)
        finally:
            await connection.close()

    def close(self) -> None:
        """Close every connection and stop the pool's event loop."""
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(self._close_all(), self._loop).result(
                timeout=10.0
            )
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "RemoteWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def resolve_worker_addresses(
    remote_workers: "int | str | Iterable[str | Address] | None",
    default_spawn: int,
    environ: Mapping[str, str] | None = None,
) -> tuple[list[Address], int]:
    """Resolve a backend's ``remote_workers`` setting.

    Returns ``(addresses, spawn_count)`` — exactly one of the two is
    non-empty/non-zero.  An explicit address list (or the
    ``REPRO_REMOTE_WORKERS`` environment variable, comma-separated) means
    "use these external workers"; an integer means "spawn that many local
    workers"; ``None`` falls back to the environment, then to spawning
    ``default_spawn`` locals the caller owns.
    """
    env = environ if environ is not None else os.environ
    if remote_workers is None:
        configured = env.get("REPRO_REMOTE_WORKERS", "").strip()
        if configured:
            return [
                parse_address(part.strip())
                for part in configured.split(",")
                if part.strip()
            ], 0
        return [], max(1, default_spawn)
    if isinstance(remote_workers, int):
        if remote_workers < 1:
            raise FabricError(f"remote_workers must be >= 1, got {remote_workers}")
        return [], remote_workers
    if isinstance(remote_workers, str):
        return [parse_address(remote_workers)], 0
    addresses = [parse_address(a) for a in remote_workers]
    if not addresses:
        raise FabricError("remote_workers is an empty address list")
    return addresses, 0
