"""Ablation: MAXSS approximation quality and cost across MAXGSAT solvers.

Section IV reduces MAXSS to MAXGSAT so that any approximation algorithm for
the latter carries over.  This ablation compares the greedy, WalkSAT and
portfolio solvers against the exact optimum on a fixed family of small,
partially conflicting constraint sets: the timing rows show the solver cost,
and ``extra_info`` records the recovered cardinality vs. the optimum.
"""

import pytest

from repro.analysis.maxss import max_satisfiable_subset
from repro.core.ecfd import ECFD
from repro.core.schema import cust_schema
from repro.sat import SOLVERS


def conflicting_sigma(size: int = 8):
    """A deterministic, partially conflicting constraint set of the given size."""
    schema = cust_schema()
    cities = ["NYC", "LI", "Albany", "Troy"]
    constraints = []
    for index in range(size):
        city = cities[index % len(cities)]
        if index % 3 == 2:
            # Conflicts with the index % 3 == 0 constraint for the same city.
            constraints.append(
                ECFD(schema, ["CT"], [], ["AC"],
                     tableau=[({"CT": {city}}, {"AC": {"999"}})],
                     name=f"conflict_{index}")
            )
        else:
            constraints.append(
                ECFD(schema, ["CT"], [], ["AC"],
                     tableau=[({"CT": {city}}, {"AC": {"212", "518"}})],
                     name=f"bind_{index}")
            )
    return constraints


@pytest.mark.parametrize("solver_name", ["greedy", "walksat", "best", "exact"])
def test_ablation_maxss_solver(benchmark, solver_name):
    sigma = conflicting_sigma(8)
    solver = SOLVERS[solver_name]
    exact_optimum = max_satisfiable_subset(sigma, solver=SOLVERS["exact"]).cardinality

    result = benchmark.pedantic(
        lambda: max_satisfiable_subset(sigma, solver=solver), rounds=1, iterations=1
    )
    benchmark.extra_info["sigma_size"] = len(sigma)
    benchmark.extra_info["exact_optimum"] = exact_optimum
    benchmark.extra_info["approx_cardinality"] = result.cardinality
    benchmark.extra_info["ratio"] = round(result.cardinality / max(exact_optimum, 1), 3)
