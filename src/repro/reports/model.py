"""Data model of the reporting layer: figures as renderer-independent data.

A figure generator never draws anything — it turns loaded artifact rows
into a :class:`FigureData` (series of points, labels, annotations), and the
renderers in :mod:`repro.reports.render` / :mod:`repro.reports.markdown`
turn that into SVG / Markdown deterministically.  Keeping the two apart is
what makes the docs staleness check possible: regenerating a figure from
the same committed artifact is byte-identical, every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReproError

__all__ = [
    "ReportError",
    "ReportDataError",
    "UnknownFigureError",
    "Series",
    "Annotation",
    "FigureData",
]


class ReportError(ReproError):
    """Base class for reporting failures with a user-actionable message."""


class ReportDataError(ReportError):
    """The input artifacts cannot support the requested report."""


class UnknownFigureError(ReportError):
    """A figure name that is not in the registry."""


@dataclass
class Series:
    """One plotted line/bar group: a label and its (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        return [y for _, y in self.points]


@dataclass
class Annotation:
    """A short text note pinned to a data coordinate."""

    x: float
    y: float
    text: str


@dataclass
class FigureData:
    """A renderer-independent figure: what to draw, not how.

    ``kind`` is ``"line"`` (numeric x axis) or ``"bar"`` (categorical x
    axis; ``x_ticklabels`` names the categories and every series point's x
    is the category index).  ``caption`` is emitted under the figure in
    Markdown output and as the SVG ``<desc>``.
    """

    name: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    annotations: list[Annotation] = field(default_factory=list)
    kind: str = "line"
    x_ticklabels: list[str] | None = None
    caption: str = ""

    def is_empty(self) -> bool:
        return not any(s.points for s in self.series)
