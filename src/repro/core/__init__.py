"""Core data model: schemas, patterns, FDs, CFDs and eCFDs.

This package implements Section II of the paper — the eCFD constraint
language itself — together with the relational substrate it is defined
over (schemas, domains, in-memory instances) and the baseline formalisms it
extends (standard FDs and CFDs).
"""

from repro.core.cfd import CFD, cfd_from_ecfd
from repro.core.ecfd import ECFD, ECFDSet, PatternTuple
from repro.core.fd import (
    FunctionalDependency,
    attribute_closure,
    check_fd,
    implies,
    minimal_cover,
)
from repro.core.instance import Relation, RelationTuple
from repro.core.parser import format_ecfd, parse_ecfd, parse_ecfd_set
from repro.core.patterns import (
    WILDCARD,
    ComplementSet,
    PatternValue,
    ValueSet,
    Wildcard,
    constant,
    pattern_from_literal,
)
from repro.core.schema import (
    Attribute,
    Domain,
    RelationSchema,
    cust_ext_schema,
    cust_schema,
)
from repro.core.violations import (
    MultiTupleViolation,
    SingleTupleViolation,
    ViolationSet,
)

__all__ = [
    "Attribute",
    "CFD",
    "ComplementSet",
    "Domain",
    "ECFD",
    "ECFDSet",
    "FunctionalDependency",
    "MultiTupleViolation",
    "PatternTuple",
    "PatternValue",
    "Relation",
    "RelationSchema",
    "RelationTuple",
    "SingleTupleViolation",
    "ValueSet",
    "ViolationSet",
    "WILDCARD",
    "Wildcard",
    "attribute_closure",
    "cfd_from_ecfd",
    "check_fd",
    "constant",
    "cust_ext_schema",
    "cust_schema",
    "format_ecfd",
    "implies",
    "minimal_cover",
    "parse_ecfd",
    "parse_ecfd_set",
    "pattern_from_literal",
]
