"""The cross-commit perf-trajectory report.

One series per tracked hot path (the same set the perf gate enforces,
from :mod:`repro.reports.schema`), one x position per benchmark artifact,
oldest commit first.  The report renders twice from the same data: an SVG
via the figure registry, and a Markdown table emitted into
``docs/PERFORMANCE.md`` between generated markers — every PR that drops
its ``BENCH_<sha>.json`` into ``benchmarks/artifacts/`` extends both.
"""

from __future__ import annotations

from repro.reports.loaders import BenchRun
from repro.reports.model import FigureData, Series
from repro.reports.schema import TRACKED_BENCHMARKS

__all__ = ["SERIES_LABELS", "trajectory_figure", "trajectory_table"]

#: Tracked benchmark → short legend label.
SERIES_LABELS: dict[str, str] = {
    "test_fig8_sharded_batch_detect_scaling[1]": "fig8 batch detect",
    "test_fig9_sharded_incremental_update[1]": "fig9 incremental update",
    "test_fig10_repair_convergence[incremental]": "fig10 repair",
    "test_fig11_service_sustained_throughput[1]": "fig11 service window",
    "test_fig13_duckdb_batch_detect": "fig13 duckdb detect",
}


def _label(tracked: str) -> str:
    return SERIES_LABELS.get(tracked, tracked)


def trajectory_figure(runs: list[BenchRun]) -> FigureData:
    """Mean milliseconds of every tracked hot path across the runs."""
    figure = FigureData(
        name="perf_trajectory",
        title="Perf trajectory: tracked hot paths across commits",
        xlabel="commit",
        ylabel="mean time (ms)",
        x_ticklabels=[run.short_sha for run in runs],
        caption=(
            "Mean seconds of the perf gate's tracked benchmarks per committed "
            "BENCH_<sha>.json artifact (oldest commit left). A missing marker "
            "means the hot path did not exist at that commit yet."
        ),
    )
    for tracked in TRACKED_BENCHMARKS:
        series = Series(label=_label(tracked))
        for index, run in enumerate(runs):
            entry = run.entry(tracked)
            if entry is not None:
                series.points.append((float(index), entry.mean * 1000.0))
        if series.points:
            figure.series.append(series)
    return figure


def trajectory_table(runs: list[BenchRun]) -> tuple[list[str], list[list[object]]]:
    """The same data as a Markdown-ready (headers, rows) pair.

    One row per commit; one column per tracked hot path, in mean
    milliseconds (``—`` before the hot path existed).
    """
    headers = ["commit", "date"] + [f"{_label(name)} (ms)" for name in TRACKED_BENCHMARKS]
    rows: list[list[object]] = []
    for run in runs:
        row: list[object] = [f"`{run.short_sha}`", run.date[:10] or "—"]
        for tracked in TRACKED_BENCHMARKS:
            entry = run.entry(tracked)
            row.append(round(entry.mean * 1000.0, 2) if entry is not None else "—")
        rows.append(row)
    return headers, rows
