"""Unit tests for the dataset generator and update-batch generator."""

import pytest

from repro.core import Relation, cust_ext_schema
from repro.datagen import (
    DatasetGenerator,
    UpdateGenerator,
    city_catalog,
    find_city,
    paper_workload,
)
from repro.detection import NaiveDetector


class TestDatasetGenerator:
    def test_clean_rows_cover_schema(self):
        generator = DatasetGenerator(seed=1)
        row = generator.clean_row()
        assert set(row) == set(cust_ext_schema().attribute_names)

    def test_clean_rows_are_geographically_consistent(self):
        generator = DatasetGenerator(seed=2)
        catalog = city_catalog()
        for row in generator.clean_rows(100):
            record = find_city(row["CT"], catalog)
            assert record is not None
            assert row["AC"] in record.area_codes
            assert row["ZIP"] in record.zip_codes

    def test_clean_dataset_satisfies_paper_workload(self):
        generator = DatasetGenerator(seed=3)
        relation = generator.generate(200, noise_percent=0.0)
        violations = NaiveDetector(paper_workload()).detect(relation)
        assert violations.is_clean()

    def test_noise_produces_detectable_violations(self):
        generator = DatasetGenerator(seed=4)
        relation = generator.generate(300, noise_percent=5.0)
        violations = NaiveDetector(paper_workload()).detect(relation)
        # 5% of 300 = 15 corrupted tuples; every corruption breaks some eCFD,
        # and a corruption can additionally drag clean tuples into an
        # embedded-FD violation, so the dirty count is at least 15.
        assert len(violations) >= 15

    def test_noise_rate_is_exact(self):
        generator = DatasetGenerator(seed=5)
        rows = generator.generate_rows(200, noise_percent=10.0)
        corrupted = [
            row
            for row in rows
            if row["AC"] == "000"
            or row["ZIP"] == "99999"
            or row["ITEM_TYPE"] == "vinyl"
            or row["PRICE"] == "9999"
        ]
        assert len(corrupted) == 20

    def test_zero_noise_has_no_corruptions(self):
        generator = DatasetGenerator(seed=6)
        rows = generator.generate_rows(150, noise_percent=0.0)
        assert all(row["AC"] != "000" and row["ZIP"] != "99999" for row in rows)

    def test_determinism_per_seed(self):
        assert DatasetGenerator(seed=7).generate_rows(50, 5.0) == DatasetGenerator(seed=7).generate_rows(50, 5.0)
        assert DatasetGenerator(seed=7).generate_rows(50, 5.0) != DatasetGenerator(seed=8).generate_rows(50, 5.0)

    def test_invalid_parameters_rejected(self):
        generator = DatasetGenerator()
        with pytest.raises(ValueError):
            generator.generate_rows(-1)
        with pytest.raises(ValueError):
            generator.generate_rows(10, noise_percent=150.0)

    def test_generate_returns_relation(self):
        relation = DatasetGenerator(seed=9).generate(25)
        assert isinstance(relation, Relation)
        assert len(relation) == 25


class TestUpdateGenerator:
    def test_batch_sizes(self):
        generator = DatasetGenerator(seed=10)
        updates = UpdateGenerator(generator, seed=11)
        batch = updates.make_batch(existing_tids=range(1, 101), insert_count=20, delete_count=15)
        assert batch.insert_count == 20
        assert batch.delete_count == 15
        assert all(1 <= tid <= 100 for tid in batch.delete_tids)

    def test_deletions_are_distinct(self):
        updates = UpdateGenerator(DatasetGenerator(seed=12), seed=13)
        batch = updates.make_batch(existing_tids=range(1, 51), insert_count=0, delete_count=50)
        assert len(set(batch.delete_tids)) == 50

    def test_delete_more_than_available_rejected(self):
        updates = UpdateGenerator(DatasetGenerator(seed=14), seed=15)
        with pytest.raises(ValueError):
            updates.make_batch(existing_tids=range(1, 11), insert_count=0, delete_count=11)

    def test_inserted_rows_respect_noise(self):
        updates = UpdateGenerator(DatasetGenerator(seed=16), seed=17)
        batch = updates.make_batch(existing_tids=range(1, 11), insert_count=100, delete_count=0,
                                   noise_percent=10.0)
        corrupted = [
            row for row in batch.insert_rows
            if row["AC"] == "000" or row["ZIP"] == "99999"
            or row["ITEM_TYPE"] == "vinyl" or row["PRICE"] == "9999"
        ]
        assert len(corrupted) == 10

    def test_determinism(self):
        first = UpdateGenerator(DatasetGenerator(seed=18), seed=19).make_batch(range(1, 101), 10, 10)
        second = UpdateGenerator(DatasetGenerator(seed=18), seed=19).make_batch(range(1, 101), 10, 10)
        assert first == second


class TestMakeWorkload:
    def test_tracks_evolving_tid_population(self):
        updates = UpdateGenerator(DatasetGenerator(seed=20), seed=21)
        workload = updates.make_workload(
            range(1, 101), batches=5, insert_count=10, delete_count=8
        )
        assert len(workload) == 5
        live = set(range(1, 101))
        for batch in workload:
            # Every deletion targets a tuple that is actually alive.
            assert set(batch.delete_tids) <= live
            live -= set(batch.delete_tids)
            start = (max(live) if live else 0) + 1
            live |= set(range(start, start + batch.insert_count))

    def test_replays_exactly_against_a_backend(self):
        """The workload's tid model matches real backend tid assignment."""
        from repro.core.schema import cust_ext_schema
        from repro.datagen.workload import paper_workload
        from repro.engine import DataQualityEngine

        generator = DatasetGenerator(seed=22)
        rows = generator.generate_rows(120, 5.0)
        workload = UpdateGenerator(generator, seed=23).make_workload(
            range(1, 121), batches=3, insert_count=15, delete_count=12
        )
        engine = DataQualityEngine(cust_ext_schema(), paper_workload(), backend="incremental")
        engine.load(rows)
        engine.detect()
        for batch in workload:
            before = set(engine.tids())
            assert set(batch.delete_tids) <= before, "no dangling deletions"
            engine.apply_update(batch)
        engine.close()

    def test_workload_determinism(self):
        first = UpdateGenerator(DatasetGenerator(seed=24), seed=25).make_workload(
            range(1, 51), batches=3, insert_count=5, delete_count=5
        )
        second = UpdateGenerator(DatasetGenerator(seed=24), seed=25).make_workload(
            range(1, 51), batches=3, insert_count=5, delete_count=5
        )
        assert first == second


class TestPoissonStream:
    def _stream(self, seed=30, **overrides):
        options = dict(rate=50.0, events=40, ops_per_event=2, insert_fraction=0.5)
        options.update(overrides)
        updates = UpdateGenerator(DatasetGenerator(seed=seed), seed=seed + 1)
        return list(updates.poisson_stream(range(1, 61), **options))

    def test_arrivals_are_strictly_increasing(self):
        events = self._stream()
        assert len(events) == 40
        arrivals = [event.arrival for event in events]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_rate_controls_the_mean_gap(self):
        """The mean inter-arrival gap of a long stream tracks 1/rate."""
        events = self._stream(events=4000, rate=100.0, ops_per_event=1)
        mean_gap = events[-1].arrival / len(events)
        assert 0.8 / 100.0 < mean_gap < 1.2 / 100.0

    def test_tid_discipline_matches_backend_replay(self):
        """Deletions always target live tuples; reused tids are legitimate."""
        from repro.engine import DataQualityEngine

        rows = DatasetGenerator(seed=31).generate_rows(60, 5.0)
        events = self._stream(seed=31, insert_fraction=0.4)
        engine = DataQualityEngine(cust_ext_schema(), paper_workload(), backend="incremental")
        engine.load(rows)
        engine.detect()
        for event in events:
            assert set(event.batch.delete_tids) <= set(engine.tids())
            engine.apply_update(event.batch)
        engine.close()

    def test_empty_table_falls_back_to_insertions(self):
        updates = UpdateGenerator(DatasetGenerator(seed=32), seed=33)
        events = list(
            updates.poisson_stream([], rate=10.0, events=5, insert_fraction=0.0)
        )
        assert events[0].batch.insert_count >= 1  # nothing to delete yet

    def test_insert_fraction_extremes(self):
        all_inserts = self._stream(insert_fraction=1.0)
        assert all(not e.batch.delete_tids for e in all_inserts)
        all_deletes = self._stream(insert_fraction=0.0, events=10, ops_per_event=1)
        assert all(e.batch.insert_count == 0 for e in all_deletes)

    def test_determinism_and_laziness(self):
        first = self._stream(seed=34)
        second = self._stream(seed=34)
        assert first == second
        updates = UpdateGenerator(DatasetGenerator(seed=35), seed=36)
        stream = updates.poisson_stream(range(1, 11), rate=5.0, events=3)
        assert iter(stream) is stream  # a lazy generator, not a list

    def test_parameter_validation(self):
        updates = UpdateGenerator(DatasetGenerator(seed=37), seed=38)
        with pytest.raises(ValueError):
            next(updates.poisson_stream([], rate=0.0, events=1))
        with pytest.raises(ValueError):
            next(updates.poisson_stream([], rate=1.0, events=-1))
        with pytest.raises(ValueError):
            next(updates.poisson_stream([], rate=1.0, events=1, ops_per_event=0))
        with pytest.raises(ValueError):
            next(updates.poisson_stream([], rate=1.0, events=1, insert_fraction=1.5))
