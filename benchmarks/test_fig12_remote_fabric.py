"""Fig. 12 (beyond the paper): the remote shard fabric's update path.

Fig. 9 measures sharded INCDETECT with in-host lanes; this benchmark moves
the same workload onto ``executor="remote"`` — forked worker processes
behind the length-prefixed RPC transport — and times one 2%-of-|D| mixed
batch through the network lanes.  The interesting number is the *overhead*
of the wire versus Fig. 9's in-host lanes at the same worker count: routing
and storage stay coordinator-side either way, so the difference is
serialisation plus round-trips, which ``extra_info`` breaks down with the
pool's transport counters (rpc calls, bytes on the wire).

The worker fleet is forked once per parametrisation outside the timed
region (spawning is a deployment cost, not an update cost), exactly like
``ensure_ready`` keeping bootstrap out of Fig. 9's timings.  This
benchmark is deliberately NOT in the perf-regression gate's tracked set:
localhost RPC timings vary too much across runners for a 30% tolerance.
"""

import os

import pytest

from conftest import BENCH_SIZE, dataset_rows, update_batch

from repro.core.schema import cust_ext_schema
from repro.engine import DataQualityEngine
from repro.parallel.remote import spawn_local_workers

WORKER_COUNTS = [2, 4]
UPDATE_FRACTION = 0.02


def _remote_engine(rows, workload, workers, addresses):
    engine = DataQualityEngine(
        cust_ext_schema(),
        workload,
        backend="incremental",
        workers=workers,
        executor="remote",
        remote_workers=[f"{host}:{port}" for host, port in addresses],
    )
    engine.load(rows)
    engine.backend.ensure_ready()
    return engine


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fig12_remote_fabric_update(benchmark, workers, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), max(1, int(BENCH_SIZE * UPDATE_FRACTION)))
    fleet = spawn_local_workers(min(workers, 2))
    addresses = [handle.address for handle in fleet]
    trace = {}

    def setup():
        return (_remote_engine(rows, base_workload, workers, addresses),), {}

    def run(engine):
        result = engine.apply_update(batch)
        trace.update(engine.backend.last_update_trace or {})
        engine.close()
        return result

    try:
        result = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    finally:
        for handle in fleet:
            handle.stop()
    assert result.incremental, "the update must be maintained, not recomputed"
    transport = trace.get("transport", {})
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["fleet"] = len(addresses)
    benchmark.extra_info["tuples"] = BENCH_SIZE
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = result.dirty_count
    benchmark.extra_info["cores"] = os.cpu_count()
    benchmark.extra_info["rpc_calls"] = transport.get("rpc_calls", 0)
    benchmark.extra_info["wire_bytes"] = transport.get("bytes_sent", 0) + transport.get(
        "bytes_received", 0
    )
    benchmark.extra_info["lanes_lost"] = transport.get("lanes_lost", 0)


def test_fig12_remote_fabric_exactness(base_workload):
    """The remote fabric's maintenance equals the single-threaded pass."""
    rows = dataset_rows(min(BENCH_SIZE, 2000))
    batch = update_batch(len(rows), max(1, int(len(rows) * UPDATE_FRACTION)))

    single = DataQualityEngine(
        cust_ext_schema(), base_workload, backend="incremental", workers=1
    )
    single.load(rows)
    single.backend.ensure_ready()
    expected = single.apply_update(batch)
    single.close()

    fleet = spawn_local_workers(2)
    try:
        remote = _remote_engine(
            rows, base_workload, 4, [handle.address for handle in fleet]
        )
        baseline = remote.backend.full_detect_count
        result = remote.apply_update(batch)
        assert result.violations == expected.violations
        assert remote.backend.full_detect_count == baseline
        assert remote.backend.last_update_trace["transport"]["lanes_lost"] == 0
        remote.close()
    finally:
        for handle in fleet:
            handle.stop()
