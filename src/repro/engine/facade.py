"""The :class:`DataQualityEngine` façade — one front door to the library.

Every workflow in the reproduction (examples, experiment drivers, tests,
benchmarks) needs the same lifecycle: pick a detection strategy, load data,
detect violations, maybe apply updates, maybe repair, maybe mine new
constraints, summarise.  The façade owns that lifecycle end to end::

    engine = DataQualityEngine(schema, sigma, backend="batch")
    engine.load(rows)                      # chunked ingestion
    result = engine.detect()               # DetectionResult
    result = engine.apply_update(delta)    # INCDETECT when supported
    repair = engine.repair()               # RepairResult
    report = engine.report()               # QualityReport

Detection strategies are looked up in the backend registry of
:mod:`repro.engine.backends`; ``apply_update`` routes to INCDETECT when the
backend advertises incremental support and falls back to a full BATCHDETECT
recomputation otherwise, so callers write one code path for both.
"""

from __future__ import annotations

import time
from itertools import islice
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.analysis.satisfiability import is_satisfiable
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import RelationSchema, Value
from repro.discovery.discover import DiscoveryResult, discover_ecfd
from repro.engine.backends import DetectorBackend, create_backend
from repro.engine.results import DetectionResult, QualityReport, RepairResult
from repro.exceptions import EngineError, UnsatisfiableError
from repro.repair.cost import RepairCostModel
from repro.repair.repairer import GreedyRepairer, RepairOutcome
from repro.repair.strategies import create_strategy

__all__ = ["DataQualityEngine", "DEFAULT_CHUNK_SIZE"]

#: Default ingestion chunk size for :meth:`DataQualityEngine.load`.
DEFAULT_CHUNK_SIZE = 2_000


def _chunks(rows: Iterable[Mapping[str, Value]], size: int) -> Iterator[list[Mapping[str, Value]]]:
    """Yield ``rows`` in lists of at most ``size`` (works for generators too)."""
    iterator = iter(rows)
    while chunk := list(islice(iterator, size)):
        yield chunk


class DataQualityEngine:
    """Unified data-quality lifecycle over a pluggable detector backend.

    Parameters
    ----------
    schema:
        Relation schema of the data under management.
    sigma:
        The eCFD workload (an :class:`~repro.core.ecfd.ECFDSet` or any
        sequence of eCFDs).
    backend:
        Registry name of the detection strategy (``"naive"``, ``"batch"``,
        ``"incremental"``, ``"sharded"``, or anything registered via
        :func:`~repro.engine.backends.register_backend`).
    path:
        Storage location for database-backed backends; the default keeps
        everything in-process.
    chunk_size:
        Default chunk size for :meth:`load`.
    workers:
        Parallelism for detection.  With ``workers > 1`` the engine routes
        ``detect`` / ``apply_update`` through the sharded multi-core backend
        (:class:`~repro.parallel.ShardedBackend`), running ``backend`` as
        the per-shard delegate; ``workers=1`` (default) keeps the delegate
        single-threaded, exactly as before.  With ``backend="sharded"`` the
        given count is used verbatim (``workers=1`` means a serial
        single-task pass), so ``engine.workers`` always reflects the actual
        parallelism.
    executor:
        Pool kind for sharded detection: ``"process"`` (default),
        ``"thread"``, ``"serial"`` or ``"remote"`` (shard lanes on
        standalone worker processes over the RPC fabric — see
        :class:`~repro.parallel.ShardedBackend`).  Ignored when
        ``workers=1`` unless ``backend="sharded"``.
    remote_workers:
        Worker fleet for ``executor="remote"``: a list of ``"host:port"``
        addresses, or an integer to spawn that many localhost workers the
        engine owns.  ``None`` reads ``REPRO_REMOTE_WORKERS`` and falls
        back to auto-spawning.
    rpc_timeout:
        Per-call reply deadline of the remote executor, seconds.
    """

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        backend: str = "batch",
        path: str = ":memory:",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        workers: int = 1,
        executor: str = "process",
        remote_workers: Any = None,
        rpc_timeout: float = 30.0,
    ):
        self.schema = schema
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self.chunk_size = chunk_size
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        sharded_kwargs: dict[str, Any] = {"workers": workers, "executor": executor}
        if executor == "remote":
            sharded_kwargs["remote_workers"] = remote_workers
            sharded_kwargs["rpc_timeout"] = rpc_timeout
        elif remote_workers is not None:
            raise EngineError(
                "remote_workers only applies to executor='remote' "
                f"(got executor={executor!r})"
            )
        if backend == "sharded":
            # Explicit sharded backend: honour the given worker count
            # verbatim (workers=1 is a serial single-task pass), so
            # engine.workers always describes the actual parallelism.
            self.backend: DetectorBackend = create_backend(
                backend, schema=schema, sigma=self.sigma, path=path,
                **sharded_kwargs,
            )
        elif workers > 1:
            self.backend = create_backend(
                "sharded", schema=schema, sigma=self.sigma, path=path,
                delegate=backend, **sharded_kwargs,
            )
        else:
            self.backend = create_backend(
                backend, schema=schema, sigma=self.sigma, path=path
            )
        self.backend_name = self.backend.name
        self._last_detection: DetectionResult | None = None

    # ------------------------------------------------------------------
    # Constraint-set validation
    # ------------------------------------------------------------------
    def validate(self, require: bool = False) -> bool:
        """Whether Σ is satisfiable (Section III analysis).

        With ``require=True`` an unsatisfiable workload raises
        :class:`~repro.exceptions.UnsatisfiableError` instead of returning
        ``False`` — useful at pipeline start, before loading any data.
        """
        satisfiable = is_satisfiable(self.sigma)
        if require and not satisfiable:
            raise UnsatisfiableError(
                "the engine's constraint set is unsatisfiable; every non-empty "
                "database would be dirty and no repair could exist"
            )
        return satisfiable

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def load(
        self,
        data: Relation | Iterable[Mapping[str, Value]],
        chunk_size: int | None = None,
    ) -> int:
        """Ingest data into the backend; returns the number of rows loaded.

        A :class:`~repro.core.instance.Relation` is loaded with its tuple
        identifiers preserved; any other iterable of row mappings (lists,
        generators, ...) is consumed in chunks of ``chunk_size`` so
        arbitrarily large inputs never materialise at once.  Chunked and
        one-shot loads assign identical tids.
        """
        if isinstance(data, Relation):
            return self.backend.load_relation(data)
        size = chunk_size if chunk_size is not None else self.chunk_size
        if size <= 0:
            raise EngineError(f"chunk_size must be positive, got {size}")
        loaded = 0
        for chunk in _chunks(data, size):
            self.backend.load_rows(chunk)
            loaded += len(chunk)
        return loaded

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detect(self, with_breakdown: bool = False) -> DetectionResult:
        """Run the backend's detection and return a structured result.

        ``with_breakdown=True`` additionally computes the per-constraint
        statistics (for SQL backends these are follow-up queries outside the
        timed region; backends like ``sharded`` collect them inside the same
        detection pass via ``detect_with_breakdown`` so nothing runs twice).
        """
        started = time.perf_counter()
        violations = (
            self.backend.detect_with_breakdown() if with_breakdown else self.backend.detect()
        )
        seconds = time.perf_counter() - started
        result = DetectionResult.from_violations(
            backend=self.backend_name,
            violations=violations,
            tuple_count=self.backend.count(),
            seconds=seconds,
            per_constraint=self.backend.breakdown() if with_breakdown else None,
        )
        self._last_detection = result
        return result

    def apply_update(
        self,
        delta: Any = None,
        *,
        insert_rows: Sequence[Mapping[str, Value]] = (),
        delete_tids: Sequence[int] = (),
        with_breakdown: bool = False,
    ) -> DetectionResult:
        """Apply an update ΔD and return the violation set of the updated data.

        ``delta`` may be anything exposing ``insert_rows`` / ``delete_tids``
        (e.g. :class:`~repro.datagen.updates.UpdateBatch`) or a mapping with
        those keys; the keyword arguments extend whatever the delta carries.
        Deletions are applied before insertions, matching INCDETECT's ΔD⁻ /
        ΔD⁺ processing order.

        When the backend supports incremental detection the violation set is
        *maintained* (INCDETECT, cost proportional to the affected part of
        the database); otherwise the delta is applied to storage and a full
        re-detection runs, with the application time reported separately in
        ``apply_seconds``.  This holds under sharding too: with
        ``workers > 1`` and an incremental-capable backend the delta is
        routed through the partition plan to persistent per-shard INCDETECT
        states, so only the shards the delta lands on do any work (see
        :class:`~repro.parallel.ShardedBackend`); first-time shard
        bootstrapping happens in ``ensure_ready`` outside the timed region.
        """
        deletes, inserts = self._normalize_delta(delta, delete_tids, insert_rows)

        if self.backend.supports_incremental:
            # The paper assumes vio(D) is known before the update arrives, so
            # a first-time initialisation must not count as update cost.
            self.backend.ensure_ready()
            started = time.perf_counter()
            violations = self.backend.incremental_update(deletes, inserts)
            detect_seconds = time.perf_counter() - started
            apply_seconds, incremental = 0.0, True
        else:
            started = time.perf_counter()
            self.backend.apply_delta(deletes, inserts)
            applied = time.perf_counter()
            violations = (
                self.backend.detect_with_breakdown()
                if with_breakdown
                else self.backend.detect()
            )
            detect_seconds = time.perf_counter() - applied
            apply_seconds, incremental = applied - started, False

        result = DetectionResult.from_violations(
            backend=self.backend_name,
            violations=violations,
            tuple_count=self.backend.count(),
            seconds=detect_seconds,
            apply_seconds=apply_seconds,
            incremental=incremental,
            per_constraint=self.backend.breakdown() if with_breakdown else None,
        )
        self._last_detection = result
        return result

    @staticmethod
    def _normalize_delta(
        delta: Any,
        delete_tids: Sequence[int] = (),
        insert_rows: Sequence[Mapping[str, Value]] = (),
    ) -> tuple[list[int], list[Mapping[str, Value]]]:
        """``(delete_tids, insert_rows)`` of a delta in any accepted shape."""
        deletes, inserts = list(delete_tids), list(insert_rows)
        if delta is not None:
            if isinstance(delta, Mapping):
                unknown = set(delta) - {"delete_tids", "insert_rows"}
                if unknown:
                    raise EngineError(
                        f"unrecognized delta keys {sorted(unknown)}; "
                        "expected 'delete_tids' and/or 'insert_rows'"
                    )
                deletes = list(delta.get("delete_tids", ())) + deletes
                inserts = list(delta.get("insert_rows", ())) + inserts
            elif hasattr(delta, "delete_tids") or hasattr(delta, "insert_rows"):
                deletes = list(getattr(delta, "delete_tids", ())) + deletes
                inserts = list(getattr(delta, "insert_rows", ())) + inserts
            else:
                raise EngineError(
                    "delta must expose 'insert_rows' / 'delete_tids' "
                    f"(got {type(delta).__name__})"
                )
        return deletes, inserts

    def apply_updates(self, deltas: Iterable[Any]) -> DetectionResult:
        """Apply an ordered sequence of updates in one pipelined call.

        Each element of ``deltas`` is anything :meth:`apply_update` accepts
        as a delta (an :class:`~repro.datagen.updates.UpdateBatch`, a
        mapping with ``delete_tids`` / ``insert_rows`` keys, ...); batches
        are applied in order with the single-call semantics — the returned
        result describes the state after the last one.  On an
        incremental-capable backend the whole sequence goes through the
        backend's ``incremental_update_many``, which the sharded backend
        pipelines: batch ``N+1`` is routed while the shard lanes are still
        processing batch ``N``, with one coordinator barrier at the end
        instead of one per call.  Other backends fold the sequence into a
        single storage delta and re-detect once.
        """
        batches = [self._normalize_delta(delta) for delta in deltas]
        if self.backend.supports_incremental:
            self.backend.ensure_ready()
            started = time.perf_counter()
            violations = self.backend.incremental_update_many(
                [(deletes, inserts, None) for deletes, inserts in batches]
            )
            detect_seconds = time.perf_counter() - started
            apply_seconds, incremental = 0.0, True
        else:
            # No maintained state to keep exact per batch — apply every
            # batch to storage, then detect once over the final data.
            started = time.perf_counter()
            for deletes, inserts in batches:
                self.backend.apply_delta(deletes, inserts)
            applied = time.perf_counter()
            violations = self.backend.detect()
            detect_seconds = time.perf_counter() - applied
            apply_seconds, incremental = applied - started, False

        result = DetectionResult.from_violations(
            backend=self.backend_name,
            violations=violations,
            tuple_count=self.backend.count(),
            seconds=detect_seconds,
            apply_seconds=apply_seconds,
            incremental=incremental,
        )
        self._last_detection = result
        return result

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _default_repair_strategy(self) -> str:
        """The repair strategy best matched to the engine's backend.

        Sharded engines with an incremental-capable delegate get the
        ``"sharded"`` strategy (routed fix deltas, summary-elected group
        fixes); other incremental-capable backends get ``"incremental"``
        (INCDETECT delta re-validation); everything else falls back to the
        ``"greedy"`` full-re-detection baseline.
        """
        if self.backend.supports_incremental:
            if getattr(self.backend, "summary_store", None) is not None:
                return "sharded"
            return "incremental"
        return "greedy"

    def repair(
        self,
        strategy: str | None = None,
        max_rounds: int = 10,
        cost_model: RepairCostModel | None = None,
        workers: int | None = None,
        apply: bool = True,
    ) -> RepairResult:
        """Repair the stored data in place with a pluggable strategy.

        ``strategy`` names a registered repair strategy (``"greedy"``,
        ``"incremental"``, ``"sharded"``, or anything added via
        :func:`repro.repair.register_strategy`); the default picks the
        strongest one the backend supports.  Fixes are applied to the
        backend **in place** under the original tuple identifiers — no
        materialise-and-reload — and incremental strategies re-validate each
        round through the backend's maintained violation state (for sharded
        engines the per-shard INCDETECT states stay live across the repair
        and the fix deltas are routed like any other update).

        ``workers`` optionally documents the expected repair parallelism; it
        must match the engine's own worker count (repair always runs through
        the engine's backend — construct the engine with ``workers=N`` to
        shard the repair path).

        ``apply=False`` is a dry run: the repair is planned on a
        materialised copy with the greedy baseline and the audit returned,
        but the stored data is left untouched.

        Raises
        ------
        RepairError
            If Σ is unsatisfiable or the strategy fails to converge within
            ``max_rounds``.
        """
        if workers is not None and workers != self.workers:
            raise EngineError(
                f"repair parallelism is fixed by the engine's configuration "
                f"(workers={self.workers}); construct the engine with "
                f"workers={workers} to change it"
            )
        if strategy is not None:
            name = strategy
        elif apply:
            name = self._default_repair_strategy()
        else:
            name = "greedy"  # dry runs plan on a copy — the baseline's job
        started = time.perf_counter()
        if apply:
            strategy_obj = create_strategy(
                name, sigma=self.sigma, cost_model=cost_model, max_rounds=max_rounds
            )
            outcome = strategy_obj.repair(self.backend)
        else:
            if name != "greedy":
                raise EngineError(
                    f"apply=False plans the repair on a materialised copy and "
                    f"only supports the 'greedy' strategy (got {name!r})"
                )
            repairer = GreedyRepairer(
                self.sigma, cost_model=cost_model, max_rounds=max_rounds
            )
            outcome = repairer.repair(self.backend.to_relation())
        repair_seconds = time.perf_counter() - started
        return self._repair_result(name, outcome, repair_seconds)

    def _repair_result(
        self, strategy: str, outcome: RepairOutcome, seconds: float
    ) -> RepairResult:
        changes = tuple(
            {
                "tid": change.tid,
                "attribute": change.attribute,
                "before": change.old_value,
                "after": change.new_value,
            }
            for change in outcome.changes
        )
        return RepairResult(
            backend=self.backend_name,
            strategy=strategy,
            # Strategies raise RepairError instead of returning dirty data,
            # so a returned outcome is a converged (clean) repair.
            clean=True,
            cells_changed=outcome.change_count,
            tuples_changed=len(outcome.changed_tids()),
            cost=outcome.cost,
            rounds=outcome.rounds,
            seconds=seconds,
            changes=changes,
            trace=dict(outcome.trace),
            relation=outcome.relation,
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def discover(self, x: Sequence[str], a: str, **thresholds: Any) -> DiscoveryResult:
        """Mine an eCFD ``(R: X -> ∅, {A}, Tp)`` from the stored data.

        ``thresholds`` are passed through to
        :func:`repro.discovery.discover_ecfd` (``min_support``,
        ``min_confidence``, ``max_rhs_values``, ``name``).
        """
        return discover_ecfd(self.backend.to_relation(), x, a, **thresholds)

    # ------------------------------------------------------------------
    # Reporting / introspection
    # ------------------------------------------------------------------
    def report(self) -> QualityReport:
        """A full quality report: workload statistics plus a fresh detection."""
        detection = self.detect(with_breakdown=True)
        return QualityReport(
            schema_name=self.schema.name,
            backend=self.backend_name,
            constraint_count=len(self.sigma),
            pattern_count=self.sigma.pattern_count(),
            satisfiable=self.validate(),
            tuple_count=detection.tuple_count,
            detection=detection,
        )

    @property
    def last_detection(self) -> DetectionResult | None:
        """The most recent detection result, if any."""
        return self._last_detection

    def count(self) -> int:
        """Number of tuples currently stored."""
        return self.backend.count()

    def tids(self) -> list[int]:
        """All stored tuple identifiers, ascending."""
        return self.backend.tids()

    def to_relation(self) -> Relation:
        """The stored data as an in-memory relation (tids preserved)."""
        return self.backend.to_relation()

    def violation_counts(self) -> dict[str, int]:
        """SV / MV / dirty counts of the latest detection state."""
        return self.backend.violation_counts()

    def shard_stats(self) -> list[dict]:
        """Per-shard maintained-state statistics, for sharded incremental engines.

        Each entry reports one live shard: its ``shard`` index, the plan's
        partition ``key`` and the INCDETECT state sizes (``tuples``,
        ``aux_groups`` — the shard's Aux(D) memory — ``macro_rows``,
        ``initialized``).  Only meaningful when the engine runs a sharded
        incremental backend (``workers > 1`` over an incremental-capable
        delegate); other backends raise
        :class:`~repro.exceptions.EngineError`.
        """
        stats = getattr(self.backend, "shard_stats", None)
        if stats is None:
            raise EngineError(
                f"backend {self.backend_name!r} does not expose per-shard statistics; "
                "construct the engine with workers > 1 over an incremental delegate"
            )
        return stats()

    def partition_stats(self) -> dict:
        """The sharded backend's partition-plan and summary accounting.

        Reports the primary hash ``key``, the local/summary fragment split,
        the ``replication_factor`` (1.0 under the single-pass plan — every
        stored row ships to exactly one shard; ``clustered_replication_factor``
        is what the old multi-pass plan would have shipped) and the group
        count / wire bytes of the most recent cross-shard summary exchange.
        Only meaningful on sharded engines; other backends raise
        :class:`~repro.exceptions.EngineError`.
        """
        stats = getattr(self.backend, "partition_stats", None)
        if stats is None:
            raise EngineError(
                f"backend {self.backend_name!r} does not expose partition statistics; "
                "construct the engine with workers > 1 (or backend='sharded')"
            )
        return stats()

    @property
    def database(self):
        """The backend's SQLite substrate, when it has one (else ``None``)."""
        return self.backend.database

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources."""
        self.backend.close()

    def __enter__(self) -> "DataQualityEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataQualityEngine(schema={self.schema.name!r}, "
            f"backend={self.backend_name!r}, tuples={self.count()}, "
            f"constraints={len(self.sigma)})"
        )
