"""Hash partitioning of relations by eCFD LHS keys.

Sharded detection (see :mod:`repro.parallel.sharded`) splits a relation into
shared-nothing shards and runs an ordinary detector per shard.  For that to
be *exact* — bit-identical violation sets to a single-threaded pass — the
partitioner has to respect the structure of the constraint set:

* **embedded-FD fragments** (``Y ≠ ∅``) produce multiple-tuple violations,
  witnessed by pairs of tuples agreeing on the LHS attributes ``X``.  All
  tuples of an ``X``-group must therefore land in the same shard, which a
  deterministic hash of the ``X`` projection guarantees;
* **pattern-constraint-only fragments** (``Y = ∅``, the ``Yp``-carried
  constraints) produce only single-tuple violations and never need
  co-location — any partition of the relation detects them, as long as each
  tuple is examined exactly once.

Different eCFDs generally have different LHS attribute sets, so one hash key
cannot serve them all.  The planner clusters the embedded-FD fragments
greedily: fragments whose LHS sets share a common non-empty subset are
placed in one cluster keyed on that *intersection* — tuples agreeing on
``X ⊇ key`` also agree on ``key``, so co-location is preserved while the
relation is replicated once per cluster instead of once per distinct LHS.
The co-location-free fragments are then dealt round-robin onto the clusters
as riders, adding no replication at all.

Hashing uses :func:`zlib.crc32`, not the builtin ``hash``: Python salts
string hashes per process, and shard assignment must agree between the
coordinating process and (potentially forked-then-respawned) workers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import Value

__all__ = [
    "PartitionCluster",
    "bucket_rows",
    "extract_partition_plan",
    "plan_partitions",
    "route_delta",
    "shard_index",
    "partition_rows",
]

#: Separator between projected values inside a hash key; chosen outside the
#: generated data's alphabet so composite keys cannot collide by juxtaposition.
_KEY_SEPARATOR = "\x1f"


@dataclass
class PartitionCluster:
    """One partition pass over the relation and the fragments it serves.

    Attributes
    ----------
    key:
        The attributes the relation is hash-partitioned on, in schema-lhs
        order.  Empty when the cluster holds only co-location-free fragments
        (tuples are then dealt round-robin by ``tid``) or when
        ``colocate_all`` is set.
    fragments:
        Normalized single-pattern fragments evaluated over this cluster's
        shards, as ``(cid, ecfd)`` pairs with their *global* constraint
        identifiers (the CIDs a whole-Σ detection would assign).
    colocate_all:
        ``True`` for the cluster holding embedded-FD fragments with an
        *empty* LHS: every tuple belongs to the one global ``X``-group, so
        the whole relation must go to a single shard — this cluster cannot
        be parallelised, only overlapped with the others.
    """

    key: tuple[str, ...]
    fragments: list[tuple[int, ECFD]] = field(default_factory=list)
    colocate_all: bool = False

    def fragment_cids(self) -> list[int]:
        """The global constraint identifiers served by this cluster, sorted."""
        return sorted(cid for cid, _ in self.fragments)


def extract_partition_plan(sigma: ECFDSet) -> list[PartitionCluster]:
    """Cluster Σ's normalized fragments into co-location-safe partition passes.

    Every fragment of ``sigma.normalize()`` is assigned to exactly one
    cluster; embedded-FD fragments only join clusters whose key is a subset
    of their LHS.  The plan is deterministic for a given Σ.
    """
    fd_fragments: list[tuple[int, ECFD]] = []
    rider_fragments: list[tuple[int, ECFD]] = []
    for cid, fragment in sigma.normalize():
        if fragment.requires_colocation():
            fd_fragments.append((cid, fragment))
        else:
            rider_fragments.append((cid, fragment))

    clusters: list[PartitionCluster] = []
    for cid, fragment in fd_fragments:
        lhs_set = set(fragment.lhs)
        if not lhs_set:
            # X = ∅: one global group — single-shard cluster, never hashed.
            target = next((c for c in clusters if c.colocate_all), None)
            if target is None:
                target = PartitionCluster(key=(), colocate_all=True)
                clusters.append(target)
            target.fragments.append((cid, fragment))
            continue
        placed = False
        for cluster in clusters:
            common = [a for a in cluster.key if a in lhs_set]
            if common:
                cluster.key = tuple(common)
                cluster.fragments.append((cid, fragment))
                placed = True
                break
        if not placed:
            clusters.append(PartitionCluster(key=fragment.lhs, fragments=[(cid, fragment)]))

    if not clusters:
        clusters.append(PartitionCluster(key=()))
    for index, rider in enumerate(rider_fragments):
        clusters[index % len(clusters)].fragments.append(rider)

    # Drop clusters that ended up empty (possible only when Σ is empty) and
    # fix a deterministic fragment order inside each cluster.
    clusters = [c for c in clusters if c.fragments]
    for cluster in clusters:
        cluster.fragments.sort(key=lambda pair: pair[0])
    return clusters


def plan_partitions(sigma: "ECFDSet | Sequence[ECFD]") -> list[PartitionCluster]:
    """The partition plan for a constraint workload — the public entry point.

    Clusters Σ's normalized single-pattern fragments into co-location-safe
    partition passes (see :func:`extract_partition_plan` for the clustering
    rules) and accepts either an :class:`~repro.core.ecfd.ECFDSet` or any
    sequence of eCFDs, mirroring every other public constructor in the
    library.  The returned clusters carry, per cluster,

    * ``key`` — the attributes the relation is hash-partitioned on,
    * ``fragments`` — the ``(global CID, fragment)`` pairs it serves,
    * ``colocate_all`` — whether the cluster must stay on a single shard
      (empty-LHS embedded FDs: one global ``X``-group).

    The plan is deterministic for a given Σ, and both ``detect`` and
    ``apply_update`` of the sharded backend route through the *same* plan,
    so a tuple always lands on the shard that examined it at load time.
    """
    ecfds = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
    return extract_partition_plan(ecfds)


def route_delta(
    plan: Sequence[PartitionCluster],
    workers: int,
    delete_rows: Sequence[tuple[int, Mapping[str, str]]],
    insert_rows: Sequence[tuple[int, Mapping[str, str]]],
) -> dict[tuple[int, int], tuple[list[int], list[tuple[int, Mapping[str, str]]]]]:
    """Route an update ΔD to the ``(cluster, shard)`` buckets it touches.

    Both deletions and insertions arrive as ``(tid, row)`` pairs — deletions
    need their row *values* (resolved before the tuple is dropped from
    storage) because keyed clusters shard on the value projection, not the
    identifier.  Every delta tuple is routed once per cluster, mirroring the
    replication of a full sharded detection, with exactly the shard
    assignment :func:`bucket_rows` used at load time: keyed clusters hash
    the projection, ``colocate_all`` clusters send everything to their
    single shard, keyless rider clusters deal by ``tid``.

    Returns a mapping from ``(cluster_index, shard_index)`` to
    ``(delete_tids, insert_pairs)`` containing *only* the touched shards —
    the caller dispatches incremental work to those and leaves every other
    shard untouched, which is what makes sharded INCDETECT's cost
    proportional to the routed delta rather than to |D|.
    """
    routed: dict[tuple[int, int], tuple[list[int], list[tuple[int, Mapping[str, str]]]]] = {}

    def slot(cluster: int, shard: int) -> tuple[list[int], list[tuple[int, Mapping[str, str]]]]:
        return routed.setdefault((cluster, shard), ([], []))

    for cluster_index, cluster in enumerate(plan):
        shards = 1 if cluster.colocate_all else max(1, workers)
        for tid, row in delete_rows:
            shard = 0 if cluster.colocate_all else shard_index(row, cluster.key, shards, tid)
            slot(cluster_index, shard)[0].append(tid)
        for tid, row in insert_rows:
            shard = 0 if cluster.colocate_all else shard_index(row, cluster.key, shards, tid)
            slot(cluster_index, shard)[1].append((tid, row))
    return routed


def shard_index(row: Mapping[str, Value], key: Sequence[str], shards: int, tid: int = 0) -> int:
    """The shard a tuple belongs to under a partition key.

    Keyed clusters hash the stringified projection (values are compared as
    text throughout the detection substrate); keyless clusters deal tuples
    round-robin by ``tid`` for balance.
    """
    if shards <= 1:
        return 0
    if not key:
        return tid % shards
    projected = _KEY_SEPARATOR.join(str(row[attribute]) for attribute in key)
    return zlib.crc32(projected.encode("utf-8")) % shards


def bucket_rows(
    rows: Sequence[tuple[int, dict[str, str]]], key: Sequence[str], shards: int
) -> list[list[tuple[int, dict[str, str]]]]:
    """Bucket pre-materialised ``(tid, row)`` pairs into ``shards`` lists.

    The shard-assignment loop shared by :func:`partition_rows` and the
    sharded backend's task builder: tuples agreeing on ``key`` are
    guaranteed to share a shard; empty shards are kept (callers skip them)
    so shard indices stay aligned.  An empty ``key`` deals rows round-robin,
    which is only sound for co-location-free fragments — ``colocate_all``
    clusters need the whole relation in one shard instead.
    """
    buckets: list[list[tuple[int, dict[str, str]]]] = [[] for _ in range(max(1, shards))]
    for tid, row in rows:
        buckets[shard_index(row, key, shards, tid=tid)].append((tid, row))
    return buckets


def partition_rows(
    relation: Relation, key: Sequence[str], shards: int
) -> list[list[tuple[int, dict[str, str]]]]:
    """Split a relation into ``shards`` lists of ``(tid, stringified row)``.

    Rows are stringified exactly like every backend's storage layer does, so
    per-shard detection sees the same values a whole-relation pass would;
    sharding semantics are those of :func:`bucket_rows`.
    """
    attributes = relation.schema.attribute_names
    rows = []
    for t in relation.tuples():
        assert t.tid is not None
        rows.append((t.tid, {a: str(t[a]) for a in attributes}))
    return bucket_rows(rows, key, shards)
