"""Sharded INCDETECT: delta routing, stateful shard lanes and exactness.

The tentpole guarantee: an engine with ``workers=N`` over the incremental
delegate *maintains* violations across update batches — persistent per-shard
INCDETECT states, deltas routed through the partition plan, no full
recompute — and its results are identical to both the single-threaded
incremental detector and a full re-detection, on every executor.

The suite shares one seeded 5k-tuple workload and computes the
single-threaded reference trajectories once (module-scoped fixtures), so the
executor matrix only pays for the sharded runs.
"""

import pytest

from repro.core import ECFD, ECFDSet
from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.updates import UpdateGenerator
from repro.datagen.workload import paper_workload
from repro.engine import DataQualityEngine
from repro.exceptions import EngineError

EXECUTORS = ("serial", "thread", "process")
#: Seeded 5k-tuple noisy base relation shared by the equivalence tests.
EQUIVALENCE_SIZE = 5_000
#: Batches in the shared update workload; insert and delete counts differ
#: so |D| drifts and the tid-assignment discipline is exercised.
BATCH_COUNT, BATCH_INSERTS, BATCH_DELETES = 2, 150, 120


@pytest.fixture(scope="module")
def ext_schema():
    return cust_ext_schema()


@pytest.fixture(scope="module")
def sigma(ext_schema):
    """The paper workload plus an empty-LHS eCFD.

    The extra constraint is a summary fragment under the single-pass plan
    (its one global ``X``-group spans every shard), so every update batch
    also exercises the cross-shard summary-delta merge path.
    """
    phi = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
    return ECFDSet(list(paper_workload()) + [phi])


@pytest.fixture(scope="module")
def base_rows():
    return DatasetGenerator(seed=42).generate_rows(EQUIVALENCE_SIZE, 5.0)


@pytest.fixture(scope="module")
def update_workload(base_rows):
    """Successive disjoint batches over the evolving tid population."""
    updates = UpdateGenerator(DatasetGenerator(seed=9), seed=3)
    return updates.make_workload(
        range(1, len(base_rows) + 1),
        batches=BATCH_COUNT,
        insert_count=BATCH_INSERTS,
        delete_count=BATCH_DELETES,
        noise_percent=10.0,
    )


@pytest.fixture(scope="module")
def incremental_reference(ext_schema, sigma, base_rows, update_workload):
    """Violation trajectory of the single-threaded incremental delegate."""
    engine = DataQualityEngine(ext_schema, sigma, backend="incremental")
    engine.load(base_rows)
    engine.detect()
    results = [engine.apply_update(batch) for batch in update_workload]
    engine.close()
    return results


@pytest.fixture(scope="module")
def full_redetection_reference(ext_schema, sigma, base_rows, update_workload):
    """Violation trajectory of full BATCHDETECT re-detection per batch."""
    engine = DataQualityEngine(ext_schema, sigma, backend="batch")
    engine.load(base_rows)
    results = [engine.apply_update(batch) for batch in update_workload]
    engine.close()
    return results


class TestShardedIncrementalEquivalence:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_matches_single_threaded_and_full_redetect_on_5k(
        self,
        ext_schema,
        sigma,
        base_rows,
        update_workload,
        incremental_reference,
        full_redetection_reference,
        executor,
    ):
        """The tentpole guarantee, for every executor at 5k tuples."""
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor=executor
        )
        engine.load(base_rows)
        for step, batch in enumerate(update_workload):
            result = engine.apply_update(batch)
            assert result.incremental, "sharded INCDETECT must maintain, not recompute"
            assert result.violations == incremental_reference[step].violations
            assert result.violations == full_redetection_reference[step].violations
            assert result.tuple_count == incremental_reference[step].tuple_count
        engine.close()

    def test_no_full_recompute_during_updates(
        self, ext_schema, sigma, base_rows, update_workload
    ):
        """The acceptance counter: apply_update never runs a sharded detect."""
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(base_rows)
        backend = engine.backend
        baseline = backend.full_detect_count
        for batch in update_workload:
            engine.apply_update(batch)
        assert backend.full_detect_count == baseline, (
            "sharded apply_update must not fall back to full detection"
        )
        engine.close()

    def test_detect_after_updates_reads_live_shard_states(
        self, ext_schema, sigma, base_rows, update_workload, incremental_reference
    ):
        """Regression: detect() after apply_update used to silently re-fan
        out one-shot tasks instead of reading the maintained shard states."""
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(base_rows)
        for batch in update_workload:
            engine.apply_update(batch)
        baseline = engine.backend.full_detect_count
        result = engine.detect()
        assert engine.backend.full_detect_count == baseline, (
            "detect() with live shard states must serve the merged "
            "maintained violations, not run a hidden full detection"
        )
        assert result.violations == incremental_reference[-1].violations
        # The breakdown read path must stay recompute-free too.
        with_breakdown = engine.detect(with_breakdown=True)
        assert engine.backend.full_detect_count == baseline
        assert with_breakdown.violations == result.violations
        assert with_breakdown.per_constraint
        engine.close()


class TestDeltaRoutingProportionality:
    def test_single_tuple_delta_touches_exactly_one_shard(
        self, ext_schema, sigma, base_rows
    ):
        """Per-shard work is proportional to the routed delta, not |D|.

        Under the single-pass plan every delta tuple routes to exactly one
        shard — no per-cluster replication."""
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(base_rows)
        engine.apply_update(delete_tids=[7])
        trace = engine.backend.last_update_trace
        assert trace["mode"] == "incremental"
        assert trace["shards_touched"] == 1
        assert trace["shards_touched"] < trace["shards_total"]
        assert trace["routed_deletes"] == 1
        assert trace["routed_inserts"] == 0
        engine.close()

    def test_untouched_shards_receive_no_tasks(self, ext_schema, sigma, base_rows):
        """Trace a batch and check routed totals equal |ΔD| exactly."""
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(base_rows)
        batch_inserts = DatasetGenerator(seed=21).generate_rows(25, 20.0)
        engine.apply_update(insert_rows=batch_inserts, delete_tids=[11, 12, 13])
        trace = engine.backend.last_update_trace
        assert trace["routed_deletes"] == 3
        assert trace["routed_inserts"] == 25
        assert trace["shards_touched"] <= trace["shards_total"]
        engine.close()

    def test_update_readback_is_delta_proportional(self, ext_schema):
        """The flag readback scans affected groups, never whole shards.

        High-cardinality LHS values keep every group tiny, so the readback
        bound (the deleted tuples' groups) is orders of magnitude below the
        shard size — the old per-update whole-shard flag scan would read
        hundreds of tids here."""
        phi = ECFD(
            ext_schema, lhs=["ZIP"], rhs=["CT"],
            tableau=[({"ZIP": "_"}, {"CT": "_"})],
        )
        rows = [
            {a: "x" for a in ext_schema.attribute_names}
            | {"ZIP": str(10000 + i), "CT": f"city-{i}"}
            for i in range(600)
        ]
        engine = DataQualityEngine(
            ext_schema, ECFDSet([phi]), backend="incremental", workers=2,
            executor="serial",
        )
        engine.load(rows)
        engine.backend.ensure_ready()
        engine.apply_update(delete_tids=[7, 8])
        trace = engine.backend.last_update_trace
        assert trace["readback_tids"] <= 4
        engine.close()


class TestSummaryMergedAndEmptyShards:
    def test_update_hitting_global_group(self, ext_schema, sigma):
        """Empty-LHS constraints span every shard; summary deltas must merge."""
        rows = DatasetGenerator(seed=13).generate_rows(300, 0.0)
        reference = DataQualityEngine(ext_schema, sigma, backend="incremental")
        reference.load(rows)
        reference.detect()

        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(rows)
        # A clean relation still violates ∅ -> CT (mixed CT values); deleting
        # tuples changes the single global group, which no single shard can
        # witness — the summary store has to absorb the deltas.
        expected = reference.apply_update(delete_tids=[1, 2, 3])
        result = engine.apply_update(delete_tids=[1, 2, 3])
        assert result.violations == expected.violations
        assert engine.backend.last_update_trace["summary_groups_touched"] >= 1
        assert not expected.clean
        reference.close()
        engine.close()

    def test_insert_into_previously_empty_shard(self, ext_schema):
        """An insert may route to a shard that held no tuples at bootstrap."""
        phi = ECFD(
            ext_schema,
            lhs=["ZIP"],
            rhs=["CT"],
            tableau=[({"ZIP": "_"}, {"CT": "_"})],
        )
        sigma = ECFDSet([phi])
        # Two rows sharing one ZIP: with 4 workers most shards start empty.
        base = [
            {a: "x" for a in ext_schema.attribute_names} | {"ZIP": "10001", "CT": "NYC"},
            {a: "x" for a in ext_schema.attribute_names} | {"ZIP": "10001", "CT": "NYC"},
        ]
        fresh = [
            {a: "y" for a in ext_schema.attribute_names} | {"ZIP": z, "CT": ct}
            for z, ct in (
                ("90210", "LA"), ("60601", "CHI"), ("73301", "AUS"),
                ("90210", "SF"),  # same ZIP, different CT: a new violation
            )
        ]
        reference = DataQualityEngine(ext_schema, sigma, backend="incremental")
        reference.load(base)
        reference.detect()
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(base)
        expected = reference.apply_update(insert_rows=fresh)
        result = engine.apply_update(insert_rows=fresh)
        assert result.violations == expected.violations
        assert not result.clean  # the 90210 pair violates ZIP -> CT
        reference.close()
        engine.close()


class TestLifecycleAndContract:
    def test_out_of_band_mutation_invalidates_states(self, ext_schema, sigma):
        rows = DatasetGenerator(seed=5).generate_rows(200, 5.0)
        reference = DataQualityEngine(ext_schema, sigma, backend="incremental")
        reference.load(rows)
        reference.detect()
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=3, executor="serial"
        )
        engine.load(rows)
        engine.apply_update(delete_tids=[4])
        reference.apply_update(delete_tids=[4])

        extra = DatasetGenerator(seed=6).generate_rows(40, 25.0)
        engine.load(extra)  # out-of-band: must invalidate the shard states
        assert not engine.backend._states_live
        reference.load(extra)
        reference.detect()
        # Direct backend call (no facade ensure_ready) exposes the rebuild.
        result = engine.backend.incremental_update([8], [])
        expected = reference.apply_update(delete_tids=[8])
        assert result == expected.violations
        assert engine.backend.last_update_trace["bootstrap"] is True
        reference.close()
        engine.close()

    def test_non_incremental_delegate_refuses(self, ext_schema, sigma):
        rows = DatasetGenerator(seed=5).generate_rows(100, 5.0)
        engine = DataQualityEngine(
            ext_schema, sigma, backend="batch", workers=2, executor="serial"
        )
        engine.load(rows)
        assert not engine.backend.supports_incremental
        with pytest.raises(EngineError):
            engine.backend.incremental_update([1], [])
        # The facade still serves updates through the recompute fallback.
        result = engine.apply_update(delete_tids=[1])
        assert not result.incremental
        engine.close()

    def test_shard_stats_report_aux_memory(self, ext_schema, sigma):
        rows = DatasetGenerator(seed=5).generate_rows(300, 10.0)
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=3, executor="serial"
        )
        engine.load(rows)
        stats = engine.shard_stats()
        assert stats, "stateful layout must expose at least one shard"
        for entry in stats:
            assert {"cluster", "shard", "key", "tuples", "aux_groups",
                    "macro_rows", "initialized"} <= set(entry)
            assert entry["initialized"] == 1
        # Shards of one cluster partition the relation (colocate_all and
        # whole-relation clusters replicate it, never split it).
        by_cluster = {}
        for entry in stats:
            by_cluster.setdefault(entry["cluster"], 0)
            by_cluster[entry["cluster"]] += entry["tuples"]
        assert all(total == len(rows) for total in by_cluster.values())
        engine.close()

    def test_shard_stats_unavailable_on_plain_backends(self, ext_schema, sigma):
        engine = DataQualityEngine(ext_schema, sigma, backend="batch")
        with pytest.raises(EngineError):
            engine.shard_stats()
        engine.close()

    def test_explicit_sharded_workers_one_single_state(self, ext_schema, sigma):
        """An explicit sharded backend at workers=1 keeps one whole-Σ state
        — byte-for-byte the plain incremental delegate's behaviour."""
        from repro.engine import ShardedBackend

        rows = DatasetGenerator(seed=5).generate_rows(150, 10.0)
        reference = DataQualityEngine(ext_schema, sigma, backend="incremental")
        reference.load(rows)
        reference.detect()

        backend = ShardedBackend(
            ext_schema, sigma, delegate="incremental", workers=1, executor="serial"
        )
        backend.load_rows(rows)
        assert backend.supports_incremental
        result = backend.incremental_update([2, 3], [])
        expected = reference.apply_update(delete_tids=[2, 3])
        assert result == expected.violations
        assert backend.last_update_trace["shards_total"] == 1
        reference.close()
        backend.close()


class TestReviewHardening:
    def test_update_with_breakdown_served_from_shard_states(
        self, ext_schema, sigma
    ):
        """apply_update(with_breakdown=True) must not hide a full re-detection."""
        rows = DatasetGenerator(seed=31).generate_rows(400, 10.0)
        reference = DataQualityEngine(ext_schema, sigma, backend="incremental")
        reference.load(rows)
        reference.detect()

        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="serial"
        )
        engine.load(rows)
        engine.backend.ensure_ready()
        baseline = engine.backend.full_detect_count

        delta = DatasetGenerator(seed=32).generate_rows(20, 25.0)
        expected = reference.apply_update(
            insert_rows=delta, delete_tids=[2, 4], with_breakdown=True
        )
        result = engine.apply_update(
            insert_rows=delta, delete_tids=[2, 4], with_breakdown=True
        )
        assert result.violations == expected.violations
        assert result.per_constraint == expected.per_constraint
        assert engine.backend.full_detect_count == baseline, (
            "the breakdown must come from the maintained shard states"
        )
        reference.close()
        engine.close()

    def test_failed_shard_update_invalidates_states(
        self, ext_schema, sigma, monkeypatch
    ):
        """A shard failure mid-update must never leave stale caches behind."""
        import repro.parallel.sharded as sharded_module

        rows = DatasetGenerator(seed=33).generate_rows(300, 10.0)
        reference = DataQualityEngine(ext_schema, sigma, backend="incremental")
        reference.load(rows)
        reference.detect()

        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=3, executor="serial"
        )
        engine.load(rows)
        engine.backend.ensure_ready()

        def exploding(task):
            raise RuntimeError("shard lane died")

        monkeypatch.setattr(sharded_module, "_shard_update", exploding)
        with pytest.raises(RuntimeError):
            engine.backend.incremental_update([3], [])
        assert not engine.backend._states_live, "failed update must invalidate"
        monkeypatch.undo()

        # Storage kept the applied delta; the next update bootstraps afresh
        # from it and the results stay exact.
        expected = reference.apply_update(delete_tids=[3])  # same logical state
        result = engine.backend.incremental_update([], [])
        assert result == expected.violations
        assert engine.backend.last_update_trace["bootstrap"] is True
        reference.close()
        engine.close()
