"""The repro.lint CLI: exit codes, suppressions, and baseline round-trip."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.cli import main
from repro.lint.registry import RULES

CLEAN = """
def double(rows):
    return [row * 2 for row in rows]
"""

VIOLATING = """
import time

def stamp():
    return time.time()
"""

SUPPRESSED = """
import time

def stamp():
    return time.time()  # reprolint: disable=RPL003
"""


@pytest.fixture
def project(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)

    def write(rel: str, text: str) -> None:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")

    return write


def test_clean_tree_exits_zero(project, capsys):
    project("src/repro/engine/ops.py", CLEAN)
    assert main(["src"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_violations_exit_one_with_location(project, capsys):
    project("src/repro/engine/clock.py", VIOLATING)
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "src/repro/engine/clock.py:5" in out
    assert "RPL003" in out


def test_missing_path_is_usage_error(project, capsys):
    assert main(["no-such-dir"]) == 2


def test_syntax_error_is_reported_not_raised(project, capsys):
    project("src/repro/engine/broken.py", "def broken(:\n")
    assert main(["src"]) == 1
    assert "cannot parse" in capsys.readouterr().out


def test_inline_suppression_silences_the_line(project, capsys):
    project("src/repro/engine/clock.py", SUPPRESSED)
    assert main(["src"]) == 0


def test_json_output_shape(project, capsys):
    project("src/repro/engine/clock.py", VIOLATING)
    assert main(["src", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    [violation] = payload["violations"]
    assert violation["code"] == "RPL003"
    assert violation["path"] == "src/repro/engine/clock.py"
    assert violation["line"] == 5


def test_list_rules_prints_the_catalog(project, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_baseline_round_trip(project, tmp_path, capsys):
    project("src/repro/engine/clock.py", VIOLATING)
    assert main(["src"]) == 1
    capsys.readouterr()

    # Write the findings to the default baseline, then re-run: the same
    # finding is reported as baselined and no longer fails the run.
    assert main(["src", "--write-baseline"]) == 0
    assert (tmp_path / ".reprolint-baseline.json").exists()
    capsys.readouterr()

    assert main(["src"]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # A *new* violation still fails even with the baseline in place.
    project("src/repro/engine/clock2.py", VIOLATING)
    assert main(["src"]) == 1


def test_baseline_matches_by_message_not_line(project, tmp_path, capsys):
    project("src/repro/engine/clock.py", VIOLATING)
    assert main(["src", "--write-baseline"]) == 0
    # Shift the finding down two lines: still baselined.
    project("src/repro/engine/clock.py", "\n\n" + textwrap.dedent(VIOLATING))
    assert main(["src"]) == 0


def test_corrupt_baseline_is_usage_error(project, tmp_path, capsys):
    project("src/repro/engine/ops.py", CLEAN)
    (tmp_path / ".reprolint-baseline.json").write_text("[]", encoding="utf-8")
    assert main(["src"]) == 2
