"""Helpers shared by checkers that reason about RPC call sites."""

from __future__ import annotations

import ast

from repro.lint.project import ProjectIndex

__all__ = ["rpc_op_literal"]

_RPC_METHODS = {"submit", "call"}


def rpc_op_literal(call: ast.Call, index: ProjectIndex) -> str | None:
    """The op-name literal of an RPC dispatch call, or ``None``.

    An RPC dispatch site is a ``.submit(...)`` / ``.call(...)`` method
    call whose second positional argument is a string literal — the
    ``(lane, op, payload)`` convention of the fabric — and that either
    names a registered op or carries a ``retryable=`` keyword.  The
    second condition keeps unrelated ``Executor.submit`` calls (whose
    arguments are callables, not strings) out of scope.
    """
    if not isinstance(call.func, ast.Attribute) or call.func.attr not in _RPC_METHODS:
        return None
    if len(call.args) < 2:
        return None
    op = call.args[1]
    if not (isinstance(op, ast.Constant) and isinstance(op.value, str)):
        return None
    has_retry_kw = any(kw.arg == "retryable" for kw in call.keywords)
    if op.value in index.rpc_ops or has_retry_kw:
        return op.value
    return None
