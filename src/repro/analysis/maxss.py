"""The maximum satisfiable subset problem (MAXSS) for eCFDs.

Given a set Σ of eCFDs, MAXSS asks for a maximum-cardinality subset of Σ
that is satisfiable.  Section IV of the paper attacks it through the
approximation-factor-preserving reduction to MAXGSAT implemented in
:mod:`repro.analysis.reduction`:

1. build ``f(Σ)``;
2. run any MAXGSAT (approximation) algorithm to obtain an assignment ``p``
   and its satisfied-formula set ``Φ_m``;
3. return ``g(Φ_m)`` — the eCFDs of Σ satisfied by the template tuple
   decoded from ``p`` — which is guaranteed to be a satisfiable subset with
   ``card(g(Φ_m)) ≥ card(Φ_m)``.

The paper then reads off a three-way verdict for the satisfiability of the
whole set: if the returned subset is all of Σ, Σ is satisfiable; if it is
smaller than ``(1 - ε)·|Σ|`` for an ε-approximate MAXGSAT algorithm, Σ is
certainly unsatisfiable; otherwise the approximation is inconclusive.
:class:`MaxSSResult.verdict` exposes exactly that trichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.analysis.reduction import ReductionResult, reduce_to_maxgsat
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.schema import Value
from repro.sat.maxgsat import MaxGSATInstance, MaxGSATResult, solve_best

__all__ = ["MaxSSResult", "max_satisfiable_subset"]

Solver = Callable[[MaxGSATInstance], MaxGSATResult]


@dataclass(frozen=True)
class MaxSSResult:
    """Outcome of the MAXSS approximation.

    Attributes
    ----------
    constraints:
        The input Σ, in order.
    satisfiable_indices:
        Indices (into ``constraints``) of the satisfiable subset ``g(Φ_m)``.
    witness:
        The decoded template tuple; the single-tuple database ``{witness}``
        satisfies every constraint in the returned subset.
    maxgsat_score:
        ``card(Φ_m)`` — the number of formulas the MAXGSAT solver satisfied
        (always ``≤ card(g(Φ_m))``, property (3) of the reduction).
    """

    constraints: tuple[ECFD, ...]
    satisfiable_indices: tuple[int, ...]
    witness: dict[str, Value]
    maxgsat_score: int

    @property
    def satisfiable_subset(self) -> list[ECFD]:
        """The eCFDs of the satisfiable subset, in input order."""
        return [self.constraints[index] for index in self.satisfiable_indices]

    @property
    def cardinality(self) -> int:
        """``card(g(Φ_m))``."""
        return len(self.satisfiable_indices)

    def verdict(self, epsilon: float = 0.0) -> str:
        """The paper's three-way satisfiability verdict.

        * ``"satisfiable"`` — the subset is all of Σ;
        * ``"unsatisfiable"`` — the subset has fewer than ``(1 - ε)·|Σ|``
          members, which an ε-approximation could not produce if Σ were
          satisfiable;
        * ``"unknown"`` — anything in between.
        """
        total = len(self.constraints)
        if self.cardinality == total:
            return "satisfiable"
        if self.cardinality < (1.0 - epsilon) * total:
            return "unsatisfiable"
        return "unknown"


def max_satisfiable_subset(
    sigma: ECFDSet | Sequence[ECFD],
    solver: Solver = solve_best,
) -> MaxSSResult:
    """Approximate the maximum satisfiable subset of Σ.

    Parameters
    ----------
    sigma:
        The input eCFDs (all over one schema).
    solver:
        Any MAXGSAT solver from :mod:`repro.sat` (or a user-supplied one);
        the approximation factor of the returned subset is inherited from
        the solver, per Proposition 4.1.
    """
    constraints = list(sigma)
    reduction: ReductionResult = reduce_to_maxgsat(constraints)
    outcome = solver(reduction.instance)
    satisfied_indices = reduction.decode_satisfied(outcome.assignment)
    witness = reduction.decode_tuple(outcome.assignment)
    return MaxSSResult(
        constraints=tuple(constraints),
        satisfiable_indices=tuple(satisfied_indices),
        witness=witness,
        maxgsat_score=outcome.score,
    )
