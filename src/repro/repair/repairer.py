"""Greedy value-modification repair of eCFD violations.

Given a relation D and a *satisfiable* set Σ of eCFDs, a repair is a
modified relation D' that satisfies Σ; a good repair changes as little as
possible.  Finding a minimum-cost repair is already intractable for plain
CFDs, so — like the heuristic of Bohannon et al. (SIGMOD 2005) that the
paper points to — :class:`GreedyRepairer` applies local, greedy fixes and
iterates until the data is clean:

* a **single-tuple violation** of a pattern constraint is fixed by
  overwriting the failing RHS / Yp attribute with a value admitted by the
  pattern (the cheapest local fix; the replacement is chosen
  deterministically and re-checked against the other constraints on the next
  round);
* a **multiple-tuple violation** of an embedded FD is fixed by electing the
  most frequent RHS combination inside the offending group and rewriting the
  minority tuples to it (majority voting minimises the number of changed
  cells for that group).

Each round runs the reference detector, applies one batch of fixes and
recounts; the loop stops when the relation is clean or when ``max_rounds``
is exhausted (the greedy fixes are not guaranteed to converge for every
constraint interaction, in which case a :class:`~repro.exceptions.RepairError`
is raised rather than returning dirty data silently).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.analysis.satisfiability import is_satisfiable
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import Value
from repro.core.violations import ViolationSet
from repro.detection.naive import NaiveDetector
from repro.exceptions import RepairError
from repro.repair.cost import CellChange, RepairCostModel

__all__ = ["RepairResult", "GreedyRepairer"]


class RepairResult:
    """The outcome of a repair: the repaired relation plus an audit trail."""

    def __init__(
        self,
        relation: Relation,
        changes: list[CellChange],
        cost: float,
        rounds: int,
    ):
        self.relation = relation
        self.changes = tuple(changes)
        self.cost = cost
        self.rounds = rounds

    @property
    def change_count(self) -> int:
        """Number of modified cells."""
        return len(self.changes)

    def changed_tids(self) -> frozenset[int]:
        """Identifiers of the tuples touched by the repair."""
        return frozenset(change.tid for change in self.changes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RepairResult(cells={self.change_count}, cost={self.cost}, rounds={self.rounds})"
        )


class GreedyRepairer:
    """Greedy value-modification repair for a set of eCFDs."""

    def __init__(
        self,
        sigma: ECFDSet | Sequence[ECFD],
        cost_model: RepairCostModel | None = None,
        max_rounds: int = 10,
    ):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self.cost_model = cost_model if cost_model is not None else RepairCostModel()
        self.max_rounds = max_rounds
        self.detector = NaiveDetector(self.sigma)
        self._fragments = self.sigma.normalize()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def repair(self, relation: Relation) -> RepairResult:
        """Return a repaired copy of ``relation`` satisfying Σ.

        Raises
        ------
        RepairError
            If Σ is unsatisfiable (no repair can exist) or the greedy loop
            fails to converge within ``max_rounds``.
        """
        if not is_satisfiable(self.sigma):
            raise RepairError("the constraint set is unsatisfiable; no repair exists")

        working = relation.copy()
        changes: list[CellChange] = []
        for round_number in range(1, self.max_rounds + 1):
            violations = self.detector.detect(working)
            if violations.is_clean():
                return RepairResult(
                    working, changes, self.cost_model.cost(changes), rounds=round_number - 1
                )
            changes.extend(self._fix_single_violations(working, violations))
            changes.extend(self._fix_multi_violations(working, violations))

        final = self.detector.detect(working)
        if final.is_clean():
            return RepairResult(working, changes, self.cost_model.cost(changes), rounds=self.max_rounds)
        raise RepairError(
            f"greedy repair did not converge within {self.max_rounds} rounds; "
            f"{len(final)} tuples remain dirty"
        )

    # ------------------------------------------------------------------
    # Single-tuple (pattern-constraint) fixes
    # ------------------------------------------------------------------
    def _fix_single_violations(
        self, relation: Relation, violations: ViolationSet
    ) -> list[CellChange]:
        changes: list[CellChange] = []
        fragment_by_cid = dict(self._fragments)
        for record in violations.single_records:
            tuple_ = relation.get(record.tid)
            if tuple_ is None:
                continue
            fragment = fragment_by_cid.get(record.constraint_id)
            if fragment is None:
                continue
            pattern = fragment.tableau[0]
            if not pattern.matches_lhs(tuple_) or pattern.matches_rhs(tuple_):
                continue  # already fixed by an earlier change this round
            attribute = pattern.failing_rhs_attribute(tuple_)
            if attribute is None:
                continue
            replacement = self._pick_replacement(fragment, attribute, tuple_[attribute], relation)
            if replacement is None or replacement == tuple_[attribute]:
                continue
            changes.append(
                CellChange(record.tid, attribute, tuple_[attribute], replacement)
            )
            self._apply_change(relation, record.tid, attribute, replacement)
        return changes

    def _pick_replacement(
        self, fragment: ECFD, attribute: str, current: Value, relation: Relation
    ) -> Value | None:
        """A replacement value admitted by the fragment's RHS pattern.

        Prefers values already occurring in the column (they are more likely
        to be the intended correct value and to agree with other
        constraints); falls back to any admissible domain value.
        """
        pattern = fragment.tableau[0].rhs_entry(attribute)
        for candidate in sorted(relation.active_domain(attribute), key=str):
            if candidate != current and pattern.matches(candidate):
                return candidate
        return pattern.pick(self.sigma.schema.domain(attribute), avoid=[current])

    # ------------------------------------------------------------------
    # Multiple-tuple (embedded FD) fixes
    # ------------------------------------------------------------------
    def _fix_multi_violations(
        self, relation: Relation, violations: ViolationSet
    ) -> list[CellChange]:
        changes: list[CellChange] = []
        fragment_by_cid = dict(self._fragments)
        for record in violations.multi_records:
            fragment = fragment_by_cid.get(record.constraint_id)
            if fragment is None or not fragment.rhs:
                continue
            members = [relation.get(tid) for tid in sorted(record.tids)]
            members = [m for m in members if m is not None]
            if len(members) < 2:
                continue
            # Majority vote on the RHS combination, restricted to combinations
            # that also satisfy the fragment's own RHS pattern (otherwise the
            # elected value would immediately re-violate the pattern constraint).
            pattern = fragment.tableau[0]
            combos = Counter(
                member.project(fragment.rhs)
                for member in members
                if all(pattern.rhs_entry(a).matches(member[a]) for a in fragment.rhs)
            )
            if not combos:
                combos = Counter(member.project(fragment.rhs) for member in members)
            elected, _ = combos.most_common(1)[0]
            for member in members:
                assert member.tid is not None
                for attribute, target in zip(fragment.rhs, elected):
                    if member[attribute] != target:
                        changes.append(CellChange(member.tid, attribute, member[attribute], target))
                        self._apply_change(relation, member.tid, attribute, target)
        return changes

    # ------------------------------------------------------------------
    # In-place cell update
    # ------------------------------------------------------------------
    def _apply_change(self, relation: Relation, tid: int, attribute: str, value: Value) -> None:
        current = relation.get(tid)
        if current is None:
            return
        updated = current.replace(**{attribute: value})
        relation._tuples[tid] = updated
