"""Integration tests across packages: the full pipeline the examples exercise."""

from repro.analysis import irredundant_cover, is_satisfiable, max_satisfiable_subset
from repro.core import ECFDSet, Relation, cust_ext_schema, format_ecfd, parse_ecfd
from repro.datagen import DatasetGenerator, UpdateGenerator, paper_workload
from repro.detection import BatchDetector, ECFDDatabase, IncrementalDetector, NaiveDetector
from repro.discovery import discover_ecfd
from repro.repair import GreedyRepairer


class TestCleaningPipeline:
    """generate -> validate Σ -> detect (SQL) -> repair -> re-detect."""

    def test_full_pipeline_on_generated_data(self):
        sigma = paper_workload()
        assert is_satisfiable(sigma)

        generator = DatasetGenerator(seed=21)
        relation = generator.generate(250, noise_percent=5.0)

        with ECFDDatabase(cust_ext_schema()) as db:
            db.load_relation(relation)
            detector = BatchDetector(db, sigma)
            violations = detector.detect()
            assert not violations.is_clean()
            # The SQL detector and the reference semantics agree.
            assert violations == NaiveDetector(sigma).detect(relation)

        repaired = GreedyRepairer(sigma, max_rounds=12).repair(relation)
        assert NaiveDetector(sigma).detect(repaired.relation).is_clean()

        with ECFDDatabase(cust_ext_schema()) as db:
            db.load_relation(repaired.relation)
            assert BatchDetector(db, sigma).detect().is_clean()

    def test_monitoring_pipeline_with_updates(self):
        sigma = paper_workload()
        generator = DatasetGenerator(seed=22)
        rows = generator.generate_rows(200, 5.0)

        with ECFDDatabase(cust_ext_schema()) as db:
            db.insert_tuples(rows)
            monitor = IncrementalDetector(db, sigma)
            initial = monitor.initialize()

            updates = UpdateGenerator(DatasetGenerator(seed=23), seed=24)
            for _ in range(3):
                batch = updates.make_batch(db.all_tids(), insert_count=30, delete_count=20,
                                           noise_percent=5.0)
                monitor.delete_tuples(batch.delete_tids)
                current = monitor.insert_tuples(list(batch.insert_rows))

            # The maintained flags equal a from-scratch recomputation.
            final_relation = db.to_relation()
        with ECFDDatabase(cust_ext_schema()) as reference:
            reference.load_relation(final_relation)
            assert current == BatchDetector(reference, sigma).detect()
        assert initial is not None


class TestConstraintLifecycle:
    """discover -> serialize -> parse -> analyse -> deploy."""

    def test_discovered_constraint_round_trips_and_deploys(self):
        schema = cust_ext_schema()
        clean = DatasetGenerator(seed=25).generate(300, noise_percent=0.0)
        discovered = discover_ecfd(clean, ["CT"], "AC", min_support=3, min_confidence=1.0)
        assert discovered.ecfd is not None

        text = format_ecfd(discovered.ecfd)
        parsed = parse_ecfd(text, schema)
        assert parsed.tableau == discovered.ecfd.tableau

        sigma = ECFDSet(list(paper_workload()) + [parsed])
        assert is_satisfiable(sigma)
        cover = irredundant_cover([parsed, paper_workload()[0]])
        assert cover  # never empty

        dirty = DatasetGenerator(seed=26).generate(200, noise_percent=6.0)
        with ECFDDatabase(schema) as db:
            db.load_relation(dirty)
            violations = BatchDetector(db, sigma).detect()
        assert violations == NaiveDetector(sigma).detect(dirty)

    def test_maxss_salvages_a_broken_constraint_set(self):
        schema = cust_ext_schema()
        sigma = list(paper_workload())
        # Add a constraint that contradicts ψ2: NYC must avoid all NYC codes.
        from repro.core import ECFD
        from repro.core.patterns import ComplementSet

        saboteur = ECFD(
            schema, ["CT"], [], ["AC"],
            tableau=[({"CT": {"NYC"}}, {"AC": ComplementSet(["212", "718", "646", "347", "917"])})],
            name="saboteur",
        )
        force_nyc = ECFD(
            schema, ["AC"], [], ["CT"],
            tableau=[({"AC": "_"}, {"CT": {"NYC"}})],
            name="force_nyc",
        )
        broken = sigma + [saboteur, force_nyc]
        assert not is_satisfiable(broken)
        result = max_satisfiable_subset(broken)
        assert result.cardinality < len(broken)
        assert is_satisfiable(result.satisfiable_subset)
