"""Fig. 13 (growth): the same detection pipeline on two SQL engines.

BATCHDETECT compiles the whole eCFD workload to a fixed pair of SQL
statements (the single-tuple ``Q_sv`` scan and the ``GROUP BY`` macro /
``Q_mv`` pass), so the engine underneath is swappable: the ``batch``
backend runs it on SQLite, ``batch-duckdb`` runs the *same* generated SQL
— emitted through :mod:`repro.detection.dialect` — on DuckDB's columnar
executor.  This benchmark sweeps |D| across both engines to produce the
"same pipeline, two engines" figure and asserts the engines agree
bit-exactly on the violation set at every point.

``test_fig13_duckdb_batch_detect`` is the stable-id hot path tracked by
the CI perf gate; its ``extra_info`` carries ``speedup_vs_sqlite``, which
``benchmarks/check_regression.py`` gates at >= 3.0x once the relation
reaches paper scale (|D| >= 100k).  Below that, per-statement overhead
dominates and the reading is reported without gating.

Every DuckDB arm skips cleanly when the optional ``duckdb`` package is
absent (``pip install 'repro[duckdb]'``); only CI's ``engines`` job times
it for real.
"""

import time

import pytest

from conftest import BENCH_SIZE, dataset_rows, prepared_engine, sweep

from repro.detection.engines import duckdb_available

#: |D| sweep: 10k -> 1M at the paper's own scale (REPRO_BENCH_SIZE=100000).
SIZES = sweep(
    [BENCH_SIZE // 10, BENCH_SIZE // 2, BENCH_SIZE, 5 * BENCH_SIZE, 10 * BENCH_SIZE]
)
ENGINE_BACKENDS = {"sqlite": "batch", "duckdb": "batch-duckdb"}


def _require_duckdb() -> None:
    if not duckdb_available():
        pytest.skip("duckdb not installed — install the optional 'repro[duckdb]' extra")


def _timed_detect(rows, backend, sigma, rounds=1):
    """Best-of-``rounds`` wall-clock detect() on a freshly loaded engine."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        engine = prepared_engine(rows, backend, sigma)
        started = time.perf_counter()
        result = engine.detect()
        best = min(best, time.perf_counter() - started)
        engine.close()
    return result, best


@pytest.mark.parametrize("engine_name", sorted(ENGINE_BACKENDS))
@pytest.mark.parametrize("size", SIZES)
def test_fig13_cross_engine_batch_detect(benchmark, engine_name, size, base_workload):
    if engine_name == "duckdb":
        _require_duckdb()
    rows = dataset_rows(size)
    timings = []

    def setup():
        return (prepared_engine(rows, ENGINE_BACKENDS[engine_name], base_workload),), {}

    def run(engine):
        started = time.perf_counter()
        result = engine.detect()
        timings.append(time.perf_counter() - started)
        engine.close()
        return result

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["tuples"] = size
    benchmark.extra_info["dirty"] = result.dirty_count
    if engine_name == "duckdb":
        # The cross-engine reading: re-run the identical pipeline on SQLite
        # (untimed by pytest-benchmark) so every DuckDB point carries its own
        # speedup — and its own bit-exactness proof.
        reference, sqlite_seconds = _timed_detect(rows, "batch", base_workload)
        duckdb_seconds = min(timings)
        assert result.violations == reference.violations
        benchmark.extra_info["sqlite_seconds"] = sqlite_seconds
        benchmark.extra_info["duckdb_seconds"] = duckdb_seconds
        benchmark.extra_info["speedup_vs_sqlite"] = (
            sqlite_seconds / duckdb_seconds if duckdb_seconds else float("inf")
        )
    else:
        benchmark.extra_info["sqlite_seconds"] = min(timings)


def test_fig13_duckdb_batch_detect(benchmark, base_workload):
    """The tracked cross-engine hot path: DuckDB BATCHDETECT at BENCH_SIZE."""
    _require_duckdb()
    rows = dataset_rows(BENCH_SIZE)
    timings = []

    def setup():
        return (prepared_engine(rows, "batch-duckdb", base_workload),), {}

    def run(engine):
        started = time.perf_counter()
        result = engine.detect()
        timings.append(time.perf_counter() - started)
        engine.close()
        return result

    # Multiple rounds: this mean feeds the CI regression gate once a
    # duckdb-equipped runner regenerates the baseline.
    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    reference, sqlite_seconds = _timed_detect(rows, "batch", base_workload, rounds=3)
    duckdb_seconds = min(timings)
    assert result.violations == reference.violations

    benchmark.extra_info["engine"] = "duckdb"
    benchmark.extra_info["tuples"] = BENCH_SIZE
    benchmark.extra_info["dirty"] = result.dirty_count
    benchmark.extra_info["sqlite_seconds"] = sqlite_seconds
    benchmark.extra_info["duckdb_seconds"] = duckdb_seconds
    benchmark.extra_info["speedup_vs_sqlite"] = (
        sqlite_seconds / duckdb_seconds if duckdb_seconds else float("inf")
    )
