"""A pure-Python reference detector (the oracle for the SQL detectors).

The SQL-based algorithms of Section V are the paper's contribution; to trust
a reproduction of them one needs an independent implementation of the
violation semantics of Section II to compare against.  :class:`NaiveDetector`
is that oracle: it evaluates every (normalized) eCFD directly over an
in-memory relation using the reference semantics implemented in
:meth:`repro.core.ecfd.ECFD.violations` — one pass per pattern tuple, no SQL,
no encoding.

Besides serving as the correctness baseline in the integration and
property-based tests, the naive detector is also the "direct extension"
strawman that the ablation benchmark compares the encoded SQL approach
against: its cost grows with the number of pattern tuples in Σ because each
pattern is evaluated by a separate scan, whereas BATCHDETECT issues a fixed
number of queries regardless of |Σ|.

The detector mirrors the calling conventions of the SQL detectors so the
engine façade (:mod:`repro.engine`) can adapt all three uniformly: a
relation may be bound at construction time (making ``detect()`` callable
with no arguments, like :meth:`repro.detection.batch.BatchDetector.detect`)
and ``violation_counts()`` reports the SV / MV / dirty counts of the most
recent run.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.violations import ViolationSet
from repro.detection.database import ECFDDatabase
from repro.detection.summaries import Summary, summarize_rows
from repro.exceptions import DetectionError

__all__ = ["NaiveDetector"]


class NaiveDetector:
    """Reference (non-SQL) detector for eCFD violations.

    Parameters
    ----------
    sigma:
        The constraints to check.
    relation:
        Optional relation to bind, enabling the no-argument ``detect()``
        call convention shared with the SQL detectors.
    """

    def __init__(self, sigma: ECFDSet | Sequence[ECFD], relation: Relation | None = None):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self.relation = relation
        self.last_violations: ViolationSet | None = None

    def detect(self, relation: Relation | None = None) -> ViolationSet:
        """All violations of Σ in ``relation`` (or in the bound relation).

        Raises
        ------
        DetectionError
            If no relation was passed and none is bound.
        """
        target = relation if relation is not None else self.relation
        if target is None:
            raise DetectionError(
                "NaiveDetector.detect() needs a relation: pass one explicitly "
                "or bind it at construction time"
            )
        self.last_violations = self.sigma.violations(target)
        return self.last_violations

    def detect_database(self, database: ECFDDatabase) -> ViolationSet:
        """All violations of Σ in a SQLite-backed table.

        The table is materialised back into an in-memory relation (tuple
        identifiers preserved) and checked with the reference semantics, so
        the result is directly comparable with
        :meth:`repro.detection.batch.BatchDetector.detect`.
        """
        return self.detect(database.to_relation())

    def fd_group_summary(
        self, fragments: Sequence[tuple[int, ECFD]], relation: Relation | None = None
    ) -> Summary:
        """Embedded-FD group summaries of the bound (or given) relation.

        The shard-side emission hook of single-pass sharded detection (see
        :mod:`repro.detection.summaries`): per fragment, every tuple matching
        the LHS pattern contributes its ``(xv, yv)`` projection and tid.
        Bounded output — aggregated groups, never raw rows.
        """
        target = relation if relation is not None else self.relation
        if target is None:
            raise DetectionError(
                "NaiveDetector.fd_group_summary() needs a relation: pass one "
                "explicitly or bind it at construction time"
            )
        return summarize_rows(fragments, ((t.tid, t) for t in target.tuples()))

    def violation_counts(self) -> dict[str, int]:
        """SV / MV / dirty counts of the most recent detection run.

        Runs a detection first when a relation is bound but ``detect()`` has
        not been called yet, matching the lazy behaviour callers get from
        the SQL detectors' flag-count queries.
        """
        if self.last_violations is None:
            if self.relation is None:
                raise DetectionError(
                    "no detection has run yet and no relation is bound; "
                    "call detect(relation) first"
                )
            self.detect()
        assert self.last_violations is not None
        return self.last_violations.summary()
