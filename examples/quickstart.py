"""Quickstart: the paper's running example (Fig. 1 and Fig. 2), end to end.

Builds the ``cust`` relation instance D0 of Fig. 1, expresses the two eCFDs
ψ1 / ψ2 of Fig. 2 in the textual syntax, and runs the whole workflow through
the :class:`~repro.engine.DataQualityEngine` façade — once on the SQL-based
BATCHDETECT backend and once on the pure-Python reference backend, checking
that the two agree.

Run with::

    python examples/quickstart.py
"""

from repro import DataQualityEngine, cust_schema, parse_ecfd
from repro.core import ECFDSet

#: The six tuples of Fig. 1 (t1 .. t6).
FIG1_ROWS = [
    {"AC": "718", "PN": "1111111", "NM": "Mike", "STR": "Tree Ave.", "CT": "Albany", "ZIP": "12238"},
    {"AC": "518", "PN": "2222222", "NM": "Joe", "STR": "Elm Str.", "CT": "Colonie", "ZIP": "12205"},
    {"AC": "518", "PN": "2222222", "NM": "Jim", "STR": "Oak Ave.", "CT": "Troy", "ZIP": "12181"},
    {"AC": "100", "PN": "1111111", "NM": "Rick", "STR": "8th Ave.", "CT": "NYC", "ZIP": "10001"},
    {"AC": "212", "PN": "3333333", "NM": "Ben", "STR": "5th Ave.", "CT": "NYC", "ZIP": "10016"},
    {"AC": "646", "PN": "4444444", "NM": "Ian", "STR": "High St.", "CT": "NYC", "ZIP": "10011"},
]

#: The two eCFDs of Fig. 2 in the library's textual syntax.
PSI1 = "(cust: [CT] -> [AC], { (!{NYC, LI} || _); ({Albany, Colonie, Troy} || {518}) })"
PSI2 = "(cust: [CT] -> [] | [AC], { ({NYC} || {212, 347, 646, 718, 917}) })"


def main() -> None:
    schema = cust_schema()
    sigma = ECFDSet([parse_ecfd(PSI1, schema), parse_ecfd(PSI2, schema)])

    print("Constraints:")
    for ecfd in sigma:
        print(f"  {ecfd}")

    # SQL-based BATCHDETECT on SQLite, through the engine façade.
    with DataQualityEngine(schema, sigma, backend="batch") as engine:
        engine.load(FIG1_ROWS)
        result = engine.detect()
        print("\nBATCHDETECT (SQLite):")
        print(f"  single-tuple violations (SV): tuples {sorted(result.violations.sv_tids)}")
        print(f"  multi-tuple violations  (MV): tuples {sorted(result.violations.mv_tids)}")
        print(f"  dirty tuples: {sorted(result.violations.violating_tids)}")

    # The pure-Python reference semantics: same engine API, different backend.
    with DataQualityEngine(schema, sigma, backend="naive") as reference:
        reference.load(FIG1_ROWS)
        oracle = reference.detect()
        print("\nReference semantics (naive backend):")
        print(f"  dirty tuples: {sorted(oracle.violations.violating_tids)}")
        print(f"  agrees with BATCHDETECT: {oracle.violations == result.violations}")

    print("\nAs in Example 2.2 of the paper, t1 (Albany with area code 718) and")
    print("t4 (NYC with area code 100) are the two dirty tuples.")


if __name__ == "__main__":
    main()
