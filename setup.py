"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml`` (PEP 621).  This
file exists so the package can be installed in environments without the
``wheel`` package (where PEP 660 editable installs are unavailable) via::

    python setup.py develop

Those degraded environments may also carry a setuptools too old to read
PEP 621 metadata, so the essentials are duplicated here explicitly — keep
``version`` in sync with ``pyproject.toml`` and ``repro.__version__``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "eCFDs: extended Conditional Functional Dependencies — "
        "reproduction of Bravo, Fan, Geerts, Ma (ICDE 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
