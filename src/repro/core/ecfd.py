"""Extended Conditional Functional Dependencies (eCFDs) — the paper's core.

An eCFD (Section II) is a triple ``φ = (R: X -> Y, Yp, Tp)`` where

* ``X``, ``Y``, ``Yp ⊆ attr(R)`` with ``Y ∩ Yp = ∅``;
* ``X -> Y`` is a standard FD, the *embedded FD* of ``φ``;
* ``Tp`` is a *pattern tableau*: a finite set of pattern tuples over the
  attributes ``X ∪ Y ∪ Yp``, where each entry is a wildcard ``'_'``, a
  finite value set ``S`` or a complement set ``S̄``.  If an attribute ``A``
  occurs on both sides, the pattern tuple carries two entries ``tp[A_L]``
  and ``tp[A_R]``.

Semantics.  For an instance ``I`` and a pattern tuple ``tp``, let
``I(tp) = {t ∈ I | t[X] ≍ tp[X]}``.  Then ``I ⊨ φ`` iff for every
``tp ∈ Tp``:

1. ``I(tp)`` satisfies the embedded FD ``X -> Y``; and
2. every ``t ∈ I(tp)`` matches the RHS pattern: ``t[Y ∪ Yp] ≍ tp[Y ∪ Yp]``.

Violations of (2) involve a *single* tuple (SV); violations of (1) need at
least two tuples (MV).

This module provides :class:`PatternTuple`, :class:`ECFD` and
:class:`ECFDSet` with the operations the rest of the library relies on:
matching, violation enumeration (the reference semantics used by the naive
detector and by the tests), normalisation into single-pattern eCFDs (the
form assumed by the SQL encoding of Section V), and active-domain
computation (the basis of the Section III/IV constructions).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.fd import FunctionalDependency
from repro.core.instance import Relation, RelationTuple
from repro.core.patterns import PatternValue, Wildcard, pattern_from_literal
from repro.core.schema import RelationSchema, Value
from repro.core.violations import (
    MultiTupleViolation,
    SingleTupleViolation,
    ViolationSet,
)
from repro.exceptions import ConstraintError, PatternError

__all__ = ["PatternTuple", "ECFD", "ECFDSet"]


class PatternTuple:
    """One pattern tuple (one *pattern constraint*) of an eCFD tableau.

    A pattern tuple maps each attribute position to a :class:`PatternValue`.
    Positions are identified by ``(attribute, side)`` where ``side`` is
    ``"L"`` for LHS occurrences and ``"R"`` for RHS / Yp occurrences; the
    distinction only matters when an attribute appears on both sides of the
    embedded FD (the ``tp[A_L]`` / ``tp[A_R]`` notation of the paper).

    Construction accepts convenient literals via
    :func:`repro.core.patterns.pattern_from_literal`: strings/ints become
    singleton sets, Python sets become value sets, ``"_"``/``None`` becomes
    the wildcard.
    """

    def __init__(
        self,
        lhs: Mapping[str, object],
        rhs: Mapping[str, object],
    ):
        self._lhs: dict[str, PatternValue] = {
            attribute: pattern_from_literal(value) for attribute, value in lhs.items()
        }
        self._rhs: dict[str, PatternValue] = {
            attribute: pattern_from_literal(value) for attribute, value in rhs.items()
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def lhs(self) -> dict[str, PatternValue]:
        """Pattern entries for the LHS attributes ``X``."""
        return dict(self._lhs)

    @property
    def rhs(self) -> dict[str, PatternValue]:
        """Pattern entries for the RHS attributes ``Y ∪ Yp``."""
        return dict(self._rhs)

    def lhs_entry(self, attribute: str) -> PatternValue:
        """The LHS pattern entry for ``attribute``."""
        return self._lhs[attribute]

    def rhs_entry(self, attribute: str) -> PatternValue:
        """The RHS pattern entry for ``attribute``."""
        return self._rhs[attribute]

    def constants(self) -> dict[str, frozenset[Value]]:
        """Constants mentioned per attribute (merging both sides).

        This is the per-pattern contribution to the *active domain* used by
        the satisfiability / implication / MAXSS constructions.
        """
        merged: dict[str, set[Value]] = {}
        for attribute, pattern in list(self._lhs.items()) + list(self._rhs.items()):
            merged.setdefault(attribute, set()).update(pattern.constants())
        return {attribute: frozenset(values) for attribute, values in merged.items()}

    # ------------------------------------------------------------------
    # Matching (the ≍ relation lifted to tuples)
    # ------------------------------------------------------------------
    def matches_lhs(self, t: RelationTuple | Mapping[str, Value]) -> bool:
        """Whether ``t[X] ≍ tp[X]``."""
        return all(pattern.matches(t[attribute]) for attribute, pattern in self._lhs.items())

    def matches_rhs(self, t: RelationTuple | Mapping[str, Value]) -> bool:
        """Whether ``t[Y ∪ Yp] ≍ tp[Y ∪ Yp]``."""
        return all(pattern.matches(t[attribute]) for attribute, pattern in self._rhs.items())

    def failing_rhs_attribute(self, t: RelationTuple | Mapping[str, Value]) -> str | None:
        """The first RHS attribute whose value fails to match, if any."""
        for attribute in sorted(self._rhs):
            if not self._rhs[attribute].matches(t[attribute]):
                return attribute
        return None

    # ------------------------------------------------------------------
    # Equality / display
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (
            tuple(sorted((a, p.to_text()) for a, p in self._lhs.items())),
            tuple(sorted((a, p.to_text()) for a, p in self._rhs.items())),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PatternTuple):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def to_text(self) -> str:
        """Render in the paper-like ``(lhs || rhs)`` notation."""
        lhs = ", ".join(f"{a}: {p.to_text()}" for a, p in sorted(self._lhs.items()))
        rhs = ", ".join(f"{a}: {p.to_text()}" for a, p in sorted(self._rhs.items()))
        return f"({lhs} || {rhs})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatternTuple{self.to_text()}"


class ECFD:
    """An extended conditional functional dependency ``(R: X -> Y, Yp, Tp)``.

    Parameters
    ----------
    schema:
        The relation schema ``R``.
    lhs:
        The attributes ``X`` of the embedded FD.
    rhs:
        The attributes ``Y`` of the embedded FD (may be empty, as in eCFD
        ψ2 of Fig. 2 where the constraint is carried entirely by ``Yp``).
    pattern_rhs:
        The attributes ``Yp`` (may be empty; a plain CFD has ``Yp = ∅``).
    tableau:
        The pattern tuples.  Each may be a :class:`PatternTuple` or a pair
        ``(lhs_mapping, rhs_mapping)`` of literal mappings.
    name:
        Optional human-readable identifier used in diagnostics.
    """

    def __init__(
        self,
        schema: RelationSchema,
        lhs: Iterable[str],
        rhs: Iterable[str],
        pattern_rhs: Iterable[str] = (),
        tableau: Iterable[PatternTuple | tuple[Mapping[str, object], Mapping[str, object]]] = (),
        name: str | None = None,
    ):
        self.schema = schema
        self.lhs: tuple[str, ...] = tuple(schema.check_attributes(lhs, context="eCFD LHS"))
        self.rhs: tuple[str, ...] = tuple(schema.check_attributes(rhs, context="eCFD RHS"))
        self.pattern_rhs: tuple[str, ...] = tuple(
            schema.check_attributes(pattern_rhs, context="eCFD Yp")
        )
        self.name = name

        if set(self.rhs) & set(self.pattern_rhs):
            raise ConstraintError(
                f"Y and Yp must be disjoint; both contain "
                f"{sorted(set(self.rhs) & set(self.pattern_rhs))}"
            )
        if len(set(self.lhs)) != len(self.lhs):
            raise ConstraintError(f"duplicate attributes in eCFD LHS {self.lhs}")
        if len(set(self.rhs)) != len(self.rhs):
            raise ConstraintError(f"duplicate attributes in eCFD RHS {self.rhs}")
        if len(set(self.pattern_rhs)) != len(self.pattern_rhs):
            raise ConstraintError(f"duplicate attributes in eCFD Yp {self.pattern_rhs}")
        if not self.rhs and not self.pattern_rhs:
            raise ConstraintError("an eCFD needs a non-empty Y or Yp")

        self.tableau: list[PatternTuple] = []
        for entry in tableau:
            self.add_pattern(entry)
        if not self.tableau:
            raise ConstraintError("an eCFD tableau must contain at least one pattern tuple")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_pattern(
        self, entry: PatternTuple | tuple[Mapping[str, object], Mapping[str, object]]
    ) -> PatternTuple:
        """Validate and append one pattern tuple to the tableau."""
        if isinstance(entry, PatternTuple):
            pattern = entry
        else:
            lhs_map, rhs_map = entry
            pattern = PatternTuple(lhs_map, rhs_map)
        self._validate_pattern(pattern)
        self.tableau.append(pattern)
        return pattern

    def _validate_pattern(self, pattern: PatternTuple) -> None:
        lhs_attrs = set(pattern.lhs)
        rhs_attrs = set(pattern.rhs)
        expected_lhs = set(self.lhs)
        expected_rhs = set(self.rhs) | set(self.pattern_rhs)
        if lhs_attrs != expected_lhs:
            raise PatternError(
                f"pattern tuple LHS attributes {sorted(lhs_attrs)} do not cover the "
                f"eCFD LHS {sorted(expected_lhs)}"
            )
        if rhs_attrs != expected_rhs:
            raise PatternError(
                f"pattern tuple RHS attributes {sorted(rhs_attrs)} do not cover the "
                f"eCFD RHS ∪ Yp {sorted(expected_rhs)}"
            )

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    @property
    def embedded_fd(self) -> FunctionalDependency:
        """The embedded FD ``X -> Y``."""
        return FunctionalDependency(self.schema, self.lhs, self.rhs)

    @property
    def rhs_all(self) -> tuple[str, ...]:
        """``RHS(φ) = Y ∪ Yp`` in a deterministic order (Y first, then Yp)."""
        return self.rhs + self.pattern_rhs

    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by the eCFD."""
        return frozenset(self.lhs) | frozenset(self.rhs) | frozenset(self.pattern_rhs)

    def is_cfd(self) -> bool:
        """Whether this eCFD is expressible as a plain CFD.

        True when ``Yp = ∅`` and every pattern entry is a wildcard or a
        singleton value set (no disjunction, no inequality).
        """
        if self.pattern_rhs:
            return False
        for pattern in self.tableau:
            for entry in list(pattern.lhs.values()) + list(pattern.rhs.values()):
                if entry.is_wildcard:
                    continue
                constants = entry.constants()
                if entry.to_text().startswith("!") or len(constants) != 1:
                    return False
        return True

    def requires_colocation(self) -> bool:
        """Whether sharded detection must co-locate tuples agreeing on ``X``.

        Embedded-FD (multi-tuple) violations are witnessed by *pairs* of
        tuples sharing an ``X`` projection, so a hash partitioner has to
        route all tuples of a group to the same shard.  Constraints carried
        entirely by ``Yp`` (``Y = ∅``) only ever produce single-tuple
        pattern-constraint violations, which any partition detects.
        """
        return bool(self.rhs)

    def pattern_projection(self) -> "ECFD":
        """The pattern-constraint side of this eCFD, with the embedded FD dropped.

        Moves ``Y`` into ``Yp`` while keeping every pattern entry: the result
        has the identical single-tuple (SV) violations — the SV condition
        only reads ``tp[X]`` and ``tp[Y ∪ Yp]``, never which side of the FD
        an attribute sits on — but produces no multiple-tuple violations at
        all (``Y = ∅``).  Sharded detection evaluates this projection
        shard-locally for fragments whose embedded FD is resolved through
        cross-shard group summaries instead of hash co-location.
        """
        if not self.rhs:
            return self
        return ECFD(
            self.schema,
            self.lhs,
            rhs=(),
            pattern_rhs=self.rhs + self.pattern_rhs,
            tableau=list(self.tableau),
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Normalisation (Section V assumes single-pattern eCFDs)
    # ------------------------------------------------------------------
    def normalize(self) -> list["ECFD"]:
        """Split into one eCFD per pattern tuple.

        The SQL encoding of Section V "may assume that the eCFDs in Σ all
        contain a single pattern tuple only", splitting multi-pattern eCFDs
        beforehand.  Satisfaction is preserved: ``I ⊨ φ`` iff ``I`` satisfies
        every single-pattern fragment.
        """
        fragments = []
        for index, pattern in enumerate(self.tableau):
            fragment_name = self.name if len(self.tableau) == 1 else (
                f"{self.name}#{index}" if self.name else None
            )
            fragments.append(
                ECFD(
                    self.schema,
                    self.lhs,
                    self.rhs,
                    self.pattern_rhs,
                    [pattern],
                    name=fragment_name,
                )
            )
        return fragments

    # ------------------------------------------------------------------
    # Semantics on in-memory relations (reference implementation)
    # ------------------------------------------------------------------
    def matching_tuples(self, relation: Relation, pattern: PatternTuple) -> list[RelationTuple]:
        """``I(tp)`` — the tuples whose ``X`` projection matches ``tp[X]``."""
        return relation.select(pattern.matches_lhs)

    def violations(self, relation: Relation, constraint_id: int = 0) -> ViolationSet:
        """All violations of this eCFD in ``relation`` (reference semantics).

        ``constraint_id`` is attached to the produced records so callers
        detecting against a whole :class:`ECFDSet` can attribute violations.
        When the eCFD has several pattern tuples the fragment index is mixed
        into the identifier (pattern ``i`` gets ``constraint_id * 1000 + i``)
        — identifiers only need to be unique per detection run.
        """
        result = ViolationSet()
        for index, pattern in enumerate(self.tableau):
            cid = constraint_id if len(self.tableau) == 1 else constraint_id * 1000 + index
            matching = self.matching_tuples(relation, pattern)
            # (2) single-tuple violations of the RHS pattern constraint.
            for t in matching:
                if not pattern.matches_rhs(t):
                    assert t.tid is not None
                    result.add_single(
                        SingleTupleViolation(
                            tid=t.tid,
                            constraint_id=cid,
                            attribute=pattern.failing_rhs_attribute(t),
                        )
                    )
            # (1) multiple-tuple violations of the embedded FD.
            if self.rhs:
                for key, group in self.embedded_fd.violating_groups(matching).items():
                    result.add_multi(
                        MultiTupleViolation(
                            constraint_id=cid,
                            lhs_values=key,
                            tids=frozenset(t.tid for t in group if t.tid is not None),
                        )
                    )
        return result

    def is_satisfied_by(self, relation: Relation) -> bool:
        """Whether ``relation ⊨ φ``."""
        return self.violations(relation).is_clean()

    def satisfied_by_single_tuple(self, values: Mapping[str, Value]) -> bool:
        """Whether the single-tuple database ``{t}`` satisfies this eCFD.

        This is the check at the heart of the small-model property of
        Proposition 3.1: a singleton instance can only incur single-tuple
        (pattern-constraint) violations, never embedded-FD ones.
        """
        for pattern in self.tableau:
            if pattern.matches_lhs(values) and not pattern.matches_rhs(values):
                return False
        return True

    # ------------------------------------------------------------------
    # Active domain (Sections III & IV)
    # ------------------------------------------------------------------
    def constants(self) -> dict[str, frozenset[Value]]:
        """Constants mentioned per attribute across the whole tableau."""
        merged: dict[str, set[Value]] = {}
        for pattern in self.tableau:
            for attribute, values in pattern.constants().items():
                merged.setdefault(attribute, set()).update(values)
        return {attribute: frozenset(values) for attribute, values in merged.items()}

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rhs = ", ".join(self.rhs)
        yp = ", ".join(self.pattern_rhs)
        patterns = "; ".join(p.to_text() for p in self.tableau)
        label = f"{self.name}: " if self.name else ""
        return f"{label}({self.schema.name}: [{lhs}] -> [{rhs}] | [{yp}], {{{patterns}}})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECFD({self!s})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ECFD):
            return (
                self.schema == other.schema
                and self.lhs == other.lhs
                and self.rhs == other.rhs
                and self.pattern_rhs == other.pattern_rhs
                and self.tableau == other.tableau
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (self.schema, self.lhs, self.rhs, self.pattern_rhs, tuple(self.tableau))
        )


class ECFDSet:
    """An ordered set ``Σ`` of eCFDs over a single schema.

    Provides the whole-set operations the library needs: normalisation into
    single-pattern constraints with stable integer identifiers (the ``CID``
    of the SQL encoding), violation detection against in-memory relations,
    and active-domain computation across the set.
    """

    def __init__(self, ecfds: Iterable[ECFD] = ()):
        self._ecfds: list[ECFD] = []
        self._schema: RelationSchema | None = None
        for ecfd in ecfds:
            self.add(ecfd)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, ecfd: ECFD) -> None:
        """Append an eCFD, enforcing the single-schema invariant."""
        if self._schema is None:
            self._schema = ecfd.schema
        elif ecfd.schema != self._schema:
            raise ConstraintError(
                f"ECFDSet is over schema {self._schema.name!r}; cannot add an eCFD over "
                f"{ecfd.schema.name!r}"
            )
        self._ecfds.append(ecfd)

    @property
    def schema(self) -> RelationSchema:
        if self._schema is None:
            raise ConstraintError("empty ECFDSet has no schema")
        return self._schema

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ECFD]:
        return iter(self._ecfds)

    def __len__(self) -> int:
        return len(self._ecfds)

    def __getitem__(self, index: int) -> ECFD:
        return self._ecfds[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ECFDSet):
            return self._ecfds == other._ecfds
        return NotImplemented

    # ------------------------------------------------------------------
    # Whole-set operations
    # ------------------------------------------------------------------
    def normalize(self) -> list[tuple[int, ECFD]]:
        """Single-pattern fragments with stable 1-based constraint identifiers.

        The identifiers are exactly the ``CID`` values used by the SQL
        encoding relations, so violation records can be traced back from the
        database to the source constraints.
        """
        counter = count(1)
        fragments: list[tuple[int, ECFD]] = []
        for ecfd in self._ecfds:
            for fragment in ecfd.normalize():
                fragments.append((next(counter), fragment))
        return fragments

    def pattern_count(self) -> int:
        """Total number of pattern tuples across the set (``|Tp|`` summed)."""
        return sum(len(ecfd.tableau) for ecfd in self._ecfds)

    def violations(self, relation: Relation) -> ViolationSet:
        """All violations of every eCFD in the set (reference semantics)."""
        result = ViolationSet()
        for cid, fragment in self.normalize():
            result = result.merge(fragment.violations(relation, constraint_id=cid))
        return result

    def is_satisfied_by(self, relation: Relation) -> bool:
        """Whether ``relation ⊨ Σ``."""
        return all(ecfd.is_satisfied_by(relation) for ecfd in self._ecfds)

    def satisfied_by_single_tuple(self, values: Mapping[str, Value]) -> bool:
        """Whether the singleton database ``{t}`` satisfies every eCFD."""
        return all(ecfd.satisfied_by_single_tuple(values) for ecfd in self._ecfds)

    def constants(self) -> dict[str, frozenset[Value]]:
        """Constants mentioned per attribute across the whole set."""
        merged: dict[str, set[Value]] = {}
        for ecfd in self._ecfds:
            for attribute, values in ecfd.constants().items():
                merged.setdefault(attribute, set()).update(values)
        return {attribute: frozenset(values) for attribute, values in merged.items()}

    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by any eCFD in the set."""
        result: set[str] = set()
        for ecfd in self._ecfds:
            result |= ecfd.attributes()
        return frozenset(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ECFDSet({len(self._ecfds)} eCFDs, {self.pattern_count()} patterns)"
