"""Unit tests for the repair-strategy layer (registry, counters, in-place fixes)."""

import pytest

from repro.core import Relation
from repro.core.schema import cust_ext_schema
from repro.datagen import DatasetGenerator, paper_workload
from repro.engine import DataQualityEngine
from repro.engine.backends import create_backend
from repro.exceptions import (
    EngineError,
    ReproError,
    SchemaError,
    UnknownStrategyError,
)
from repro.repair import (
    CellChange,
    GreedyRepairStrategy,
    IncrementalRepairStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
    unregister_strategy,
)

SCHEMA = cust_ext_schema()


@pytest.fixture(scope="module")
def workload():
    return paper_workload(SCHEMA)


@pytest.fixture()
def noisy_rows():
    return DatasetGenerator(seed=3).generate_rows(250, 5.0)


class TestReplaceCell:
    def test_replace_cell_preserves_tid(self):
        relation = Relation(SCHEMA)
        stored = relation.insert(
            {a: "x" for a in SCHEMA.attribute_names} | {"CT": "NYC"}
        )
        updated = relation.replace_cell(stored.tid, "CT", "Albany")
        assert updated.tid == stored.tid
        assert relation.get(stored.tid)["CT"] == "Albany"
        assert relation.get(stored.tid)["AC"] == "x"  # other cells untouched

    def test_replace_cell_unknown_tid_raises(self):
        with pytest.raises(SchemaError, match="tid=99"):
            Relation(SCHEMA).replace_cell(99, "CT", "Albany")


class TestStrategyRegistry:
    def test_builtins_registered(self):
        names = available_strategies()
        assert {"greedy", "incremental", "sharded"} <= set(names)

    def test_unknown_strategy_raises_with_listing(self, workload):
        with pytest.raises(UnknownStrategyError, match="greedy"):
            create_strategy("no-such-strategy", sigma=workload)

    def test_register_and_unregister_roundtrip(self, workload):
        register_strategy("custom", GreedyRepairStrategy)
        try:
            strategy = create_strategy("custom", sigma=workload, max_rounds=3)
            assert isinstance(strategy, GreedyRepairStrategy)
            assert strategy.max_rounds == 3
        finally:
            unregister_strategy("custom")
        with pytest.raises(UnknownStrategyError):
            unregister_strategy("custom")


class TestApplyCellChanges:
    @pytest.mark.parametrize("backend_name", ("naive", "batch", "incremental"))
    def test_in_place_cell_update_preserves_tids(self, workload, backend_name):
        backend = create_backend(backend_name, schema=SCHEMA, sigma=workload)
        backend.load_rows(
            [{a: "x" for a in SCHEMA.attribute_names} | {"CT": f"c{i}"} for i in range(4)]
        )
        tids = backend.tids()
        backend.apply_cell_changes(
            [CellChange(tids[1], "CT", "c1", "fixed"), CellChange(tids[3], "AC", "x", "518")]
        )
        assert backend.tids() == tids
        relation = backend.to_relation()
        assert relation.get(tids[1])["CT"] == "fixed"
        assert relation.get(tids[3])["AC"] == "518"
        assert relation.get(tids[0])["CT"] == "c0"  # untouched row intact
        backend.close()

    @pytest.mark.parametrize("backend_name", ("naive", "batch", "incremental"))
    def test_unknown_tid_raises_instead_of_dropping_the_fix(
        self, workload, backend_name
    ):
        backend = create_backend(backend_name, schema=SCHEMA, sigma=workload)
        backend.load_rows([{a: "x" for a in SCHEMA.attribute_names}])
        with pytest.raises(ReproError, match="tid=99"):
            backend.apply_cell_changes([CellChange(99, "CT", "x", "fixed")])
        backend.close()

    @pytest.mark.parametrize("backend_name", ("naive", "batch"))
    def test_detection_state_invalidated_after_in_place_repair(
        self, workload, backend_name, noisy_rows
    ):
        """Regression: flag-reading introspection must not serve pre-repair
        violations on clean data (the old reload path re-detected; the
        in-place path must invalidate instead)."""
        with DataQualityEngine(SCHEMA, workload, backend=backend_name) as engine:
            engine.load(noisy_rows)
            assert engine.detect().dirty_count > 0  # flags / cache populated
            repair = engine.repair(max_rounds=15)
            assert repair.clean
            assert engine.violation_counts()["dirty"] == 0


class TestIncrementalStrategy:
    def test_zero_full_redetects_after_seeding(self, workload, noisy_rows):
        with DataQualityEngine(SCHEMA, workload, backend="incremental") as engine:
            engine.load(noisy_rows)
            assert engine.detect().dirty_count > 0
            strategy = create_strategy("incremental", sigma=workload, max_rounds=15)
            outcome = strategy.repair(engine.backend)
            # The one batch pass is the seeding scan; every repair round was
            # re-validated through INCDETECT delta maintenance.
            assert engine.backend.full_detect_count == 1
            assert outcome.trace["full_detects"] == 0
            assert outcome.trace["maintained_rounds"] == outcome.rounds > 0
            assert outcome.trace["redetect_rows_avoided"] >= outcome.rounds * (
                len(noisy_rows) - len(outcome.changes)
            )
            assert engine.violation_counts()["dirty"] == 0

    def test_incremental_strategy_rejects_non_incremental_backend(self, workload):
        with DataQualityEngine(SCHEMA, workload, backend="batch") as engine:
            engine.load(DatasetGenerator(seed=3).generate_rows(30, 5.0))
            strategy = IncrementalRepairStrategy(workload)
            with pytest.raises(EngineError, match="incremental-capable"):
                strategy.repair(engine.backend)

    def test_sharded_strategy_rejects_plain_backend(self, workload):
        with DataQualityEngine(SCHEMA, workload, backend="incremental") as engine:
            engine.load(DatasetGenerator(seed=3).generate_rows(30, 5.0))
            strategy = create_strategy("sharded", sigma=workload)
            with pytest.raises(EngineError, match="sharded"):
                strategy.repair(engine.backend)


class TestShardedStrategyCounters:
    def test_summary_elected_groups_and_live_states(self, workload, noisy_rows):
        engine = DataQualityEngine(
            SCHEMA, workload, backend="incremental", workers=3, executor="serial"
        )
        engine.load(noisy_rows)
        repair = engine.repair(max_rounds=15)
        assert repair.strategy == "sharded"
        assert repair.clean
        # No full sharded pass ran at all: bootstrap seeds the states and
        # every round is routed delta maintenance.
        assert engine.backend.full_detect_count == 0
        assert repair.trace["full_detects"] == 0
        # The paper workload has summary fragments (ZIP / ITEM_TITLE FDs);
        # their dirty groups were repaired from the merged summary store.
        assert repair.trace["summary_groups_repaired"] > 0
        # The shard states stayed live across the repair and keep serving
        # the maintained clean state.
        assert engine.backend._states_live
        assert engine.detect().dirty_count == 0
        assert engine.backend.full_detect_count == 0
        engine.close()
