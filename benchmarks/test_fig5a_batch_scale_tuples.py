"""Fig. 5(a): BATCHDETECT scalability in the number of tuples |D|.

Paper setting: |Tp| = 10, noise = 5%, |D| swept from 10k to 100k.  Expected
shape: running time grows roughly linearly in |D|.
"""

import pytest

from conftest import BENCH_SIZE, batch_engine, dataset_rows, sweep

SIZES = sweep([BENCH_SIZE // 2, BENCH_SIZE, 2 * BENCH_SIZE, 3 * BENCH_SIZE, 4 * BENCH_SIZE, 5 * BENCH_SIZE])


@pytest.mark.parametrize("size", SIZES)
def test_fig5a_batchdetect_scalability_in_tuples(benchmark, size, base_workload):
    rows = dataset_rows(size)

    def setup():
        return (batch_engine(rows, base_workload),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tuples"] = size
    benchmark.extra_info["dirty"] = result.dirty_count
