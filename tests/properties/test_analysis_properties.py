"""Property-based tests for the static analyses and the MAXSS reduction."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    find_witness,
    implies,
    is_satisfiable,
    is_satisfiable_via_reduction,
    max_satisfiable_subset,
    reduce_to_maxgsat,
)
from repro.core import ECFD, cust_schema
from repro.core.ecfd import PatternTuple
from repro.core.fd import FunctionalDependency, attribute_closure, minimal_cover
from repro.core.fd import implies as fd_implies
from repro.core.patterns import ComplementSet, ValueSet, WILDCARD
from repro.core.schema import RelationSchema
from repro.sat import SOLVERS

SCHEMA = cust_schema()

cities = st.sampled_from(["NYC", "LI", "Albany", "Troy", "Colonie"])
codes = st.sampled_from(["212", "518", "646", "315", "716"])
city_sets = st.frozensets(cities, min_size=1, max_size=3)
code_sets = st.frozensets(codes, min_size=1, max_size=3)


def ct_ac_patterns():
    """Pattern entries over CT (LHS) and AC (RHS) including all three kinds."""
    lhs = st.one_of(st.just(WILDCARD), city_sets.map(ValueSet), city_sets.map(ComplementSet))
    rhs = st.one_of(st.just(WILDCARD), code_sets.map(ValueSet), code_sets.map(ComplementSet))
    return st.tuples(lhs, rhs)


def small_sigma():
    """Small random constraint sets over CT -> AC (as Yp constraints)."""
    single = st.lists(ct_ac_patterns(), min_size=1, max_size=2).map(
        lambda rows: ECFD(
            SCHEMA,
            ["CT"],
            [],
            ["AC"],
            [PatternTuple({"CT": lhs}, {"AC": rhs}) for lhs, rhs in rows],
        )
    )
    return st.lists(single, min_size=1, max_size=4)


class TestSatisfiabilityProperties:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(small_sigma())
    def test_witness_actually_satisfies(self, sigma):
        witness = find_witness(sigma)
        if witness is not None:
            assert all(ecfd.satisfied_by_single_tuple(witness) for ecfd in sigma)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(small_sigma())
    def test_backtracking_and_reduction_agree(self, sigma):
        assert is_satisfiable(sigma) == is_satisfiable_via_reduction(sigma)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(small_sigma())
    def test_subsets_of_satisfiable_sets_are_satisfiable(self, sigma):
        if is_satisfiable(sigma):
            assert is_satisfiable(sigma[: max(1, len(sigma) // 2)])

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(small_sigma())
    def test_members_are_implied(self, sigma):
        assert implies(sigma, sigma[0])


class TestMaxSSProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(small_sigma())
    def test_maxss_subset_is_satisfiable_and_not_smaller_than_score(self, sigma):
        reduction = reduce_to_maxgsat(sigma)
        result = max_satisfiable_subset(sigma, solver=SOLVERS["walksat"])
        assert result.cardinality >= result.maxgsat_score
        assert is_satisfiable(result.satisfiable_subset) or not result.satisfiable_subset
        assert reduction.instance.size == len(sigma)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(small_sigma())
    def test_satisfiable_sets_recovered_entirely_by_exact_solver(self, sigma):
        if is_satisfiable(sigma):
            result = max_satisfiable_subset(sigma, solver=SOLVERS["exact"])
            assert result.cardinality == len(sigma)


class TestFDProperties:
    attribute_lists = st.lists(st.sampled_from(list(SCHEMA.attribute_names)), min_size=1, max_size=3)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(attribute_lists, attribute_lists), min_size=0, max_size=4),
        attribute_lists,
    )
    def test_closure_is_monotone_and_idempotent(self, fd_specs, seed_attrs):
        fds = [FunctionalDependency(SCHEMA, lhs, rhs) for lhs, rhs in fd_specs]
        closure = attribute_closure(seed_attrs, fds)
        assert set(seed_attrs) <= closure
        assert attribute_closure(closure, fds) == closure

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(attribute_lists, attribute_lists), min_size=1, max_size=4))
    def test_minimal_cover_is_equivalent(self, fd_specs):
        fds = [FunctionalDependency(SCHEMA, lhs, rhs) for lhs, rhs in fd_specs]
        cover = minimal_cover(fds)
        assert all(fd_implies(cover, fd) for fd in fds)
        assert all(fd_implies(fds, fd) for fd in cover)
