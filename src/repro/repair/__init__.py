"""Value-modification repair of eCFD violations (paper future work, Section VIII)."""

from repro.repair.cost import CellChange, RepairCostModel
from repro.repair.repairer import GreedyRepairer, RepairResult

__all__ = ["CellChange", "GreedyRepairer", "RepairCostModel", "RepairResult"]
