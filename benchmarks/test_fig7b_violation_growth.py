"""Fig. 7(b): growth of the number of single / multiple tuple violations.

Paper setting: |D| = 100k, noise = 5%, |Tp| = 10; the number of single-tuple
violations (DSV) and multiple-tuple violations (DMV) is reported as the
update size grows.  Expected shape: DSV grows roughly linearly with the
update size, while DMV grows much faster for large updates — the effect the
paper uses to explain why BATCHDETECT wins for very large updates.

The benchmark times the post-update detection (so the suite still produces a
timing row) and attaches the SV / MV counts to ``extra_info``, which is the
actual figure series.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    batch_engine,
    dataset_rows,
    sweep,
    update_batch,
)

UPDATE_FRACTIONS = sweep([0.02, 0.1, 0.2, 0.4, 0.6])


@pytest.mark.parametrize("fraction", UPDATE_FRACTIONS)
def test_fig7b_violation_growth_with_update_size(benchmark, fraction, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), int(BENCH_SIZE * fraction))

    def setup():
        engine = batch_engine(rows, base_workload)
        before = engine.detect()
        engine.database.delete_tuples(batch.delete_tids)
        engine.database.insert_tuples(list(batch.insert_rows))
        return (engine,), {"before": before}

    def run(engine, before):
        return before, engine.detect()

    before, after = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["sv_before"] = before.sv_count
    benchmark.extra_info["mv_before"] = before.mv_count
    benchmark.extra_info["sv_after"] = after.sv_count
    benchmark.extra_info["mv_after"] = after.mv_count
    benchmark.extra_info["dirty_after"] = after.dirty_count
