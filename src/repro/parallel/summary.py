"""Coordinator-side merge of cross-shard embedded-FD group summaries.

The shard side — what a summary *is* and how detectors emit one — lives in
:mod:`repro.detection.summaries`.  This module owns the coordinator's half
of the single-pass protocol: :class:`SummaryStore` folds per-shard
summaries (full, at bootstrap / one-shot detection) and signed deltas (from
the stateful INCDETECT lanes) into one merged group map and materialises
the multi-tuple violations no single shard could witness.

The merge is exact: shards partition the relation, so summing yv multisets
and unioning witness tids per ``(cid, xv)`` group reconstructs precisely
the group statistics a whole-relation pass computes, and a group violates
its embedded FD iff the merged multiset holds ≥ 2 distinct yv values.
"""

from __future__ import annotations

import pickle

from repro.core.violations import MultiTupleViolation, ViolationSet
from repro.detection.summaries import Summary, SummaryDelta

__all__ = ["SummaryStore", "summary_nbytes"]


def summary_nbytes(summary: object) -> int:
    """Approximate wire size of a summary (its pickled length, in bytes).

    Pickling is exactly what the process executor pays to ship the summary
    back to the coordinator, so this is the honest transfer-cost metric the
    benchmarks and ``shard_stats`` report.
    """
    return len(pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL))


class SummaryStore:
    """The coordinator's merged view of every shard's group summaries.

    Maintains, per ``(cid, xv)`` group, the global yv multiset and witness
    tid set, under both full per-shard summaries (bootstrap / one-shot
    merge) and signed deltas (sharded INCDETECT).  The embedded-FD verdict
    is read off the merged state: a group violates iff its yv multiset has
    at least two distinct values with positive count.  The set of violating
    groups is tracked *incrementally* as deltas land, so the per-update
    readback (:meth:`violations`) iterates only the violating groups —
    cost proportional to the current violations, never to the total group
    population.
    """

    def __init__(self) -> None:
        #: (cid, xv) -> [ {yv: count}, {tid: count} ]
        #:
        #: Witness tids are *counted*, not set-collected, so per-shard
        #: deltas commute: when one update round deletes a tuple and
        #: re-inserts its identifier (the ``max(tid) + 1`` discipline reuses
        #: freed maxima), the -1 and +1 may arrive from different shards in
        #: either order — signed arithmetic lands on the right state where
        #: a set union/difference would not.
        self._groups: dict[tuple[int, tuple], list] = {}
        #: Keys of ``_groups`` whose yv multiset currently holds >= 2
        #: distinct values — maintained on every group mutation.
        self._violating: set[tuple[int, tuple]] = set()
        #: Running total of witness tids across all groups.
        self._witnesses = 0

    def _reclassify(self, key: tuple[int, tuple], merged: list) -> None:
        if len(merged[0]) > 1:
            self._violating.add(key)
        else:
            self._violating.discard(key)

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    def apply_summary(self, summary: Summary) -> None:
        """Fold one shard's full summary into the merged state."""
        for cid, groups in summary.items():
            for xv, (counts, tids) in groups.items():
                key = (cid, xv)
                merged = self._groups.setdefault(key, [{}, {}])
                for yv, count in counts.items():
                    merged[0][yv] = merged[0].get(yv, 0) + count
                for tid in tids:
                    merged[1][tid] = merged[1].get(tid, 0) + 1
                self._witnesses += len(tids)
                self._reclassify(key, merged)

    def apply_delta(self, delta: SummaryDelta) -> int:
        """Fold one shard's signed delta in; returns the number of touched groups.

        Groups whose every witness disappeared are pruned, so the store
        never outlives the data it summarises.
        """
        touched = 0
        for cid, groups in delta.items():
            for xv, (counts, added, removed) in groups.items():
                key = (cid, xv)
                merged = self._groups.setdefault(key, [{}, {}])
                touched += 1
                for yv, count in counts.items():
                    updated = merged[0].get(yv, 0) + count
                    if updated > 0:
                        merged[0][yv] = updated
                    else:
                        merged[0].pop(yv, None)
                for tid in added:
                    present = merged[1].get(tid, 0)
                    merged[1][tid] = present + 1
                    if not present:
                        self._witnesses += 1
                for tid in removed:
                    remaining = merged[1].get(tid, 0) - 1
                    if remaining > 0:
                        merged[1][tid] = remaining
                    else:
                        merged[1].pop(tid, None)
                        self._witnesses -= 1
                if merged[1]:
                    self._reclassify(key, merged)
                else:
                    del self._groups[key]
                    self._violating.discard(key)
        return touched

    def clear(self) -> None:
        self._groups.clear()
        self._violating.clear()
        self._witnesses = 0

    # ------------------------------------------------------------------
    # Readback
    # ------------------------------------------------------------------
    def violations(self) -> ViolationSet:
        """The multi-tuple violations witnessed by the merged summaries.

        One :class:`MultiTupleViolation` per violating group (its ``xv`` is
        the group's shared LHS value vector, its tids the union of every
        shard's witnesses) — the same records a whole-relation reference
        pass produces for these fragments.  Iterates the incrementally
        maintained violating subset only: cost is proportional to the
        number of violating tuples, never to |D| or the group population.
        """
        result = ViolationSet()
        for key in sorted(self._violating):
            cid, xv = key
            result.add_multi(
                MultiTupleViolation(
                    constraint_id=cid,
                    lhs_values=xv,
                    tids=frozenset(self._groups[key][1]),
                )
            )
        return result

    def group_counts(self, cid: int, xv: tuple) -> dict[tuple, int] | None:
        """The merged ``{yv: count}`` multiset of one ``(cid, xv)`` group.

        ``None`` when the store holds no such group.  This is the election
        source of sharded repair: a cross-shard embedded-FD group's majority
        RHS is read off the merged multiset directly — no shard ever ships
        its rows to the coordinator for the vote.
        """
        entry = self._groups.get((cid, xv))
        if entry is None:
            return None
        return dict(entry[0])

    def per_constraint_stats(self) -> dict[int, dict[str, int]]:
        """MV statistics per constraint: violating group and tuple counts."""
        stats: dict[int, dict] = {}
        for cid, xv in self._violating:
            slot = stats.setdefault(cid, {"mv_groups": 0, "mv_tuples": set()})
            slot["mv_groups"] += 1
            slot["mv_tuples"].update(self._groups[(cid, xv)][1])
        return {
            cid: {"mv_groups": slot["mv_groups"], "mv_tuples": len(slot["mv_tuples"])}
            for cid, slot in sorted(stats.items())
        }

    def group_count(self) -> int:
        """Number of merged ``(cid, xv)`` groups currently tracked."""
        return len(self._groups)

    def witness_count(self) -> int:
        """Total witness tids tracked across all groups (the store's memory)."""
        return self._witnesses
