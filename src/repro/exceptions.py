"""Exception hierarchy for the eCFD reproduction library.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or referenced inconsistently.

    Raised, for example, when an attribute name is duplicated, when a
    constraint mentions an attribute that does not belong to the schema, or
    when a tuple is built with missing / extra attributes.
    """


class DomainError(ReproError):
    """A value is used outside the declared domain of its attribute."""


class PatternError(ReproError):
    """A pattern tuple or pattern value is malformed.

    Examples: an empty value set, a pattern tuple that does not cover
    exactly the attributes of its eCFD, or overlapping ``Y`` / ``Yp``
    attribute lists.
    """


class ConstraintError(ReproError):
    """An eCFD / CFD / FD object is structurally invalid."""


class ParseError(ReproError):
    """The textual eCFD syntax could not be parsed.

    Attributes
    ----------
    text:
        The full input text being parsed.
    position:
        Character offset at which parsing failed, if known.
    """

    def __init__(
        self, message: str, text: str = "", position: int | None = None
    ) -> None:
        super().__init__(message)
        self.text = text
        self.position = position


class UnsatisfiableError(ReproError):
    """Raised when an operation requires a satisfiable constraint set.

    For instance, asking for a witness tuple of an unsatisfiable set of
    eCFDs raises this error rather than returning ``None`` silently.
    """


class DetectionError(ReproError):
    """A violation-detection run failed (bad encoding, missing table, ...)."""


class DatabaseError(ReproError):
    """The SQLite substrate was used incorrectly (unknown table, reload, ...)."""


class EngineError(ReproError):
    """The :class:`~repro.engine.DataQualityEngine` façade was misused.

    Raised, for example, when an update delta is malformed (unknown keys, or
    an object without ``insert_rows`` / ``delete_tids``), when a load is
    requested with a non-positive chunk size, or when an operation requires
    a capability the selected backend does not provide.
    """


class UnknownBackendError(EngineError):
    """An unregistered detector backend name was requested.

    Attributes
    ----------
    name:
        The unknown backend name.
    available:
        The backend names registered at the time of the lookup.
    """

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        listing = ", ".join(repr(b) for b in available) or "(none registered)"
        super().__init__(
            f"unknown detector backend {name!r}; available backends: {listing}"
        )
        self.name = name
        self.available = tuple(available)


class FabricError(EngineError):
    """The remote shard fabric failed beyond what recovery could absorb.

    Raised by the remote executor when no healthy worker remains to host a
    shard lane, when the worker pool could not be spawned or reached, or
    when recovery itself fails.  Transient single-lane failures (a worker
    death, a severed or timed-out connection) are *not* reported this way —
    the coordinator re-pins the lost lanes and re-bootstraps their shard
    states from its own storage instead.
    """


class LaneFailedError(FabricError):
    """One remote shard lane failed mid-call (worker death, sever, timeout).

    Internal signal of the remote executor: the coordinator catches it at
    its merge barrier, invalidates only the failed lanes' shard states and
    re-bootstraps them.  It escapes to callers only when recovery is
    impossible (see :class:`FabricError`).

    Attributes
    ----------
    lane:
        Index of the failed shard lane.
    address:
        ``(host, port)`` of the worker the lane was pinned to, if known.
    """

    def __init__(
        self, message: str, lane: int, address: tuple[str, int] | None = None
    ) -> None:
        super().__init__(message)
        self.lane = lane
        self.address = address


class RemoteCallError(FabricError):
    """A remote worker executed the call and raised; carries the remote error.

    Distinct from :class:`LaneFailedError`: the lane and its shard state
    are healthy — the *operation* failed on the worker (bad payload, a
    delegate bug) — so the coordinator propagates instead of recovering.

    Attributes
    ----------
    remote_type:
        Class name of the exception raised on the worker.
    remote_traceback:
        The worker-side traceback, for diagnostics.
    """

    def __init__(
        self, remote_type: str, message: str, remote_traceback: str = ""
    ) -> None:
        super().__init__(f"remote worker raised {remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


class ServiceTimeoutError(ReproError, TimeoutError):
    """A quality-service client request got no reply within its timeout.

    Subclasses :class:`TimeoutError` too, so generic timeout handling
    catches it; the request may or may not have been executed server-side
    (the client cannot know) — reconnect before retrying non-idempotent
    operations.
    """


class RepairError(ReproError):
    """A repair could not be constructed (e.g. unsatisfiable constraints)."""


class UnknownStrategyError(EngineError):
    """An unregistered repair strategy name was requested.

    Attributes
    ----------
    name:
        The unknown strategy name.
    available:
        The strategy names registered at the time of the lookup.
    """

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        listing = ", ".join(repr(s) for s in available) or "(none registered)"
        super().__init__(
            f"unknown repair strategy {name!r}; available strategies: {listing}"
        )
        self.name = name
        self.available = tuple(available)


class DiscoveryError(ReproError):
    """eCFD discovery was invoked with invalid parameters."""
