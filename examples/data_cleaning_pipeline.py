"""A complete data-cleaning pipeline on a synthetic customer/order dataset.

The scenario the paper's introduction motivates: a customer database with
geographic and purchase attributes accumulates errors, and a set of eCFDs
expressing the real-life semantics (area codes per city, zip/city bindings,
item types, price bands) is used to find and then fix them.

Steps:

1. validate the constraint set (satisfiability analysis of Section III);
2. generate a noisy dataset with the Section VI generator;
3. detect all violations with BATCHDETECT on SQLite;
4. repair the data with the greedy value-modification repairer;
5. verify the repaired data is clean.

Run with::

    python examples/data_cleaning_pipeline.py
"""

from repro.analysis import is_satisfiable
from repro.core import cust_ext_schema
from repro.datagen import DatasetGenerator, paper_workload
from repro.detection import BatchDetector, ECFDDatabase
from repro.repair import GreedyRepairer


def main() -> None:
    schema = cust_ext_schema()
    sigma = paper_workload(schema)

    print(f"Workload: {len(sigma)} eCFDs, {sigma.pattern_count()} pattern constraints")
    print(f"Constraint set is satisfiable: {is_satisfiable(sigma)}\n")

    generator = DatasetGenerator(seed=42)
    relation = generator.generate(2_000, noise_percent=5.0)
    print(f"Generated {len(relation)} tuples with 5% injected noise")

    with ECFDDatabase(schema) as db:
        db.load_relation(relation)
        detector = BatchDetector(db, sigma)
        violations = detector.detect()
        counts = detector.violation_counts()
        print("\nBATCHDETECT results:")
        print(f"  single-tuple violations (SV): {counts['sv']}")
        print(f"  multi-tuple violations  (MV): {counts['mv']}")
        print(f"  dirty tuples in vio(D):       {counts['dirty']}")

    print("\nRepairing with greedy value modification ...")
    repair = GreedyRepairer(sigma, max_rounds=15).repair(relation)
    print(f"  changed cells: {repair.change_count} (cost {repair.cost}) "
          f"across {len(repair.changed_tids())} tuples in {repair.rounds} rounds")

    with ECFDDatabase(schema) as db:
        db.load_relation(repair.relation)
        after = BatchDetector(db, sigma).detect()
        print(f"  violations after repair: {len(after)} (clean: {after.is_clean()})")


if __name__ == "__main__":
    main()
