"""Incremental violation monitoring of a live table (Section V-B in action).

A customer table receives batches of insertions and deletions; the engine's
incremental backend maintains the violation set across the updates with
INCDETECT, never re-scanning the whole database.  After each batch the
script reports the violation counts and, at the end, cross-checks the
maintained state against a from-scratch run on the batch backend — same
façade, different backend string.

The second half scales the monitor out: with ``workers=4`` the engine keeps
a persistent INCDETECT state *per shard* and routes each batch only to the
shards its tuples hash to (``last_update_trace`` shows how many), while
``shard_stats()`` reports where the maintained Aux(D) memory lives.

Run with::

    python examples/incremental_monitoring.py
"""

from repro import DataQualityEngine, cust_ext_schema
from repro.datagen import DatasetGenerator, UpdateGenerator, paper_workload


def main() -> None:
    schema = cust_ext_schema()
    sigma = paper_workload(schema)
    rows = DatasetGenerator(seed=7).generate_rows(5_000, noise_percent=5.0)

    monitor = DataQualityEngine(schema, sigma, backend="incremental")
    monitor.load(rows)

    initial = monitor.detect()
    print(f"Initial batch run over {initial.tuple_count} tuples "
          f"({initial.seconds:.2f}s): {initial.dirty_count} dirty tuples")

    updates = UpdateGenerator(DatasetGenerator(seed=8), seed=9)
    for round_number in range(1, 6):
        batch = updates.make_batch(
            existing_tids=monitor.tids(),
            insert_count=250,
            delete_count=250,
            noise_percent=5.0,
        )
        current = monitor.apply_update(batch)
        print(f"update {round_number}: -{batch.delete_count}/+{batch.insert_count} tuples "
              f"in {current.seconds:.3f}s -> SV={current.sv_count} MV={current.mv_count} "
              f"dirty={current.dirty_count} (incremental: {current.incremental})")

    # Cross-check: rebuild the final state from scratch on the batch backend.
    with DataQualityEngine(schema, sigma, backend="batch") as reference:
        reference.load(monitor.to_relation())
        recomputed = reference.detect()
    print(f"\nFrom-scratch BATCHDETECT on the final table: {recomputed.seconds:.3f}s")
    print(f"Incremental state matches the recomputation: "
          f"{current.violations == recomputed.violations}")
    monitor.close()

    # ------------------------------------------------------------------
    # Scale the monitor out: sharded INCDETECT with per-shard state.
    # ------------------------------------------------------------------
    sharded = DataQualityEngine(schema, sigma, backend="incremental", workers=4)
    sharded.load(rows)
    updates = UpdateGenerator(DatasetGenerator(seed=8), seed=9)  # same stream
    for batch in updates.make_workload(
        sharded.tids(), batches=3, insert_count=250, delete_count=250, noise_percent=5.0
    ):
        current = sharded.apply_update(batch)
        trace = sharded.backend.last_update_trace
        print(f"sharded update: dirty={current.dirty_count} in {current.seconds:.3f}s, "
              f"shards touched {trace['shards_touched']}/{trace['shards_total']}")
    print("per-shard maintained state (Aux(D) groups = violating groups held):")
    for shard in sharded.shard_stats():
        print(f"  shard {shard['shard']} "
              f"key={shard['key'] or '(round-robin)'}: "
              f"{shard['tuples']} tuples, {shard['aux_groups']} aux groups, "
              f"{shard['macro_rows']} macro rows")
    plan = sharded.partition_stats()
    print(f"plan: key={plan['key']}, {plan['local_fragments']} local + "
          f"{plan['summary_fragments']} summary fragments, "
          f"replication {plan['replication_factor']:.1f}x "
          f"(clustered plan would ship {plan['clustered_replication_factor']:.1f}x), "
          f"summary store {plan['summary_groups']} groups")
    sharded.close()


if __name__ == "__main__":
    main()
