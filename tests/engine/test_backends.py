"""Backend registry and detector call-convention unification tests."""

import pytest

from repro.core import Relation
from repro.detection import BatchDetector, ECFDDatabase, IncrementalDetector, NaiveDetector
from repro.engine import (
    DataQualityEngine,
    DetectorBackend,
    NaiveBackend,
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.exceptions import DetectionError, EngineError, ReproError, UnknownBackendError


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert {"naive", "batch", "incremental"} <= set(available_backends())

    def test_unknown_backend_raises_listing_available(self, schema, paper_sigma):
        with pytest.raises(UnknownBackendError) as excinfo:
            create_backend("quantum", schema=schema, sigma=paper_sigma)
        message = str(excinfo.value)
        assert "quantum" in message
        for name in available_backends():
            assert repr(name) in message
        assert excinfo.value.available == available_backends()

    def test_unknown_backend_error_is_a_repro_error(self, schema, paper_sigma):
        with pytest.raises(ReproError):
            DataQualityEngine(schema, paper_sigma, backend="no-such-backend")

    def test_register_and_unregister_custom_backend(self, schema, paper_sigma, d0):
        class EchoBackend(NaiveBackend):
            name = "echo"

        register_backend("echo", EchoBackend)
        try:
            assert "echo" in available_backends()
            backend = create_backend("echo", schema=schema, sigma=paper_sigma)
            assert isinstance(backend, DetectorBackend)
            engine = DataQualityEngine(schema, paper_sigma, backend="echo")
            engine.load(d0)
            assert engine.detect().violations == paper_sigma.violations(d0)
        finally:
            unregister_backend("echo")
        assert "echo" not in available_backends()
        with pytest.raises(UnknownBackendError):
            unregister_backend("echo")

    def test_register_backend_rejects_empty_name(self):
        with pytest.raises(EngineError):
            register_backend("", NaiveBackend)


class TestDetectorCallSymmetry:
    """The satellite unification: all three detectors share detect() / violation_counts()."""

    def test_naive_detector_bound_relation(self, paper_sigma, d0):
        detector = NaiveDetector(paper_sigma, relation=d0)
        bound = detector.detect()
        explicit = NaiveDetector(paper_sigma).detect(d0)
        assert bound == explicit
        assert detector.violation_counts() == bound.summary()

    def test_naive_detector_without_relation_raises(self, paper_sigma):
        detector = NaiveDetector(paper_sigma)
        with pytest.raises(DetectionError):
            detector.detect()
        with pytest.raises(DetectionError):
            detector.violation_counts()

    def test_naive_violation_counts_lazily_detects(self, paper_sigma, d0):
        detector = NaiveDetector(paper_sigma, relation=d0)
        counts = detector.violation_counts()  # no explicit detect() call
        assert counts == paper_sigma.violations(d0).summary()

    def test_all_three_detectors_agree_via_uniform_api(self, schema, paper_sigma, d0):
        naive = NaiveDetector(paper_sigma, relation=d0)

        with ECFDDatabase(schema) as db:
            db.load_relation(d0)
            batch = BatchDetector(db, paper_sigma)
            batch_violations = batch.detect()
            batch_counts = batch.violation_counts()

        with ECFDDatabase(schema) as db:
            db.load_relation(d0)
            incremental = IncrementalDetector(db, paper_sigma)
            inc_violations = incremental.detect()
            inc_counts = incremental.violation_counts()

        assert naive.detect() == batch_violations == inc_violations
        assert naive.violation_counts() == batch_counts == inc_counts

    def test_incremental_detect_reuses_maintained_state(self, schema, paper_sigma, d0):
        with ECFDDatabase(schema) as db:
            db.load_relation(d0)
            detector = IncrementalDetector(db, paper_sigma)
            first = detector.detect()
            assert detector.detect() == first  # no recomputation, same flags
            detector.reset()
            assert detector.detect() == first  # re-initialised from scratch


class TestBackendDataLifecycle:
    def test_naive_backend_mirrors_database_tid_assignment(self, schema, paper_sigma, d0):
        rows = [t.as_dict() for t in d0.tuples()]

        naive = create_backend("naive", schema=schema, sigma=paper_sigma)
        batch = create_backend("batch", schema=schema, sigma=paper_sigma)
        assert naive.load_rows(rows) == batch.load_rows(rows)

        # Delete the max tid, then insert: both must reuse max(tid) + 1.
        for backend in (naive, batch):
            backend.apply_delta([6, 2], [rows[0]])
        assert naive.tids() == batch.tids()
        assert naive.detect() == batch.detect()
        batch.close()

    def test_clear_resets_tid_counter(self, schema, paper_sigma, d0):
        for name in ("naive", "batch", "incremental"):
            backend = create_backend(name, schema=schema, sigma=paper_sigma)
            backend.load_relation(d0)
            backend.clear()
            assert backend.count() == 0
            assigned = backend.load_rows([d0.get(1).as_dict()])
            assert assigned == [1], name
            backend.close()

    def test_to_relation_round_trips(self, schema, paper_sigma, d0):
        backend = create_backend("naive", schema=schema, sigma=paper_sigma)
        backend.load_relation(d0)
        materialised = backend.to_relation()
        assert isinstance(materialised, Relation)
        assert materialised.tids() == d0.tids()
        assert [t.values() for t in materialised.tuples()] == [
            t.values() for t in d0.tuples()
        ]

    def test_non_incremental_backend_rejects_incremental_update(self, schema, paper_sigma):
        backend = create_backend("naive", schema=schema, sigma=paper_sigma)
        assert not backend.supports_incremental
        with pytest.raises(EngineError):
            backend.incremental_update([], [])
