"""Unit tests for the textual eCFD syntax (repro.core.parser)."""

import pytest

from repro.core.ecfd import ECFD
from repro.core.parser import format_ecfd, parse_ecfd, parse_ecfd_set
from repro.core.patterns import ComplementSet, ValueSet, Wildcard
from repro.exceptions import ParseError, SchemaError


PSI1_TEXT = "(cust: [CT] -> [AC], { (!{NYC, LI} || _); ({Albany, Colonie, Troy} || {518}) })"
PSI2_TEXT = "(cust: [CT] -> [] | [AC], { ({NYC} || {212, 347, 646, 718, 917}) })"


class TestParsing:
    def test_parse_psi1(self, schema, psi1):
        parsed = parse_ecfd(PSI1_TEXT, schema)
        assert parsed.lhs == ("CT",)
        assert parsed.rhs == ("AC",)
        assert parsed.pattern_rhs == ()
        assert parsed.tableau[0].lhs_entry("CT") == ComplementSet(["NYC", "LI"])
        assert isinstance(parsed.tableau[0].rhs_entry("AC"), Wildcard)
        assert parsed.tableau[1].rhs_entry("AC") == ValueSet(["518"])
        # Semantically identical to the fixture built programmatically.
        assert parsed.tableau == psi1.tableau

    def test_parse_psi2_with_yp(self, schema, psi2):
        parsed = parse_ecfd(PSI2_TEXT, schema)
        assert parsed.rhs == ()
        assert parsed.pattern_rhs == ("AC",)
        assert parsed.tableau == psi2.tableau

    def test_numeric_and_quoted_values_parse_as_strings(self, schema):
        text = '(cust: [ZIP] -> [AC], { ({12205, "New York"} || {518}) })'
        parsed = parse_ecfd(text, schema)
        constants = parsed.tableau[0].lhs_entry("ZIP").constants()
        assert "12205" in constants
        assert "New York" in constants
        assert parsed.tableau[0].rhs_entry("AC").constants() == frozenset({"518"})

    def test_quoted_value_with_escapes(self, schema):
        text = '(cust: [NM] -> [AC], { ({"say \\"hi\\""} || _) })'
        parsed = parse_ecfd(text, schema)
        assert 'say "hi"' in parsed.tableau[0].lhs_entry("NM").constants()

    def test_multiple_lhs_attributes(self, schema):
        text = "(cust: [CT, ZIP] -> [AC], { ({Albany}, _ || {518}) })"
        parsed = parse_ecfd(text, schema)
        assert parsed.lhs == ("CT", "ZIP")
        assert isinstance(parsed.tableau[0].lhs_entry("ZIP"), Wildcard)


class TestParseErrors:
    def test_wrong_relation_name(self, schema):
        with pytest.raises(ParseError):
            parse_ecfd("(orders: [CT] -> [AC], { (_ || _) })", schema)

    def test_unknown_attribute(self, schema):
        with pytest.raises(SchemaError):
            parse_ecfd("(cust: [CITY] -> [AC], { (_ || _) })", schema)

    def test_arity_mismatch(self, schema):
        with pytest.raises(ParseError):
            parse_ecfd("(cust: [CT, ZIP] -> [AC], { (_ || _) })", schema)

    def test_trailing_garbage(self, schema):
        with pytest.raises(ParseError):
            parse_ecfd(PSI2_TEXT + " extra", schema)

    def test_malformed_set(self, schema):
        with pytest.raises(ParseError):
            parse_ecfd("(cust: [CT] -> [AC], { ({} || _) })", schema)

    def test_unexpected_character(self, schema):
        with pytest.raises(ParseError):
            parse_ecfd("(cust: [CT] -> [AC], { (€ || _) })", schema)

    def test_truncated_input(self, schema):
        with pytest.raises(ParseError):
            parse_ecfd("(cust: [CT] -> [AC], { (_ ||", schema)


class TestRoundTrip:
    def test_format_then_parse_psi1(self, schema, psi1):
        text = format_ecfd(psi1)
        parsed = parse_ecfd(text, schema)
        assert parsed.lhs == psi1.lhs
        assert parsed.rhs == psi1.rhs
        assert parsed.pattern_rhs == psi1.pattern_rhs
        assert parsed.tableau == psi1.tableau

    def test_format_then_parse_psi2(self, schema, psi2):
        parsed = parse_ecfd(format_ecfd(psi2), schema)
        assert parsed.pattern_rhs == psi2.pattern_rhs
        assert parsed.tableau == psi2.tableau

    def test_round_trip_with_special_characters(self, schema):
        ecfd = ECFD(
            schema,
            ["STR"],
            ["CT"],
            tableau=[({"STR": {"5th Ave.", "Elm Str."}}, {"CT": {"NYC"}})],
        )
        parsed = parse_ecfd(format_ecfd(ecfd), schema)
        assert parsed.tableau == ecfd.tableau


class TestParseSet:
    def test_parse_multiple_lines_with_comments(self, schema):
        text = "\n".join(["# the Fig. 2 constraints", PSI1_TEXT, "", PSI2_TEXT])
        parsed = parse_ecfd_set(text, schema)
        assert len(parsed) == 2
        assert parsed[0].rhs == ("AC",)
        assert parsed[1].pattern_rhs == ("AC",)
