"""Greedy value-modification repair of eCFD violations.

Given a relation D and a *satisfiable* set Σ of eCFDs, a repair is a
modified relation D' that satisfies Σ; a good repair changes as little as
possible.  Finding a minimum-cost repair is already intractable for plain
CFDs, so — like the heuristic of Bohannon et al. (SIGMOD 2005) that the
paper points to — :class:`GreedyRepairer` applies local, greedy fixes and
iterates until the data is clean:

* a **multiple-tuple violation** of an embedded FD is fixed by electing the
  majority RHS combination inside the offending group and rewriting the
  minority tuples to it (majority voting minimises the number of changed
  cells for that group);
* a **single-tuple violation** of a pattern constraint is fixed by
  overwriting the failing RHS / Yp attribute with a value admitted by the
  pattern (the cheapest local fix; the replacement is chosen
  deterministically and re-checked against the other constraints on the next
  round).

The per-round fix derivation lives in :class:`~repro.repair.fixes.FixPlanner`
and is shared with the incremental and sharded repair strategies
(:mod:`repro.repair.strategies`), so every strategy plans identical fixes
from identical violation state; what distinguishes this baseline is *how it
re-validates*: each round runs the reference detector over the whole
relation (``full_detect_count`` counts those passes), applies one batch of
fixes and recounts.  The loop stops when the relation is clean or when
``max_rounds`` is exhausted (the greedy fixes are not guaranteed to converge
for every constraint interaction, in which case a
:class:`~repro.exceptions.RepairError` is raised rather than returning dirty
data silently).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.satisfiability import is_satisfiable
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.detection.naive import NaiveDetector
from repro.exceptions import RepairError
from repro.repair.cost import CellChange, RepairCostModel
from repro.repair.fixes import FixPlanner

__all__ = ["RepairOutcome", "GreedyRepairer"]


class RepairOutcome:
    """The outcome of a repair: the repaired relation plus an audit trail.

    This is the repair layer's working result (the engine façade flattens it
    into the serializable :class:`repro.engine.results.RepairResult`, the
    one audit type shipped across process boundaries — the two used to share
    a name, which this class resolves).
    """

    def __init__(
        self,
        relation: Relation | None,
        changes: list[CellChange],
        cost: float,
        rounds: int,
        trace: dict | None = None,
    ):
        self.relation = relation
        self.changes = tuple(changes)
        self.cost = cost
        self.rounds = rounds
        #: Repair-path diagnostics: per-round convergence plus the strategy's
        #: cost counters (full detections run, rounds maintained by deltas,
        #: re-detection rows avoided, summary-elected groups).
        self.trace = dict(trace or {})

    @property
    def change_count(self) -> int:
        """Number of modified cells."""
        return len(self.changes)

    def changed_tids(self) -> frozenset[int]:
        """Identifiers of the tuples touched by the repair."""
        return frozenset(change.tid for change in self.changes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RepairOutcome(cells={self.change_count}, cost={self.cost}, rounds={self.rounds})"
        )


class GreedyRepairer:
    """Greedy value-modification repair for a set of eCFDs.

    The baseline strategy: every round re-detects the whole relation with
    the reference detector.  :attr:`full_detect_count` counts those full
    passes across the repairer's lifetime — the "re-detect cost" the
    incremental strategy exists to avoid.
    """

    def __init__(
        self,
        sigma: ECFDSet | Sequence[ECFD],
        cost_model: RepairCostModel | None = None,
        max_rounds: int = 10,
    ):
        self.sigma = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
        self.cost_model = cost_model if cost_model is not None else RepairCostModel()
        self.max_rounds = max_rounds
        self.detector = NaiveDetector(self.sigma)
        self.planner = FixPlanner(self.sigma)
        self.full_detect_count = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def repair(self, relation: Relation) -> RepairOutcome:
        """Return a repaired copy of ``relation`` satisfying Σ.

        Raises
        ------
        RepairError
            If Σ is unsatisfiable (no repair can exist), the greedy loop
            fails to converge within ``max_rounds``, or a round cannot plan
            any fix for the remaining violations.
        """
        if not is_satisfiable(self.sigma):
            raise RepairError("the constraint set is unsatisfiable; no repair exists")

        working = relation.copy()
        changes: list[CellChange] = []
        rounds_trace: list[dict] = []
        for round_number in range(1, self.max_rounds + 1):
            violations = self.detector.detect(working)
            self.full_detect_count += 1
            if violations.is_clean():
                return self._outcome(working, changes, round_number - 1, rounds_trace)
            plan = self.planner.plan_round(working, violations)
            if not plan.changes:
                raise RepairError(
                    f"greedy repair stalled in round {round_number}: no fix applies "
                    f"to the {len(violations)} remaining dirty tuples"
                )
            changes.extend(plan.changes)
            rounds_trace.append(
                {
                    "round": round_number,
                    "dirty": len(violations),
                    "mv_fixes": plan.mv_fixes,
                    "sv_fixes": plan.sv_fixes,
                    "changes": len(plan.changes),
                }
            )

        final = self.detector.detect(working)
        self.full_detect_count += 1
        if final.is_clean():
            return self._outcome(working, changes, self.max_rounds, rounds_trace)
        raise RepairError(
            f"greedy repair did not converge within {self.max_rounds} rounds; "
            f"{len(final)} tuples remain dirty"
        )

    def _outcome(
        self,
        working: Relation,
        changes: list[CellChange],
        rounds: int,
        rounds_trace: list[dict],
    ) -> RepairOutcome:
        return RepairOutcome(
            working,
            changes,
            self.cost_model.cost(changes),
            rounds=rounds,
            trace={
                "strategy": "greedy",
                "full_detects": self.full_detect_count,
                "maintained_rounds": 0,
                "redetect_rows_avoided": 0,
                "summary_groups_repaired": 0,
                "rounds": rounds_trace,
            },
        )
