"""The eCFD pattern language: wildcards, value sets and complement sets.

Section II of the paper defines a pattern tuple entry ``tp[A]`` to be one of

* the unnamed variable ``'_'`` (any value of ``dom(A)`` matches),
* a finite set ``S ⊆ dom(A)`` (a value matches iff it is **in** ``S``), or
* a complement set ``S̄`` (a value matches iff it is **not** in ``S``).

A data value ``t[A]`` *matches* the pattern entry, written ``t[A] ≍ tp[A]``,
under the conditions above.  CFDs are the special case where every entry is
either ``'_'`` or a singleton set, and standard FDs are the special case
where every entry is ``'_'``.

This module implements the pattern-value hierarchy together with the small
algebra the rest of the library needs:

* :meth:`PatternValue.matches` — the ``≍`` relation;
* :meth:`PatternValue.constants` — the constants mentioned by the pattern
  (the building block of the *active domain* used in Sections III-IV);
* :meth:`PatternValue.subsumes` — semantic containment between patterns,
  used by the implication analysis and by tableau minimisation;
* :meth:`PatternValue.intersect` — conjunction of two patterns over the same
  attribute (used by the satisfiability search to combine constraints);
* :meth:`PatternValue.pick` / :meth:`PatternValue.admits` — pick a witness
  value / decide emptiness relative to a domain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.schema import Domain, Value
from repro.exceptions import PatternError

__all__ = [
    "PatternValue",
    "Wildcard",
    "ValueSet",
    "ComplementSet",
    "WILDCARD",
    "constant",
    "pattern_from_literal",
]


class PatternValue(ABC):
    """Abstract base class of the three pattern-entry kinds."""

    __slots__ = ()

    # ------------------------------------------------------------------
    # The match relation  t[A] ≍ tp[A]
    # ------------------------------------------------------------------
    @abstractmethod
    def matches(self, value: Value) -> bool:
        """Return ``True`` iff the data value matches this pattern entry."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @abstractmethod
    def constants(self) -> frozenset[Value]:
        """The constants syntactically mentioned by the pattern."""

    @property
    def is_wildcard(self) -> bool:
        """Whether this entry is the unnamed variable ``'_'``."""
        return isinstance(self, Wildcard)

    # ------------------------------------------------------------------
    # Semantic operations
    # ------------------------------------------------------------------
    @abstractmethod
    def subsumes(self, other: "PatternValue") -> bool:
        """Whether every value matching ``other`` also matches ``self``.

        Containment is decided *semantically*: e.g. ``S̄ = {a}ᶜ`` subsumes
        ``{b, c}`` whenever ``a`` is neither ``b`` nor ``c``.  For
        complement-vs-set comparisons the answer may depend on the attribute
        domain being infinite; this method assumes the conservative
        (infinite-domain) reading, which is sound for the uses in this
        library (implication counterexample search re-checks candidates
        explicitly).
        """

    @abstractmethod
    def intersect(self, other: "PatternValue") -> "PatternValue | None":
        """The pattern matching exactly the values both patterns match.

        Returns ``None`` when the conjunction is unsatisfiable over every
        domain (e.g. ``{a} ∩ {b}`` with ``a != b``).  A returned pattern may
        still be empty over a specific *finite* domain; use
        :meth:`admits` to check against a concrete domain.
        """

    @abstractmethod
    def admits(self, domain: Domain) -> bool:
        """Whether at least one value of ``domain`` matches this pattern."""

    @abstractmethod
    def pick(self, domain: Domain, avoid: Iterable[Value] = ()) -> Value | None:
        """Pick a deterministic matching value from ``domain``.

        Values in ``avoid`` are skipped if possible (they are still returned
        as a last resort when the pattern admits nothing else); ``None`` is
        returned when the pattern admits no value of the domain at all.
        """

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    @abstractmethod
    def to_text(self) -> str:
        """Render in the textual syntax understood by :mod:`repro.core.parser`."""

    def __str__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class Wildcard(PatternValue):
    """The unnamed variable ``'_'``: every domain value matches."""

    __slots__ = ()

    def matches(self, value: Value) -> bool:
        return True

    def constants(self) -> frozenset[Value]:
        return frozenset()

    def subsumes(self, other: PatternValue) -> bool:
        return True

    def intersect(self, other: PatternValue) -> PatternValue:
        return other

    def admits(self, domain: Domain) -> bool:
        return True

    def pick(self, domain: Domain, avoid: Iterable[Value] = ()) -> Value | None:
        avoided = set(avoid)
        fresh = domain.fresh_value(exclude=avoided)
        if fresh is not None:
            return fresh
        # Every domain value is avoided; fall back to any domain value.
        return domain.fresh_value()

    def to_text(self) -> str:
        return "_"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Wildcard()"


def _normalise_values(values: Iterable[Value], kind: str) -> frozenset[Value]:
    frozen = frozenset(values)
    if not frozen:
        raise PatternError(f"{kind} pattern must mention at least one constant")
    for value in frozen:
        if not isinstance(value, (str, int)):
            raise PatternError(
                f"{kind} pattern values must be strings or integers, got {value!r}"
            )
    return frozen


@dataclass(frozen=True)
class ValueSet(PatternValue):
    """A finite set pattern ``S``: a value matches iff it belongs to ``S``.

    The disjunction construct of the paper — e.g. the NYC area codes
    ``{212, 718, 646, 347, 917}`` in eCFD ψ2 of Fig. 2.
    """

    values: frozenset[Value]

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Value]):
        object.__setattr__(self, "values", _normalise_values(values, "value-set"))

    def __reduce__(self):
        # Frozen dataclasses with __slots__ cannot round-trip through the
        # default pickle path (state restoration calls the blocked
        # __setattr__); reconstruct through the constructor instead, which
        # the process-pool sharded detector relies on to ship constraints
        # to worker processes.
        return (ValueSet, (sorted(self.values, key=str),))

    def matches(self, value: Value) -> bool:
        return value in self.values

    def constants(self) -> frozenset[Value]:
        return self.values

    def subsumes(self, other: PatternValue) -> bool:
        if isinstance(other, ValueSet):
            return other.values <= self.values
        # A wildcard or a complement set matches infinitely many values
        # (under the conservative infinite-domain reading), so a finite set
        # can subsume neither.
        return False

    def intersect(self, other: PatternValue) -> PatternValue | None:
        if isinstance(other, Wildcard):
            return self
        if isinstance(other, ValueSet):
            common = self.values & other.values
            return ValueSet(common) if common else None
        if isinstance(other, ComplementSet):
            remaining = self.values - other.values
            return ValueSet(remaining) if remaining else None
        raise PatternError(f"cannot intersect with {other!r}")

    def admits(self, domain: Domain) -> bool:
        return any(value in domain for value in self.values)

    def pick(self, domain: Domain, avoid: Iterable[Value] = ()) -> Value | None:
        avoided = set(avoid)
        in_domain = sorted((v for v in self.values if v in domain), key=str)
        if not in_domain:
            return None
        for value in in_domain:
            if value not in avoided:
                return value
        return in_domain[0]

    def to_text(self) -> str:
        rendered = ", ".join(str(v) for v in sorted(self.values, key=str))
        return "{" + rendered + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueSet({sorted(self.values, key=str)!r})"


@dataclass(frozen=True)
class ComplementSet(PatternValue):
    """A complement-set pattern ``S̄``: a value matches iff it is *not* in ``S``.

    The inequality construct of the paper — e.g. ``CT ∉ {NYC, LI}`` in
    eCFD ψ1 of Fig. 2.
    """

    values: frozenset[Value]

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Value]):
        object.__setattr__(self, "values", _normalise_values(values, "complement-set"))

    def __reduce__(self):
        # See ValueSet.__reduce__: required for pickling across processes.
        return (ComplementSet, (sorted(self.values, key=str),))

    def matches(self, value: Value) -> bool:
        return value not in self.values

    def constants(self) -> frozenset[Value]:
        return self.values

    def subsumes(self, other: PatternValue) -> bool:
        if isinstance(other, ValueSet):
            return not (other.values & self.values)
        if isinstance(other, ComplementSet):
            # S̄ subsumes T̄ iff every value outside T is outside S, i.e. S ⊆ T.
            return self.values <= other.values
        return False

    def intersect(self, other: PatternValue) -> PatternValue | None:
        if isinstance(other, Wildcard):
            return self
        if isinstance(other, ValueSet):
            return other.intersect(self)
        if isinstance(other, ComplementSet):
            return ComplementSet(self.values | other.values)
        raise PatternError(f"cannot intersect with {other!r}")

    def admits(self, domain: Domain) -> bool:
        if not domain.is_finite:
            return True
        assert domain.values is not None
        return any(value not in self.values for value in domain.values)

    def pick(self, domain: Domain, avoid: Iterable[Value] = ()) -> Value | None:
        avoided = set(avoid) | set(self.values)
        candidate = domain.fresh_value(exclude=avoided)
        if candidate is not None:
            return candidate
        # Could not avoid the avoid-list; try ignoring it (but never the
        # complemented values themselves).
        return domain.fresh_value(exclude=self.values)

    def to_text(self) -> str:
        rendered = ", ".join(str(v) for v in sorted(self.values, key=str))
        return "!{" + rendered + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComplementSet({sorted(self.values, key=str)!r})"


#: Singleton wildcard instance — pattern tuples share it freely.
WILDCARD = Wildcard()


def constant(value: Value) -> ValueSet:
    """A CFD-style constant pattern, i.e. the singleton set ``{value}``."""
    return ValueSet([value])


def pattern_from_literal(literal: object) -> PatternValue:
    """Coerce a convenient Python literal into a :class:`PatternValue`.

    Accepted literals:

    * ``"_"`` or ``None`` — wildcard;
    * a ``str`` / ``int`` — singleton :class:`ValueSet` (CFD constant);
    * a ``set`` / ``frozenset`` / ``list`` / ``tuple`` — :class:`ValueSet`;
    * a :class:`PatternValue` — returned unchanged.

    Complement sets have no natural Python literal; construct them
    explicitly via :class:`ComplementSet` or the parser syntax ``!{...}``.
    """
    if isinstance(literal, PatternValue):
        return literal
    if literal is None or literal == "_":
        return WILDCARD
    if isinstance(literal, (set, frozenset, list, tuple)):
        return ValueSet(literal)
    if isinstance(literal, (str, int)):
        return constant(literal)
    raise PatternError(f"cannot build a pattern from literal {literal!r}")
