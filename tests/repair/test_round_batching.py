"""Batched repair rounds: local re-validation, one routed delta, exactness.

The sharded strategy plans all its rounds against the coordinator's mirror
(``MirrorValidator`` maintaining exact flags between rounds) and ships the
accumulated fixes as a single delete+reinsert delta — but only when the
``text_safe_patterns`` gate proves local Python matching coincides with
the delegate's semantics.  These tests pin the gate, the validator's
exactness against the reference semantics, the one-round-trip accounting,
and bit-exact equivalence between batched and per-round shipping.
"""

import random

import pytest

from repro.core import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.workload import paper_workload
from repro.engine import DataQualityEngine
from repro.parallel.repair import ShardedRepairStrategy
from repro.repair.cost import CellChange
from repro.repair.validate import MirrorValidator, text_safe_patterns
from tests.parallel.test_summary_merge import _random_rows, _random_sigma

SCHEMA = cust_ext_schema()


class TestTextSafePatterns:
    def test_paper_workload_is_text_safe(self):
        assert text_safe_patterns(paper_workload(SCHEMA))

    def test_integer_constant_fails_the_gate(self):
        psi = ECFD(SCHEMA, ["CT"], ["AC"], tableau=[({"CT": "NYC"}, {"AC": 212})])
        assert not text_safe_patterns(ECFDSet([psi]))
        mixed = ECFDSet(list(paper_workload(SCHEMA)) + [psi])
        assert not text_safe_patterns(mixed)

    def test_wildcards_and_empty_tableaus_are_safe(self):
        psi = ECFD(SCHEMA, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
        assert text_safe_patterns(ECFDSet([psi]))


class TestMirrorValidatorExactness:
    """The validator's flags track the reference semantics under changes."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_changes_match_reference_recompute(self, seed):
        rng = random.Random(8100 + seed)
        sigma = _random_sigma(rng)
        relation = Relation(SCHEMA)
        for row in _random_rows(rng, 120):
            relation.insert(row)
        validator = MirrorValidator(sigma, relation)
        assert validator.flags() == sigma.violations(relation)

        attributes = list(SCHEMA.attribute_names)
        domain = sorted({v for t in relation.tuples() for v in t.values()})
        for _ in range(6):
            changes = [
                CellChange(
                    tid=rng.choice(relation.tids()),
                    attribute=rng.choice(attributes),
                    old_value="",
                    new_value=rng.choice(domain),
                )
                for _ in range(rng.randrange(1, 8))
            ]
            for change in changes:
                relation.replace_cell(change.tid, change.attribute, str(change.new_value))
            flags = validator.apply_changes(changes)
            assert flags == sigma.violations(relation), (
                f"validator drifted from the reference on seed {seed}"
            )


def _repair_sharded(sigma, rows, batch_rounds, workers=3, executor="serial"):
    engine = DataQualityEngine(
        SCHEMA, sigma, backend="incremental", workers=workers, executor=executor
    )
    try:
        engine.load(rows)
        strategy = ShardedRepairStrategy(engine.sigma, max_rounds=25,
                                         batch_rounds=batch_rounds)
        outcome = strategy.repair(engine.backend)
        assert engine.violation_counts()["dirty"] == 0
        cells = {t.tid: t.values() for t in engine.to_relation().tuples()}
        return outcome, cells
    finally:
        engine.close()


class TestBatchedRoundShipping:
    def test_multi_round_repair_ships_one_delta(self):
        rows = DatasetGenerator(seed=4).generate_rows(500, 8.0)
        outcome, _ = _repair_sharded(paper_workload(SCHEMA), rows, batch_rounds=True)
        trace = outcome.trace
        assert trace["full_detects"] == 0
        assert outcome.rounds > 1, "need a multi-round repair to exercise batching"
        assert trace["lane_round_trips"] == 1
        assert trace["round_trips_saved"] == trace["maintained_rounds"] - 1
        assert len(trace["rounds"]) == trace["maintained_rounds"]

    def test_batched_matches_per_round_shipping_bit_for_bit(self):
        sigma = paper_workload(SCHEMA)
        rows = DatasetGenerator(seed=4).generate_rows(500, 8.0)
        batched, batched_cells = _repair_sharded(sigma, rows, batch_rounds=True)
        shipped, shipped_cells = _repair_sharded(sigma, rows, batch_rounds=False)
        assert batched_cells == shipped_cells
        assert batched.cost == shipped.cost
        assert len(batched.changes) == len(shipped.changes)
        assert batched.rounds == shipped.rounds
        # Per-round shipping pays one lane round-trip per round.
        assert "round_trips_saved" not in shipped.trace

    def test_non_text_safe_sigma_falls_back_to_shipped_rounds(self):
        """An integer pattern constant disarms local re-validation."""
        psi = ECFD(
            SCHEMA, ["CT"], [], ["ZIP"],
            tableau=[({"CT": "Chicago"}, {"ZIP": 60601})],
            name="int_constant_rider",
        )
        sigma = ECFDSet(list(paper_workload(SCHEMA)) + [psi])
        rows = DatasetGenerator(seed=6).generate_rows(400, 8.0)
        outcome, _ = _repair_sharded(sigma, rows, batch_rounds=True)
        # The fallback is the per-round strategy: no batching trace fields.
        assert "round_trips_saved" not in outcome.trace
        assert outcome.trace["full_detects"] == 0

    def test_clean_data_ships_nothing(self):
        sigma = paper_workload(SCHEMA)
        rows = DatasetGenerator(seed=2).generate_rows(200, 0.0)
        outcome, _ = _repair_sharded(sigma, rows, batch_rounds=True)
        assert outcome.rounds == 0
        assert outcome.trace["lane_round_trips"] == 0
        assert outcome.trace["round_trips_saved"] == 0
