"""Admission control: bounded queue depth with producer back-pressure.

The always-on service decouples producers (client submits) from the
consumer (the pump shipping coalesced deltas to the sharded lanes).  An
unbounded gap between them lets a fast producer grow the pending window —
and the coordinator's memory — without limit; :class:`AdmissionController`
bounds it.  Producers *acquire* capacity for each raw operation before the
coalescer accepts it and the pump *releases* it once the operation's window
has been shipped, so a producer racing ahead of the lanes parks inside
``acquire`` (asyncio back-pressure, no busy-waiting) until the pump catches
up.

One deliberate exception: a submission larger than the whole capacity is
admitted when the queue is empty instead of deadlocking — the bound exists
to limit the producer/consumer gap, not to reject oversized batches (the
coalescer's flush chunking caps what actually ships to a lane per batch).
"""

from __future__ import annotations

import asyncio

__all__ = ["AdmissionController"]


class AdmissionController:
    """An asyncio counting gate over pending raw operations.

    Parameters
    ----------
    capacity:
        Maximum raw operations admitted but not yet shipped.  Must be
        positive.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pending = 0
        self._condition = asyncio.Condition()
        #: Times a producer had to wait for capacity (the back-pressure count).
        self.waits = 0

    @property
    def pending(self) -> int:
        """Raw operations currently admitted and awaiting shipment."""
        return self._pending

    def _admissible(self, ops: int) -> bool:
        return self._pending == 0 or self._pending + ops <= self.capacity

    async def acquire(self, ops: int) -> None:
        """Admit ``ops`` raw operations, waiting for capacity if needed."""
        if ops <= 0:
            return
        async with self._condition:
            if not self._admissible(ops):
                self.waits += 1
                await self._condition.wait_for(lambda: self._admissible(ops))
            self._pending += ops

    async def release(self, ops: int) -> None:
        """Return ``ops`` operations' capacity after their window shipped."""
        if ops <= 0:
            return
        async with self._condition:
            self._pending = max(0, self._pending - ops)
            self._condition.notify_all()

    def stats(self) -> dict[str, int]:
        """Queue-depth bound, current depth and back-pressure wait count."""
        return {
            "capacity": self.capacity,
            "pending": self._pending,
            "waits": self.waits,
        }
