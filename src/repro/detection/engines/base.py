"""The abstract SQL engine interface behind :class:`ECFDDatabase`.

An engine owns one DBMS connection and knows how to execute the dialect's
SQL; everything *about* the detection schema (tables, flags, tids) stays in
:class:`repro.detection.database.ECFDDatabase`, which is engine-agnostic.
The split is deliberate: DB driver imports are confined to the concrete
engine modules under ``repro/detection/engines/`` (enforced by lint rule
RPL005), so the rest of the detection stack can be reasoned about as pure
SQL over an abstract executor.

Thread affinity: engine connections are *thread-affine* by contract —
SQLite enforces it natively and DuckDB connections are not synchronised —
which is why the parallel fabric pins each shard state to one lane thread.
Engines must never be captured into closures that cross executors (also
RPL005).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from typing import Any, ClassVar

from repro.detection.dialect import SqlDialect

__all__ = ["SqlEngine"]


class SqlEngine(ABC):
    """One DBMS connection plus the dialect describing its SQL idioms.

    Parameters
    ----------
    path:
        Storage location; ``":memory:"`` (the default everywhere) keeps the
        database in-process.
    """

    #: Registry key of the engine (set by subclasses).
    name: ClassVar[str] = ""
    #: The SQL dialect this engine's statements are generated through.
    dialect: SqlDialect

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    @abstractmethod
    def execute(self, sql: str, parameters: Sequence = ()) -> Any:
        """Execute one SQL statement; the return value is engine-native."""

    @abstractmethod
    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        """Execute one SQL statement for many parameter rows."""

    @abstractmethod
    def query(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Execute a query and fetch all rows as tuples."""

    @abstractmethod
    def update_rowcount(self, sql: str, parameters: Sequence = ()) -> int:
        """Execute an UPDATE/DELETE and return the number of affected rows.

        Separate from :meth:`execute` because engines disagree on how the
        count comes back (SQLite: ``cursor.rowcount``; DuckDB: a one-row
        ``Count`` result set).
        """

    def bulk_insert(
        self, table: str, columns: Sequence[str], rows: Sequence[Sequence]
    ) -> int:
        """Append many rows to ``table`` as fast as the engine can.

        The default builds one prepared INSERT and drives it through
        :meth:`executemany`; columnar engines override it with zero-copy
        appends (Arrow registration) instead of per-row binds.  Returns the
        number of rows appended.
        """
        if not rows:
            return 0
        quoted = ", ".join(self.dialect.quote_identifier(c) for c in columns)
        placeholders = ", ".join(self.dialect.placeholder for _ in columns)
        self.executemany(
            f"INSERT INTO {self.dialect.quote_identifier(table)} "
            f"({quoted}) VALUES ({placeholders})",
            rows,
        )
        return len(rows)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def commit(self) -> None:
        """Commit the current transaction (a no-op for autocommit engines)."""

    def rollback(self) -> None:
        """Roll back the current transaction (a no-op for autocommit engines)."""

    @abstractmethod
    def close(self) -> None:
        """Close the underlying connection."""
