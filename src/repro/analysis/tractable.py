"""The infinite-domain construction of Proposition 3.3.

For CFDs, the satisfiability and implication analyses become tractable when
no attribute has a finite domain.  Proposition 3.3 shows that eCFDs lose
this tractable special case: an eCFD can force an attribute with an
*infinite* domain to take values from a finite set only, so the
finite-domain behaviour can always be re-created.  The proof is by the
following reduction, which this module makes executable:

Given constraints Σ over a schema R that may have finite-domain attributes,
build

* a schema R' identical to R except that every attribute has an infinite
  domain, and
* Σ' = Σ (re-expressed over R') ∪ { φ_A | A had a finite domain }, where

      φ_A = (R' : [A] -> ∅, {A}, {( _  ||  dom(A) )})

  i.e. a single-pattern eCFD whose LHS wildcard matches every tuple and
  whose Yp pattern restricts A to the original finite domain.

Then Σ' is satisfiable over R' iff Σ is satisfiable over R, and likewise
for implication — which is how the NP/coNP lower bounds carry over to the
infinite-domain-only setting.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ecfd import ECFD, ECFDSet, PatternTuple
from repro.core.patterns import ValueSet, Wildcard
from repro.core.schema import Attribute, Domain, RelationSchema
from repro.exceptions import ConstraintError

__all__ = ["domain_restriction_ecfd", "rewrite_to_infinite_domains"]


def domain_restriction_ecfd(schema: RelationSchema, attribute: str, values) -> ECFD:
    """The eCFD φ_A forcing ``attribute`` to take values from ``values``.

    ``(R: [A] -> ∅, {A}, {(_ || values)})`` — every tuple matches the LHS
    wildcard, and the Yp pattern then requires ``t[A] ∈ values``.
    """
    return ECFD(
        schema,
        lhs=[attribute],
        rhs=[],
        pattern_rhs=[attribute],
        tableau=[PatternTuple({attribute: Wildcard()}, {attribute: ValueSet(values)})],
        name=f"domain_restriction_{attribute}",
    )


def rewrite_to_infinite_domains(
    sigma: ECFDSet | Sequence[ECFD],
) -> tuple[RelationSchema, ECFDSet]:
    """The Proposition 3.3 construction.

    Returns the infinite-domain schema R' and the constraint set Σ' such
    that Σ' is satisfiable iff the input is.  Constraints over a schema with
    no finite-domain attributes are returned unchanged (modulo the schema
    object identity).
    """
    constraints = list(sigma)
    if not constraints:
        raise ConstraintError("cannot rewrite an empty constraint set")
    schema = constraints[0].schema

    finite_attributes = [a for a in schema.attributes if a.domain.is_finite]
    infinite_schema = RelationSchema(
        schema.name,
        [Attribute(a.name, Domain(f"{a.domain.name}_inf")) for a in schema.attributes],
    )

    rewritten: list[ECFD] = []
    for constraint in constraints:
        rewritten.append(
            ECFD(
                infinite_schema,
                constraint.lhs,
                constraint.rhs,
                constraint.pattern_rhs,
                constraint.tableau,
                name=constraint.name,
            )
        )
    for attribute in finite_attributes:
        assert attribute.domain.values is not None
        rewritten.append(
            domain_restriction_ecfd(infinite_schema, attribute.name, attribute.domain.values)
        )
    return infinite_schema, ECFDSet(rewritten)
