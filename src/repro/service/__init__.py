"""The always-on quality service (streaming front end over the engine).

This package keeps a :class:`~repro.engine.DataQualityEngine` running as a
long-lived subsystem: concurrent clients stream updates in, the violation
set vio(D) is maintained continuously through the sharded INCDETECT lanes,
and queries answer from the live merged state without re-detection.

* :class:`~repro.service.service.QualityService` — the asyncio service
  core: admission control, delta coalescing, the single pump shipping
  pipelined batches to the lanes, and ``detect`` / ``breakdown`` /
  ``repair`` / ``stats`` queries with read-your-writes barriers;
* :class:`~repro.service.coalescer.DeltaCoalescer` — nets out same-tid
  churn per window (insert→delete cancels; delete + reinsert of one
  identifier folds to a value update) while preserving the backend's tid
  discipline bit-exactly;
* :class:`~repro.service.admission.AdmissionController` — bounds admitted
  but unshipped operations, parking fast producers in back-pressure;
* :class:`~repro.service.server.QualityServer` /
  :class:`~repro.service.server.QualityClient` — a thin TCP JSON-lines
  skin over the async API.
"""

from repro.service.admission import AdmissionController
from repro.service.coalescer import DeltaCoalescer
from repro.service.server import QualityClient, QualityServer
from repro.service.service import QualityService, SubmitReceipt

__all__ = [
    "AdmissionController",
    "DeltaCoalescer",
    "QualityClient",
    "QualityServer",
    "QualityService",
    "SubmitReceipt",
]
