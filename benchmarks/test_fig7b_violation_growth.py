"""Fig. 7(b): growth of the number of single / multiple tuple violations.

Paper setting: |D| = 100k, noise = 5%, |Tp| = 10; the number of single-tuple
violations (DSV) and multiple-tuple violations (DMV) is reported as the
update size grows.  Expected shape: DSV grows roughly linearly with the
update size, while DMV grows much faster for large updates — the effect the
paper uses to explain why BATCHDETECT wins for very large updates.

The benchmark times the post-update detection (so the suite still produces a
timing row) and attaches the SV / MV counts to ``extra_info``, which is the
actual figure series.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    prepared_batch_detector,
    sweep,
    update_batch,
)

UPDATE_FRACTIONS = sweep([0.02, 0.1, 0.2, 0.4, 0.6])


@pytest.mark.parametrize("fraction", UPDATE_FRACTIONS)
def test_fig7b_violation_growth_with_update_size(benchmark, fraction, base_workload):
    rows = dataset_rows(BENCH_SIZE)
    batch = update_batch(len(rows), int(BENCH_SIZE * fraction))

    def setup():
        detector = prepared_batch_detector(rows, base_workload)
        before = detector.detect()
        detector.database.delete_tuples(batch.delete_tids)
        detector.database.insert_tuples(list(batch.insert_rows))
        return (detector,), {"before": before}

    def run(detector, before):
        after = detector.detect()
        return before, after, detector.violation_counts()

    before, after, counts = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["sv_before"] = len(before.sv_tids)
    benchmark.extra_info["mv_before"] = len(before.mv_tids)
    benchmark.extra_info["sv_after"] = counts["sv"]
    benchmark.extra_info["mv_after"] = counts["mv"]
    benchmark.extra_info["dirty_after"] = len(after)
