"""Experiment reporting: a figure registry over ``BENCH_<sha>.json`` artifacts.

``repro.reports`` turns the self-describing benchmark artifacts CI already
uploads (plus optional experiment-driver sweeps) into the paper's figures,
the growth figures, and a cross-commit perf-trajectory report — without
re-running a single benchmark.  See ``docs/REPORTING.md`` for the
concepts and ``python -m repro.reports --help`` for the CLI.
"""

from repro.reports.context import DEFAULT_BENCH_DIR, ReportContext
from repro.reports.loaders import (
    BenchEntry,
    BenchRun,
    load_bench_dirs,
    load_bench_file,
    load_experiment_dir,
    load_experiment_file,
)
from repro.reports.markdown import figure_markdown, inject_block, markdown_table
from repro.reports.model import (
    Annotation,
    FigureData,
    ReportDataError,
    ReportError,
    Series,
    UnknownFigureError,
)
from repro.reports.registry import (
    FigureSpec,
    available_figures,
    figure_groups,
    register_figure,
    resolve_figure,
    select_figures,
)
from repro.reports.render import png_available, render_png, render_svg
from repro.reports.schema import TRACKED_BENCHMARKS, validate_benchmark_payload
from repro.reports.trajectory import trajectory_figure, trajectory_table

__all__ = [
    "DEFAULT_BENCH_DIR",
    "ReportContext",
    "BenchEntry",
    "BenchRun",
    "load_bench_dirs",
    "load_bench_file",
    "load_experiment_dir",
    "load_experiment_file",
    "figure_markdown",
    "inject_block",
    "markdown_table",
    "Annotation",
    "FigureData",
    "ReportDataError",
    "ReportError",
    "Series",
    "UnknownFigureError",
    "FigureSpec",
    "available_figures",
    "figure_groups",
    "register_figure",
    "resolve_figure",
    "select_figures",
    "png_available",
    "render_png",
    "render_svg",
    "TRACKED_BENCHMARKS",
    "validate_benchmark_payload",
    "trajectory_figure",
    "trajectory_table",
]
