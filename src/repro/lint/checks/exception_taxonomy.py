"""RPL006 — the project exception taxonomy.

* Every ``except Exception`` / ``except BaseException`` / bare
  ``except:`` must carry the established justification comment
  ``# noqa: BLE001 - <reason>`` on the same line — a blanket catch is
  sometimes right (teardown, protocol boundaries) but never silently.
* Exception classes defined in ``src/`` must subclass
  :class:`repro.exceptions.ReproError`, and ``raise`` sites in ``src/``
  may not raise a project class outside the hierarchy — callers dispatch
  on it.  (Builtins like ``ValueError`` for argument validation are out
  of scope; tests may define throwaway exceptions freely.)
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL006"

_JUSTIFIED_RE = re.compile(r"#\s*noqa:\s*BLE001\s*-\s*\S")

_BROAD = {"Exception", "BaseException"}


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return any(isinstance(n, ast.Name) and n.id in _BROAD for n in nodes)


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ExceptHandler) and _catches_broad(node):
            line = (
                file.lines[node.lineno - 1] if node.lineno <= len(file.lines) else ""
            )
            if not _JUSTIFIED_RE.search(line):
                yield Violation(
                    CODE,
                    file.rel,
                    node.lineno,
                    node.col_offset,
                    "broad except without a '# noqa: BLE001 - <reason>' "
                    "justification — say why swallowing everything is safe "
                    "here, or narrow the type",
                )
        if not file.in_src:
            continue
        if isinstance(node, ast.ClassDef):
            info = index.classes.get(node.name)
            if (
                info is not None
                and info.rel == file.rel
                and info.line == node.lineno
                and index.is_exception_like(node.name)
                and not index.is_repro_error(node.name)
            ):
                yield Violation(
                    CODE,
                    file.rel,
                    node.lineno,
                    node.col_offset,
                    f"exception class {node.name!r} does not subclass "
                    "ReproError — project exceptions form one dispatchable "
                    "hierarchy",
                )
        elif isinstance(node, ast.Raise):
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if (
                name is not None
                and name in index.classes
                and index.is_exception_like(name)
                and not index.is_repro_error(name)
            ):
                yield Violation(
                    CODE,
                    file.rel,
                    node.lineno,
                    node.col_offset,
                    f"raise of project exception {name!r} outside the "
                    "ReproError hierarchy",
                )
