"""In-memory relation instances.

The detection algorithms of Section V run over a real RDBMS substrate
(:mod:`repro.detection`), but the static analyses of Sections III-IV, the
naive oracle detector, the data generators and the test-suite all work with
plain in-memory instances.  This module provides those:

* :class:`RelationTuple` — an immutable tuple over a schema with
  dictionary-style access by attribute name;
* :class:`Relation` — a (multi)set of tuples over a schema, with the small
  amount of relational algebra the library needs (selection by pattern,
  projection, grouping by attributes, insertion/deletion deltas).

A :class:`Relation` is deliberately a *bag*: the paper's violation semantics
is defined per data tuple, and generated datasets may legitimately contain
duplicate rows.  Each tuple therefore carries a ``tid`` (tuple identifier)
assigned at insertion time, which is also what the SQLite substrate uses as
its primary key so that violation sets can be compared across detectors.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.schema import RelationSchema, Value
from repro.exceptions import SchemaError

__all__ = ["RelationTuple", "Relation"]


class RelationTuple(Mapping[str, Value]):
    """An immutable data tuple over a relation schema.

    Access values with ``t["CT"]`` or ``t.project(["CT", "AC"])``.  Equality
    ignores the tuple identifier (``tid``): two tuples are equal when they
    agree on every attribute, which is the notion the FD semantics needs.
    """

    __slots__ = ("_schema", "_values", "tid")

    def __init__(
        self,
        schema: RelationSchema,
        values: Mapping[str, Value] | Sequence[Value],
        tid: int | None = None,
    ):
        self._schema = schema
        if isinstance(values, Mapping):
            missing = [a for a in schema.attribute_names if a not in values]
            extra = [a for a in values if a not in schema]
            if missing or extra:
                raise SchemaError(
                    f"tuple over {schema.name!r} has missing attributes {missing} "
                    f"and unknown attributes {extra}"
                )
            ordered = tuple(values[a] for a in schema.attribute_names)
        else:
            if len(values) != len(schema):
                raise SchemaError(
                    f"tuple over {schema.name!r} needs {len(schema)} values, "
                    f"got {len(values)}"
                )
            ordered = tuple(values)
        self._values: tuple[Value, ...] = ordered
        self.tid = tid

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, attribute: str) -> Value:
        index = self._schema.index_of(attribute)
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.attribute_names)

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------
    # Relational helpers
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        return self._schema

    def values(self) -> tuple[Value, ...]:  # type: ignore[override]
        """The attribute values in schema order."""
        return self._values

    def project(self, attributes: Iterable[str]) -> tuple[Value, ...]:
        """Return the values of ``attributes``, in the order given."""
        return tuple(self[a] for a in attributes)

    def replace(self, **changes: Value) -> "RelationTuple":
        """Return a copy of this tuple with some attribute values replaced."""
        data = dict(zip(self._schema.attribute_names, self._values))
        for attribute, value in changes.items():
            if attribute not in self._schema:
                raise SchemaError(
                    f"cannot set unknown attribute {attribute!r} on a "
                    f"{self._schema.name!r} tuple"
                )
            data[attribute] = value
        return RelationTuple(self._schema, data, tid=self.tid)

    def as_dict(self) -> dict[str, Value]:
        """A plain ``dict`` copy of the tuple."""
        return dict(zip(self._schema.attribute_names, self._values))

    # ------------------------------------------------------------------
    # Equality / hashing ignore tid
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationTuple):
            return self._schema == other._schema and self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema.name, self._values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rendered = ", ".join(
            f"{a}={v!r}" for a, v in zip(self._schema.attribute_names, self._values)
        )
        tid = f", tid={self.tid}" if self.tid is not None else ""
        return f"RelationTuple({rendered}{tid})"


class Relation:
    """A bag of tuples over a fixed schema, with tuple identifiers.

    The class supports the operations the library needs and nothing more:
    bulk insertion, deletion by identifier or by value, selection with an
    arbitrary predicate, grouping by a list of attributes, and computation
    of active domains (the set of constants appearing in a column).
    """

    def __init__(self, schema: RelationSchema, tuples: Iterable[RelationTuple | Mapping[str, Value] | Sequence[Value]] = ()):
        self.schema = schema
        self._tuples: dict[int, RelationTuple] = {}
        self._next_tid = 1
        self.extend(tuples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: RelationTuple | Mapping[str, Value] | Sequence[Value]) -> RelationTuple:
        """Insert one row and return the stored tuple (with its ``tid``)."""
        if isinstance(row, RelationTuple):
            if row.schema != self.schema:
                raise SchemaError(
                    f"cannot insert a {row.schema.name!r} tuple into a "
                    f"{self.schema.name!r} relation"
                )
            stored = RelationTuple(self.schema, row.values(), tid=self._next_tid)
        else:
            stored = RelationTuple(self.schema, row, tid=self._next_tid)
        self._tuples[self._next_tid] = stored
        self._next_tid += 1
        return stored

    def extend(self, rows: Iterable[RelationTuple | Mapping[str, Value] | Sequence[Value]]) -> list[RelationTuple]:
        """Insert many rows; returns the stored tuples."""
        return [self.insert(row) for row in rows]

    def insert_with_tid(
        self, tid: int, row: RelationTuple | Mapping[str, Value] | Sequence[Value]
    ) -> RelationTuple:
        """Insert one row under an explicit tuple identifier.

        This is the parity point with the SQLite substrate: materialising a
        database table back into memory (or mirroring its insertion
        semantics) must preserve identifiers so violation sets computed in
        SQL and in memory are directly comparable.
        """
        if tid in self._tuples:
            raise SchemaError(
                f"relation {self.schema.name!r} already has a tuple with tid={tid}"
            )
        if isinstance(row, RelationTuple):
            if row.schema != self.schema:
                raise SchemaError(
                    f"cannot insert a {row.schema.name!r} tuple into a "
                    f"{self.schema.name!r} relation"
                )
            stored = RelationTuple(self.schema, row.values(), tid=tid)
        else:
            stored = RelationTuple(self.schema, row, tid=tid)
        self._tuples[tid] = stored
        self._next_tid = max(self._next_tid, tid + 1)
        return stored

    def delete(self, tid: int) -> RelationTuple:
        """Remove and return the tuple with identifier ``tid``."""
        try:
            return self._tuples.pop(tid)
        except KeyError:
            raise SchemaError(f"relation {self.schema.name!r} has no tuple with tid={tid}") from None

    def delete_matching(self, predicate: Callable[[RelationTuple], bool]) -> list[RelationTuple]:
        """Remove every tuple satisfying ``predicate``; returns the removed tuples."""
        doomed = [t for t in self._tuples.values() if predicate(t)]
        for t in doomed:
            assert t.tid is not None
            del self._tuples[t.tid]
        return doomed

    def replace_cell(self, tid: int, attribute: str, value: Value) -> RelationTuple:
        """Overwrite one cell of the tuple ``tid`` in place; returns the new tuple.

        The tuple identifier is preserved — this is the mutation primitive of
        value-modification repair, where a fix changes a cell but the tuple
        keeps its identity (so violation sets before and after the fix remain
        comparable).  Tuples are immutable, so the stored tuple is swapped
        for an updated copy.
        """
        current = self._tuples.get(tid)
        if current is None:
            raise SchemaError(
                f"relation {self.schema.name!r} has no tuple with tid={tid}"
            )
        updated = current.replace(**{attribute: value})
        self._tuples[tid] = updated
        return updated

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[RelationTuple]:
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, row: object) -> bool:
        if isinstance(row, RelationTuple):
            return any(t == row for t in self._tuples.values())
        return False

    def get(self, tid: int) -> RelationTuple | None:
        """The tuple with identifier ``tid``, or ``None``."""
        return self._tuples.get(tid)

    def tids(self) -> list[int]:
        """All tuple identifiers, ascending."""
        return sorted(self._tuples)

    def tuples(self) -> list[RelationTuple]:
        """All tuples, in insertion (tid) order."""
        return [self._tuples[tid] for tid in self.tids()]

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[RelationTuple], bool]) -> list[RelationTuple]:
        """All tuples satisfying ``predicate``, in tid order."""
        return [t for t in self.tuples() if predicate(t)]

    def group_by(self, attributes: Sequence[str]) -> dict[tuple[Value, ...], list[RelationTuple]]:
        """Group the tuples by their projection onto ``attributes``."""
        self.schema.check_attributes(attributes, context="group_by")
        groups: dict[tuple[Value, ...], list[RelationTuple]] = {}
        for t in self.tuples():
            groups.setdefault(t.project(attributes), []).append(t)
        return groups

    def active_domain(self, attribute: str) -> set[Value]:
        """The set of values occurring in column ``attribute``."""
        self.schema.check_attributes([attribute], context="active_domain")
        return {t[attribute] for t in self._tuples.values()}

    def copy(self) -> "Relation":
        """A deep copy preserving tuple identifiers."""
        clone = Relation(self.schema)
        clone._tuples = dict(self._tuples)
        clone._next_tid = self._next_tid
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name!r}, {len(self)} tuples)"
