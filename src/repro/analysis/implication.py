"""Exact implication analysis of eCFDs (Proposition 3.2).

The implication problem asks, for a set Σ of eCFDs and a candidate eCFD φ
over the same schema, whether every instance satisfying Σ also satisfies φ
(written Σ ⊨ φ).  The paper proves the problem coNP-complete via the
small-model property used here:

    Σ ⊭ φ  ⟺  there is a counterexample instance I with **at most two
               tuples** such that I ⊨ Σ and I ⊭ φ.

(Two tuples suffice because a violation of φ is witnessed either by one
tuple breaking a pattern constraint or by two tuples breaking the embedded
FD; removing every other tuple can only remove violations of Σ.)

The checker therefore searches for a two-tuple counterexample.  Candidate
values per attribute are drawn from the active domain of Σ ∪ {φ} extended
with *two* fresh values (so the two tuples can disagree on an attribute
without touching any mentioned constant), and a backtracking search assigns
the two tuples attribute by attribute with sound pruning against Σ's
pattern constraints and embedded FDs.

The module also exposes the classical consequence operations built on top
of ``implies``: detecting redundant constraints and pruning a constraint
set to an irredundant "cover", which is the optimization use-case the paper
motivates the implication analysis with.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.active_domain import active_domains, mentioned_attributes
from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import Value
from repro.exceptions import ConstraintError

__all__ = ["implies", "find_counterexample", "is_redundant", "irredundant_cover"]


def find_counterexample(
    sigma: ECFDSet | Sequence[ECFD], candidate: ECFD
) -> Relation | None:
    """Search for an instance I (|I| ≤ 2) with I ⊨ Σ and I ⊭ φ.

    Returns the counterexample relation, or ``None`` when Σ ⊨ φ.
    """
    constraints = list(sigma)
    schema = candidate.schema
    for constraint in constraints:
        if constraint.schema != schema:
            raise ConstraintError("Σ and the candidate eCFD must share one schema")

    sigma_fragments = [f for constraint in constraints for f in constraint.normalize()]
    all_fragments = sigma_fragments + candidate.normalize()
    domains = active_domains(all_fragments, schema, fresh_per_attribute=2)
    search_order = mentioned_attributes(all_fragments)

    first: dict[str, Value] = {}
    second: dict[str, Value] = {}

    def sigma_consistent() -> bool:
        """Prune branches that already violate Σ irrecoverably."""
        for fragment in sigma_fragments:
            pattern = fragment.tableau[0]
            for partial in (first, second):
                if not all(a in partial for a in fragment.lhs):
                    continue
                if not pattern.matches_lhs(partial):
                    continue
                for attribute in fragment.rhs_all:
                    if attribute in partial and not pattern.rhs_entry(attribute).matches(
                        partial[attribute]
                    ):
                        return False
            # Embedded FD between the two partial tuples.
            if fragment.rhs and all(a in first and a in second for a in fragment.lhs):
                if pattern.matches_lhs(first) and pattern.matches_lhs(second):
                    if all(first[a] == second[a] for a in fragment.lhs):
                        for attribute in fragment.rhs:
                            if (
                                attribute in first
                                and attribute in second
                                and first[attribute] != second[attribute]
                            ):
                                return False
        return True

    def build_instance() -> Relation:
        relation = Relation(schema)
        for partial in (first, second):
            row = dict(partial)
            for attribute in schema.attribute_names:
                if attribute not in row:
                    fresh = schema.domain(attribute).fresh_value()
                    row[attribute] = fresh if fresh is not None else domains[attribute][0]
            relation.insert(row)
        return relation

    def backtrack(position: int) -> Relation | None:
        if position == len(search_order):
            instance = build_instance()
            if all(c.is_satisfied_by(instance) for c in constraints) and not candidate.is_satisfied_by(
                instance
            ):
                return instance
            return None
        attribute = search_order[position]
        for value_one in domains[attribute]:
            first[attribute] = value_one
            for value_two in domains[attribute]:
                second[attribute] = value_two
                if sigma_consistent():
                    found = backtrack(position + 1)
                    if found is not None:
                        return found
                del second[attribute]
            del first[attribute]
        return None

    return backtrack(0)


def implies(sigma: ECFDSet | Sequence[ECFD], candidate: ECFD) -> bool:
    """Decide Σ ⊨ φ exactly (via the two-tuple counterexample search)."""
    return find_counterexample(sigma, candidate) is None


def is_redundant(sigma: ECFDSet | Sequence[ECFD], candidate: ECFD) -> bool:
    """Whether ``candidate`` is entailed by the *other* members of Σ.

    ``candidate`` must be a member of ``sigma``; the check removes the first
    occurrence and tests implication from the remainder.
    """
    constraints = list(sigma)
    if candidate not in constraints:
        raise ConstraintError("is_redundant expects the candidate to be a member of Σ")
    remainder = list(constraints)
    remainder.remove(candidate)
    if not remainder:
        return False
    return implies(remainder, candidate)


def irredundant_cover(sigma: ECFDSet | Sequence[ECFD]) -> list[ECFD]:
    """Remove eCFDs entailed by the rest of the set, greedily and in order.

    This is the "removing redundancies in a given set of eCFDs" optimization
    the paper motivates the implication analysis with.  The result is
    equivalent to the input set (every removed constraint is implied by the
    remainder at the time of removal).
    """
    remaining = list(sigma)
    index = 0
    while index < len(remaining):
        candidate = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        if rest and implies(rest, candidate):
            remaining = rest
        else:
            index += 1
    return remaining
