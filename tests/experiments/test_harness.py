"""Unit tests for the experiment harness (smoke scale)."""

import pytest

from repro.datagen import DatasetGenerator, UpdateGenerator, paper_workload
from repro.experiments import (
    SCALES,
    current_scale,
    fig5a,
    fig7b,
    format_table,
    timed_batch_after_update,
    timed_batch_detection,
    timed_incremental_update,
    to_csv,
)
from repro.experiments.figures import ablation_maxss
from repro.experiments.reporting import ExperimentResult
from repro.experiments.timing import Measurement, Timer, stopwatch


SMOKE = SCALES["smoke"]


class TestTiming:
    def test_stopwatch_measures_nonnegative_time(self):
        with stopwatch() as timer:
            sum(range(10_000))
        assert timer.elapsed >= 0.0

    def test_timer_requires_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_measurement_as_row(self):
        measurement = Measurement("batch", 100, 0.5, extra={"sv": 3})
        row = measurement.as_row()
        assert row["series"] == "batch"
        assert row["parameter"] == 100
        assert row["sv"] == 3


class TestScales:
    def test_named_scales_exist(self):
        assert {"smoke", "bench", "paper"} <= set(SCALES)
        assert SCALES["paper"].default_size == 100_000
        assert SCALES["paper"].dataset_sizes[-1] == 100_000

    def test_current_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        assert current_scale("paper").name == "paper"
        with pytest.raises(ValueError):
            current_scale("galactic")


class TestReporting:
    def test_format_table_and_csv(self):
        rows = [{"series": "a", "parameter": 1, "seconds": 0.1}, {"series": "b", "parameter": 2, "seconds": 0.2}]
        table = format_table(rows)
        assert "series" in table and "0.2" in table
        csv_text = to_csv(rows)
        assert csv_text.splitlines()[0] == "series,parameter,seconds"
        assert format_table([]) == "(no data)"
        assert to_csv([]) == ""

    def test_experiment_result_helpers(self):
        result = ExperimentResult("figX", "demo")
        result.measurements.append(Measurement("a", 1, 0.1))
        result.measurements.append(Measurement("b", 1, 0.2))
        assert len(result.series("a")) == 1
        assert "figX" in result.to_table()
        assert "series" in result.to_csv()


class TestTimedBuildingBlocks:
    def test_timed_batch_detection(self):
        sigma = paper_workload()
        rows = DatasetGenerator(seed=0).generate_rows(120, 5.0)
        measurement, violations = timed_batch_detection(rows, sigma, parameter=120)
        assert measurement.extra["tuples"] == 120
        assert measurement.seconds >= 0.0
        assert measurement.extra["dirty"] == len(violations)
        assert not violations.is_clean()

    def test_incremental_and_batch_after_update_agree(self):
        sigma = paper_workload()
        generator = DatasetGenerator(seed=1)
        rows = generator.generate_rows(100, 5.0)
        updates = UpdateGenerator(DatasetGenerator(seed=2), seed=3)
        batch = updates.make_batch(range(1, 101), insert_count=20, delete_count=20, noise_percent=5.0)
        _, _, incremental_result = timed_incremental_update(rows, sigma, batch, parameter=20)
        _, batch_result = timed_batch_after_update(rows, sigma, batch, parameter=20)
        assert incremental_result == batch_result


class TestFigureDrivers:
    def test_fig5a_produces_one_point_per_size(self):
        result = fig5a(SMOKE)
        assert len(result.measurements) == len(SMOKE.dataset_sizes)
        assert [m.parameter for m in result.measurements] == list(SMOKE.dataset_sizes)
        assert all(m.label == "batchdetect" for m in result.measurements)

    def test_fig7b_reports_violation_growth(self):
        result = fig7b(SMOKE)
        after = result.series("after-update")
        assert len(after) == len(SMOKE.update_sizes)
        assert all("dsv" in m.extra and "dmv" in m.extra for m in after)
        assert all(m.extra["dsv"] >= 0 and m.extra["dmv"] >= 0 for m in after)

    def test_ablation_maxss_ratio_bounded(self):
        result = ablation_maxss(trials=2, sigma_size=5)
        assert result.measurements
        for measurement in result.measurements:
            assert 0.0 <= measurement.extra["ratio"] <= 1.0
            assert measurement.extra["approx_cardinality"] <= measurement.extra["exact_optimum"]
