"""Sharded multi-core detection: any delegate backend, fanned out per shard.

The paper's detectors (and their engine adapters) are single-threaded over
the whole relation.  :class:`ShardedBackend` scales them out on one machine:

1. the constraint set is compiled into a partition plan
   (:func:`repro.parallel.partition.extract_partition_plan`) — one hash
   partition pass per cluster of LHS-compatible embedded-FD fragments, with
   the co-location-free pattern constraints riding along;
2. for every cluster the stored relation is hash-partitioned into
   ``workers`` shared-nothing shards (tuples agreeing on the cluster key
   are co-located; a ``colocate_all`` cluster — empty-LHS embedded FDs —
   keeps the whole relation in one shard);
3. each non-empty shard becomes an independent task: a fresh delegate
   backend (``naive`` / ``batch`` / ``incremental``) is built in the worker,
   loaded with the shard and asked to detect.  The task carries the
   delegate's resolved *factory*, not its registry name, so runtime-registered
   delegates work even under ``spawn`` start methods where workers re-import
   a registry containing only the built-ins;
4. per-shard violation sets are remapped to the global constraint
   identifiers and merged.  Shards of one cluster partition the relation,
   and clusters partition the constraint set, so every (tuple, fragment)
   pair is examined exactly once — the merged result is identical to a
   single-threaded whole-relation pass.

Tasks run in a :mod:`concurrent.futures` pool.  ``executor="process"``
(default) sidesteps the GIL and suits the pure-Python and SQLite delegates
alike; ``"thread"`` avoids pickling overhead and still overlaps SQLite's
C-level work; ``"serial"`` runs the same sharded code path inline, which the
tests use to pin down partitioning semantics independent of pool behaviour.

Incremental updates (sharded INCDETECT)
---------------------------------------
When the delegate supports incremental detection, the sharded backend
maintains violations across updates instead of recomputing.  The capability
is read off the registered *factory*: backend classes registered directly
(like the built-in ``"incremental"``) carry their ``supports_incremental``
class attribute; a function factory must set ``supports_incremental = True``
on the function itself, or the sharded backend (which cannot afford to
construct a probe instance) conservatively falls back to recompute-on-update.
The maintained protocol:

1. on the first update (or an explicit ``ensure_ready()``) every shard of
   every cluster is *bootstrapped*: a persistent per-shard delegate — an
   INCDETECT state holding the shard's rows, SV/MV flags, Aux(D) and macro
   rows — is built inside a **stateful shard lane** and kept alive between
   calls.  A lane is a single-worker executor pinned to a subset of the
   shards, so a shard's state always lives where its tasks run;
2. each update ΔD is routed through the *same* partition plan as detection
   (:func:`repro.parallel.partition.route_delta`): deleted tuples are
   resolved to their stored values and hashed to the shard that holds them,
   inserted tuples get coordinator-assigned global tids and hash the same
   way.  Only the touched shards receive a task; every other shard does no
   work at all — per-shard cost is proportional to the routed delta, not to
   |D|;
3. each touched shard applies its slice of ΔD with INCDETECT (shard-local
   ``delete_tuples`` / ``insert_tuples`` with pinned global tids) and
   returns its new violation set, read from the maintained flags;
4. the coordinator swaps the touched shards' contributions into its
   per-shard violation cache and re-merges — an exact replacement merge, so
   the result is identical to a single-threaded INCDETECT pass over the
   whole relation.

``workers=1`` keeps the plain single-state path (one INCDETECT state over
the whole Σ and relation — byte-for-byte the delegate's own behaviour), and
the :class:`~repro.engine.DataQualityEngine` does not even interpose the
sharding layer at ``workers=1`` unless ``backend="sharded"`` is explicit.
Out-of-band storage mutations (``load_rows`` / ``apply_delta`` / ``clear``)
invalidate the shard states; the next update bootstraps afresh.

The backend registers itself as ``"sharded"`` in the engine registry; the
:class:`~repro.engine.DataQualityEngine` routes through it automatically
when constructed with ``workers > 1``.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from itertools import count as _counter
from typing import Callable, Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import RelationSchema, Value
from repro.core.violations import MultiTupleViolation, SingleTupleViolation, ViolationSet
from repro.engine.backends import (
    DetectorBackend,
    InMemoryRelationBackend,
    register_backend,
    resolve_backend_factory,
)
from repro.exceptions import EngineError
from repro.parallel.partition import bucket_rows, extract_partition_plan, route_delta

__all__ = ["ShardedBackend", "DEFAULT_EXECUTOR", "detect_sharded"]

#: Executor kinds accepted by the backend.
_EXECUTORS = ("process", "thread", "serial")
DEFAULT_EXECUTOR = "process"

#: One unit of work:
#: (schema, delegate factory, [(global_cid, fragment)], rows, want_breakdown).
_ShardTask = tuple[
    RelationSchema,
    Callable[..., DetectorBackend],
    list[tuple[int, ECFD]],
    list[tuple[int, dict[str, str]]],
    bool,
]


def _remap_cids(violations: ViolationSet, mapping: Mapping[int, int]) -> ViolationSet:
    """Rewrite a shard-local violation set onto global constraint identifiers.

    Flag-only sets (the SQL delegates) keep their tid-sets untouched;
    detailed records (the naive delegate) get their ``constraint_id``
    translated so merged breakdowns attribute violations correctly.
    """
    remapped = ViolationSet.from_flags(violations.sv_tids, violations.mv_tids)
    for record in violations.single_records:
        remapped.add_single(
            SingleTupleViolation(
                tid=record.tid,
                constraint_id=mapping.get(record.constraint_id, record.constraint_id),
                attribute=record.attribute,
            )
        )
    for record in violations.multi_records:
        remapped.add_multi(
            MultiTupleViolation(
                constraint_id=mapping.get(record.constraint_id, record.constraint_id),
                lhs_values=record.lhs_values,
                tids=record.tids,
            )
        )
    return remapped


def _detect_shard(task: _ShardTask) -> tuple[ViolationSet, dict[int, dict[str, int]]]:
    """Run one delegate backend over one shard (executes inside a worker).

    Returns the shard's violation set and per-constraint breakdown (empty
    unless requested — for the SQL delegates it costs an extra grouped
    ``Q_sv`` pass), both keyed by global constraint identifiers.
    """
    schema, factory, fragments, rows, want_breakdown = task
    local_sigma = ECFDSet([fragment for _, fragment in fragments])
    # Single-pattern fragments normalize 1:1 in order, so the delegate's
    # local CIDs are simply 1..k over the fragment list.
    mapping = {local: cid for local, (cid, _) in enumerate(fragments, start=1)}

    backend = factory(schema=schema, sigma=local_sigma, path=":memory:")
    try:
        database = backend.database
        if database is not None:
            # SQL delegates: straight into the substrate, one pass, tids kept.
            database.insert_tuples([row for _, row in rows], tids=[tid for tid, _ in rows])
        else:
            shard = Relation(schema)
            for tid, row in rows:
                shard.insert_with_tid(tid, row)
            backend.load_relation(shard)
        violations = backend.detect()
        breakdown = backend.breakdown() if want_breakdown else {}
    finally:
        backend.close()
    return (
        _remap_cids(violations, mapping),
        {mapping.get(cid, cid): dict(stats) for cid, stats in breakdown.items()},
    )


# ----------------------------------------------------------------------
# Stateful shard workers (sharded INCDETECT)
# ----------------------------------------------------------------------
#: Persistent per-shard delegate states, keyed by a coordinator-chosen
#: namespace.  The dict lives wherever the shard's lane runs its tasks: in
#: each lane *process* for ``executor="process"`` (every worker process has
#: its own copy of this module), in the parent process for ``"thread"`` and
#: ``"serial"``.  Keys embed the coordinating backend's namespace, so
#: backends sharing one process never collide.
_SHARD_STATES: dict[str, "_ShardState"] = {}

#: Monotonic namespace source for shard-state keys (unique per process).
_STATE_NAMESPACES = _counter(1)


class _ShardState:
    """One live shard: its delegate backend and the local→global CID map."""

    __slots__ = ("backend", "mapping")

    def __init__(self, backend: DetectorBackend, mapping: Mapping[int, int]):
        self.backend = backend
        self.mapping = mapping


#: Bootstrap work unit: (state key, schema, delegate factory,
#: [(global_cid, fragment)], shard rows).
_BootstrapTask = tuple[
    str,
    RelationSchema,
    Callable[..., DetectorBackend],
    list[tuple[int, ECFD]],
    list[tuple[int, dict[str, str]]],
]

#: Update work unit: (state key, routed ΔD⁻ tids, routed ΔD⁺ (tid, row) pairs).
_UpdateTask = tuple[str, list[int], list[tuple[int, dict[str, str]]]]


def _shard_bootstrap(task: _BootstrapTask) -> tuple[str, ViolationSet]:
    """Build one persistent shard state (runs inside the shard's lane).

    Loads the shard rows with their *global* tids, initialises the
    delegate's maintained state (for INCDETECT: the batch pass computing
    flags, Aux(D) and macro rows) and parks the live backend in
    :data:`_SHARD_STATES` for later :func:`_shard_update` calls.  Returns
    the shard's violation set on global constraint identifiers.
    """
    key, schema, factory, fragments, rows = task
    local_sigma = ECFDSet([fragment for _, fragment in fragments])
    mapping = {local: cid for local, (cid, _) in enumerate(fragments, start=1)}

    backend = factory(schema=schema, sigma=local_sigma, path=":memory:")
    database = backend.database
    if database is not None:
        database.insert_tuples([row for _, row in rows], tids=[tid for tid, _ in rows])
    else:
        shard = Relation(schema)
        for tid, row in rows:
            shard.insert_with_tid(tid, row)
        backend.load_relation(shard)
    backend.ensure_ready()
    _SHARD_STATES[key] = _ShardState(backend, mapping)
    return key, _remap_cids(backend.detect(), mapping)


def _shard_update(task: _UpdateTask) -> tuple[str, ViolationSet]:
    """Apply one routed delta to a live shard state (runs inside its lane).

    Work is INCDETECT's: a fixed number of SQL statements touching only the
    affected groups of this shard.  Inserted tuples keep their
    coordinator-assigned global tids.  Returns the shard's *new* violation
    set (read from the maintained flags), which the coordinator swaps in
    for the shard's previous contribution.
    """
    key, delete_tids, insert_pairs = task
    state = _SHARD_STATES[key]
    violations = state.backend.incremental_update(
        delete_tids,
        [row for _, row in insert_pairs],
        insert_tids=[tid for tid, _ in insert_pairs],
    )
    return key, _remap_cids(violations, state.mapping)


def _shard_breakdown(key: str) -> tuple[str, dict[int, dict[str, int]]]:
    """Read one live shard's per-constraint statistics on global CIDs.

    Computed from the shard's *maintained* state (Aux(D), macro rows, plus
    the delegate's grouped ``Q_sv`` pass over the shard) — cost is bounded
    by the shard, never by a whole-relation re-detection.
    """
    state = _SHARD_STATES[key]
    breakdown = state.backend.breakdown()
    return key, {
        state.mapping.get(cid, cid): dict(stats) for cid, stats in breakdown.items()
    }


def _shard_state_stats(key: str) -> tuple[str, dict[str, int]]:
    """Read one live shard's state statistics (tuples, Aux(D), macro rows)."""
    state = _SHARD_STATES[key]
    stats = getattr(state.backend, "state_stats", None)
    if stats is not None:
        return key, dict(stats())
    return key, {"tuples": state.backend.count()}


def _shard_drop(key: str) -> str:
    """Tear down one shard state (close its database, free its memory)."""
    state = _SHARD_STATES.pop(key, None)
    if state is not None:
        state.backend.close()
    return key


class ShardedBackend(InMemoryRelationBackend):
    """Shared-nothing sharded detection over a pluggable delegate backend.

    Storage lives in the in-memory relation of the shared base class; every
    ``detect()`` partitions it according to the plan and fans the shards out
    as one-shot tasks.  With an incremental-capable delegate the backend
    additionally supports :meth:`incremental_update` (sharded INCDETECT):
    persistent per-shard delegate states live in stateful shard *lanes* and
    each update only touches the shards its routed delta lands on — see the
    module docstring for the full protocol.

    Parameters
    ----------
    schema / sigma / path:
        As for every backend; shard databases are always per-worker and
        in-memory, so a file-backed ``path`` is rejected rather than
        silently dropped — callers wanting on-disk persistence need a
        single-threaded SQL backend.
    delegate:
        Registry name of the backend run on every shard (``"naive"``,
        ``"batch"`` or ``"incremental"``); resolved to its factory at
        construction time.  ``supports_incremental`` is read from the
        resolved *factory* (see the module docstring for the function-
        factory contract), so ``delegate="incremental"`` makes the engine
        route ``apply_update`` through sharded INCDETECT while ``"naive"``
        / ``"batch"`` keep the recompute fallback.
    workers:
        Shards per partition pass and pool size; defaults to the machine's
        CPU count.
    executor:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.

    Attributes
    ----------
    last_update_trace:
        Diagnostics of the most recent :meth:`incremental_update`:
        ``shards_total`` / ``shards_touched`` (states live vs. tasked this
        update), ``routed_deletes`` / ``routed_inserts`` (delta tuples
        routed, counted once per cluster they land in) and ``bootstrap``
        (whether this call built the shard states).  ``None`` until the
        first incremental update.
    full_detect_count:
        Number of full sharded detection passes run so far — the
        "no hidden recompute" counter the incremental tests assert on.
    """

    name = "sharded"

    def __init__(
        self,
        schema: RelationSchema,
        sigma: ECFDSet | Sequence[ECFD],
        path: str = ":memory:",
        delegate: str = "batch",
        workers: int | None = None,
        executor: str = DEFAULT_EXECUTOR,
    ):
        super().__init__(schema, sigma, path)
        if path != ":memory:":
            raise EngineError(
                "the sharded backend stores data in memory and cannot honour "
                f"path={path!r}; use a single-threaded SQL backend for "
                "file-backed storage"
            )
        if delegate == self.name:
            raise EngineError("the sharded backend cannot delegate to itself")
        if executor not in _EXECUTORS:
            raise EngineError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        self.delegate = delegate
        self._delegate_factory = resolve_backend_factory(delegate)
        # The sharded backend maintains violations incrementally exactly
        # when its per-shard delegate can; the flag is per-instance because
        # it depends on the delegate chosen at construction time.
        self.supports_incremental = bool(
            getattr(self._delegate_factory, "supports_incremental", False)
        )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        self.executor = executor
        self._plan = extract_partition_plan(self.sigma)
        self._pool: Executor | None = None
        self._last_violations: ViolationSet | None = None
        self._last_breakdown: dict[int, dict[str, int]] | None = None
        # --- stateful shard lanes (sharded INCDETECT) ---
        self._lanes: list[Executor] | None = None
        self._states_live = False
        #: (cluster_index, shard_index) -> {"key": state key, "lane": lane index,
        #: "cluster_key": partition key} for every live shard state.
        self._shard_layout: dict[tuple[int, int], dict] = {}
        self._shard_violations: dict[str, ViolationSet] = {}
        self.last_update_trace: dict | None = None
        self.full_detect_count = 0

    def _on_mutation(self) -> None:
        self._last_violations = None
        self._last_breakdown = None
        # Out-of-band storage changes invalidate the maintained per-shard
        # INCDETECT states; the next incremental update bootstraps afresh.
        self._invalidate_shard_states()

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _build_tasks(self, want_breakdown: bool) -> list[_ShardTask]:
        # Materialise every stored tuple once; clusters only re-hash the
        # projection, they never rebuild the row payloads.  Values are
        # already text (every ingestion path stringifies), so this is a
        # plain dict copy.
        rows = [
            (t.tid, t.as_dict())
            for t in self._relation.tuples()
            if t.tid is not None
        ]
        factory = self._delegate_factory
        if self.workers <= 1:
            # One shard, whole Σ — byte-for-byte the delegate's own pass.
            return [
                (self.schema, factory, list(self.sigma.normalize()), rows, want_breakdown)
            ]
        tasks: list[_ShardTask] = []
        for cluster in self._plan:
            if cluster.colocate_all:
                # Empty-LHS embedded FDs: one global X-group, one shard.
                if rows:
                    tasks.append(
                        (self.schema, factory, cluster.fragments, rows, want_breakdown)
                    )
                continue
            for shard in bucket_rows(rows, cluster.key, self.workers):
                if shard:
                    tasks.append(
                        (self.schema, factory, cluster.fragments, shard, want_breakdown)
                    )
        return tasks

    def _ensure_pool(self, task_count: int) -> Executor | None:
        """The reusable worker pool (``None`` for serial / single-task runs).

        Pool start-up (forking or spawning up to ``workers`` processes) is a
        fixed cost worth paying once, not once per detection, so the pool is
        created lazily and kept alive until :meth:`close`.
        """
        if self.executor == "serial" or min(self.workers, task_count) <= 1:
            return None
        if self._pool is None:
            pool_class = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
            self._pool = pool_class(max_workers=self.workers)
        return self._pool

    def detect(self) -> ViolationSet:
        return self._detect(want_breakdown=False)

    def detect_with_breakdown(self) -> ViolationSet:
        # Collect violations and per-constraint statistics in ONE sharded
        # pass; a later breakdown() call then hits the cache instead of
        # repeating the whole detection.
        return self._detect(want_breakdown=True)

    def _detect(self, want_breakdown: bool) -> ViolationSet:
        self.full_detect_count += 1
        tasks = self._build_tasks(want_breakdown)
        merged = ViolationSet()
        breakdown: dict[int, dict[str, int]] = {}
        if tasks:
            pool = self._ensure_pool(len(tasks))
            if pool is None:
                results = [_detect_shard(task) for task in tasks]
            else:
                results = list(pool.map(_detect_shard, tasks))
            for shard_violations, shard_breakdown in results:
                merged.update(shard_violations)
                for cid, stats in shard_breakdown.items():
                    slot = breakdown.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})
                    for key, value in stats.items():
                        slot[key] = slot.get(key, 0) + value
        self._last_violations = merged
        if want_breakdown:
            self._last_breakdown = dict(sorted(breakdown.items()))
        # A plain detect leaves any cached breakdown alone: the data has not
        # changed since it was computed (mutations invalidate both).
        return merged

    # ------------------------------------------------------------------
    # Incremental updates (sharded INCDETECT)
    # ------------------------------------------------------------------
    def _stateful_layout(self) -> list[tuple[tuple[int, int], list[tuple[int, ECFD]], tuple[str, ...], bool]]:
        """The shard grid: ``((cluster, shard), fragments, key, colocate_all)``.

        Mirrors :meth:`_build_tasks` exactly — ``workers <= 1`` collapses to
        one whole-Σ shard (the plain delegate), otherwise every cluster gets
        ``workers`` shards (one for a ``colocate_all`` cluster).  *Empty*
        shards are part of the grid too: an insert may route to a shard that
        held no tuples at bootstrap time, so its state must exist.
        """
        if self.workers <= 1:
            return [((0, 0), list(self.sigma.normalize()), (), True)]
        layout = []
        for cluster_index, cluster in enumerate(self._plan):
            shards = 1 if cluster.colocate_all else self.workers
            for shard in range(shards):
                layout.append(
                    ((cluster_index, shard), cluster.fragments, cluster.key, cluster.colocate_all)
                )
        return layout

    def _lane_for(self, cluster_index: int, shard_index: int) -> int:
        """The lane a shard is pinned to — stable for the backend's lifetime.

        Offsetting by the cluster index spreads single-shard clusters
        (``colocate_all``) across lanes instead of piling them on lane 0.
        """
        return (cluster_index + shard_index) % self.workers

    def _run_in_lanes(self, fn: Callable, tasks: list[tuple[int, object]]) -> list:
        """Run ``(lane, task)`` pairs on their pinned lanes and gather results.

        Serial execution (``executor="serial"`` or a single worker) runs
        inline — shard states then live in this process's module dict.
        Otherwise each lane is a single-worker pool created on first use and
        kept alive until :meth:`close`, so the states it holds survive
        between calls; tasks submitted to one lane run in order.
        """
        if self.executor == "serial" or self.workers <= 1:
            return [fn(task) for _, task in tasks]
        if self._lanes is None:
            pool_class = ThreadPoolExecutor if self.executor == "thread" else ProcessPoolExecutor
            self._lanes = [pool_class(max_workers=1) for _ in range(self.workers)]
        futures = [self._lanes[lane].submit(fn, task) for lane, task in tasks]
        return [future.result() for future in futures]

    def _ensure_shard_states(self) -> bool:
        """Bootstrap the persistent per-shard INCDETECT states once.

        Returns ``True`` when this call performed the bootstrap (the full
        per-shard initialisation pass), ``False`` when the states were
        already live.  Not meaningful for non-incremental delegates, which
        raise instead.
        """
        if not self.supports_incremental:
            raise EngineError(
                f"sharded delegate {self.delegate!r} does not support incremental "
                "updates; use delegate='incremental' (or any backend advertising "
                "supports_incremental) for sharded INCDETECT"
            )
        if self._states_live:
            return False
        namespace = f"sharded-{os.getpid()}-{next(_STATE_NAMESPACES)}"
        rows = [
            (t.tid, t.as_dict())
            for t in self._relation.tuples()
            if t.tid is not None
        ]
        factory = self._delegate_factory
        self._shard_layout = {}
        tasks: list[tuple[int, _BootstrapTask]] = []
        # One bucketing pass per cluster (as in _build_tasks), indexed per
        # shard below — not one per (cluster, shard).
        buckets: dict[int, list[list[tuple[int, dict[str, str]]]]] = {}
        for (cluster_index, shard_index), fragments, cluster_key, colocate_all in self._stateful_layout():
            if self.workers <= 1 or colocate_all:
                shard_rows = rows
            else:
                if cluster_index not in buckets:
                    buckets[cluster_index] = bucket_rows(rows, cluster_key, self.workers)
                shard_rows = buckets[cluster_index][shard_index]
            key = f"{namespace}:{cluster_index}:{shard_index}"
            lane = self._lane_for(cluster_index, shard_index)
            self._shard_layout[(cluster_index, shard_index)] = {
                "key": key,
                "lane": lane,
                "cluster_key": cluster_key,
            }
            tasks.append((lane, (key, self.schema, factory, fragments, shard_rows)))
        try:
            results = self._run_in_lanes(_shard_bootstrap, tasks)
        except Exception:
            # A partial bootstrap (some lanes built states, one failed)
            # must not linger: drop whatever was parked and start over on
            # the next call.
            self._invalidate_shard_states()
            raise
        self._shard_violations = {key: violations for key, violations in results}
        self._last_violations = self._merge_shard_violations()
        self._states_live = True
        return True

    def _merge_shard_violations(self) -> ViolationSet:
        """The exact union of every live shard's current violation set.

        Shards of one cluster partition the relation and clusters partition
        Σ, so the union over the per-shard cache equals a single-threaded
        pass; cost is proportional to the number of violations, never |D|.
        """
        merged = ViolationSet()
        for violations in self._shard_violations.values():
            merged.update(violations)
        return merged

    def _invalidate_shard_states(self) -> None:
        """Tear down the per-shard states after an out-of-band mutation.

        Drops run *on the owning lanes*: a shard's SQLite connection may
        only be closed by the thread that created it, and process-lane
        states do not even exist in this process.  A lane that already died
        cannot run its drop — its states die with it, so the teardown just
        proceeds to the pool shutdown.
        """
        if not self._states_live and self._lanes is None:
            return
        if self._shard_layout:
            tasks = [
                (entry["lane"], entry["key"]) for entry in self._shard_layout.values()
            ]
            try:
                self._run_in_lanes(_shard_drop, tasks)
            except Exception:
                pass
        if self._lanes is not None:
            for lane in self._lanes:
                lane.shutdown()
            self._lanes = None
        self._shard_layout = {}
        self._shard_violations = {}
        self._states_live = False

    def ensure_ready(self) -> None:
        """Bootstrap the shard states so update timing excludes initialisation.

        Called by the engine before timing :meth:`incremental_update`; a
        no-op for non-incremental delegates (their update path is
        ``apply_delta`` + full detection, which has no maintained state).
        """
        if self.supports_incremental:
            self._ensure_shard_states()

    def incremental_update(
        self,
        delete_tids: Sequence[int],
        insert_rows: Sequence[Mapping[str, Value]],
        insert_tids: Sequence[int] | None = None,
    ) -> ViolationSet:
        """Sharded INCDETECT: maintain vio(D) touching only the routed shards.

        Deletions are resolved to their stored rows (the hash key needs the
        values) and applied first; insertions get fresh ``max(tid) + 1``
        identifiers — the same discipline as every other backend — unless
        ``insert_tids`` pins them.  Each cluster of the partition plan
        routes its slice of ΔD to the shard the tuples belong to; only those
        shards receive work.  The returned violation set is the exact merge
        of every shard's maintained state.

        Failure semantics: if a shard task (or a dying lane) raises after
        the delta was applied to coordinator storage, the per-shard states
        are *invalidated* before the exception propagates — storage keeps
        the applied delta and the next call bootstraps afresh from it, so a
        stale shard cache can never silently misreport violations.  (A
        caught-and-retried failure may therefore duplicate the inserted
        rows under fresh tids, like any retried ``apply_delta``.)
        """
        if insert_tids is not None and len(insert_tids) != len(insert_rows):
            raise EngineError("insert_tids and insert_rows must have the same length")
        bootstrap = self._ensure_shard_states()
        try:
            # --- apply ΔD⁻ to coordinator storage, resolving rows for routing ---
            delete_pairs: list[tuple[int, dict[str, str]]] = []
            for tid in delete_tids:
                stored = self._relation.get(int(tid))
                if stored is not None:
                    delete_pairs.append((int(tid), stored.as_dict()))
            for tid, _ in delete_pairs:
                self._relation.delete(tid)

            # --- apply ΔD⁺, assigning global tids like every other backend ---
            if insert_tids is not None:
                assigned = [int(tid) for tid in insert_tids]
            else:
                start = self._max_tid() + 1
                assigned = list(range(start, start + len(insert_rows)))
            insert_pairs = [
                (tid, self._stringified(row)) for tid, row in zip(assigned, insert_rows)
            ]
            for tid, row in insert_pairs:
                self._relation.insert_with_tid(tid, row)

            # --- route the delta and task only the touched shards ---
            if self.workers <= 1:
                routed = {(0, 0): ([tid for tid, _ in delete_pairs], insert_pairs)}
                if not delete_pairs and not insert_pairs:
                    routed = {}
            else:
                routed = route_delta(self._plan, self.workers, delete_pairs, insert_pairs)
            tasks: list[tuple[int, _UpdateTask]] = []
            for (cluster_index, shard_index), (shard_deletes, shard_inserts) in sorted(routed.items()):
                entry = self._shard_layout[(cluster_index, shard_index)]
                tasks.append((entry["lane"], (entry["key"], shard_deletes, shard_inserts)))
            results = self._run_in_lanes(_shard_update, tasks)
        except Exception:
            self._invalidate_shard_states()
            self._last_violations = None
            raise

        # --- exact delta merge: swap touched shards' contributions ---
        for key, violations in results:
            self._shard_violations[key] = violations
        merged = self._merge_shard_violations()
        self._last_violations = merged
        self._last_breakdown = None
        self.last_update_trace = {
            "mode": "incremental",
            "bootstrap": bootstrap,
            "shards_total": len(self._shard_layout),
            "shards_touched": len(routed),
            "routed_deletes": sum(len(deletes) for deletes, _ in routed.values()),
            "routed_inserts": sum(len(inserts) for _, inserts in routed.values()),
        }
        return merged

    def shard_stats(self) -> list[dict]:
        """Per-shard state statistics from the live INCDETECT states.

        Bootstraps the states if needed (incremental delegates only) and
        returns one entry per shard — ``cluster`` / ``shard`` indices, the
        cluster's partition ``key`` and the delegate's ``state_stats()``
        (tuples, Aux(D) groups, macro rows) — so operators can see where
        the maintained memory actually lives instead of guessing.
        """
        self._ensure_shard_states()
        by_key = {
            entry["key"]: (position, entry)
            for position, entry in self._shard_layout.items()
        }
        tasks = [
            (entry["lane"], entry["key"]) for _, entry in sorted(by_key.values())
        ]
        results = self._run_in_lanes(_shard_state_stats, tasks)
        stats = []
        for key, shard_stats in results:
            (cluster_index, shard_index), entry = by_key[key]
            stats.append(
                {
                    "cluster": cluster_index,
                    "shard": shard_index,
                    "key": tuple(entry["cluster_key"]),
                    **shard_stats,
                }
            )
        return sorted(stats, key=lambda item: (item["cluster"], item["shard"]))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def violation_counts(self) -> dict[str, int]:
        if self._last_violations is None:
            self.detect()
        assert self._last_violations is not None
        return self._last_violations.summary()

    def breakdown(self) -> dict[int, dict[str, int]]:
        # The per-constraint statistics cost the SQL delegates an extra
        # grouped Q_sv pass, so plain detect() skips them.  With live shard
        # states (after incremental updates) an uncached request is served
        # from the maintained per-shard state — per-shard cost, and the
        # update path never pays a hidden whole-relation re-detection.
        # Without live states it triggers one sharded pass collecting both
        # violations and statistics.
        if self._last_breakdown is None and self._states_live:
            tasks = [
                (entry["lane"], entry["key"])
                for _, entry in sorted(self._shard_layout.items())
            ]
            merged: dict[int, dict[str, int]] = {}
            for _, shard_breakdown in self._run_in_lanes(_shard_breakdown, tasks):
                for cid, stats in shard_breakdown.items():
                    slot = merged.setdefault(cid, {"sv": 0, "mv_groups": 0, "mv_tuples": 0})
                    for key, value in stats.items():
                        slot[key] = slot.get(key, 0) + value
            self._last_breakdown = dict(sorted(merged.items()))
        if self._last_breakdown is None:
            self._detect(want_breakdown=True)
        assert self._last_breakdown is not None
        return dict(self._last_breakdown)

    def shard_plan(self) -> list[tuple[tuple[str, ...], list[int]]]:
        """The partition plan as ``(key, [global CIDs])`` pairs, for callers
        that want to inspect or log how Σ was clustered."""
        return [(cluster.key, cluster.fragment_cids()) for cluster in self._plan]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the one-shot pool, the shard lanes and their states."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._invalidate_shard_states()


def detect_sharded(
    relation: Relation,
    sigma: ECFDSet | Sequence[ECFD],
    delegate: str = "batch",
    workers: int | None = None,
    executor: str = DEFAULT_EXECUTOR,
) -> ViolationSet:
    """One-shot sharded detection over an in-memory relation.

    Convenience wrapper used by scripts and benchmarks that do not need the
    full backend lifecycle.
    """
    backend = ShardedBackend(
        relation.schema, sigma, delegate=delegate, workers=workers, executor=executor
    )
    try:
        backend.load_relation(relation)
        return backend.detect()
    finally:
        backend.close()


register_backend(ShardedBackend.name, ShardedBackend)
