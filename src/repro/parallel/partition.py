"""Single-pass hash partitioning of relations for sharded eCFD detection.

Sharded detection (see :mod:`repro.parallel.sharded`) splits a relation into
shared-nothing shards and runs an ordinary detector per shard.  Every tuple
is shipped to exactly **one** shard — replication factor 1.0 — under one
partition pass:

* the relation is hashed on a single **primary key** (chosen from the
  embedded-FD LHS structure of Σ), or dealt round-robin by ``tid`` when no
  useful key exists;
* **local fragments** are evaluated natively per shard: pattern-constraint
  riders (``Y = ∅``, single-tuple violations only — exact on any disjoint
  partition) and embedded-FD fragments whose LHS contains the primary key
  (tuples agreeing on ``X ⊇ key`` also agree on ``key``, so their groups
  are complete within one shard);
* **summary fragments** are the remaining embedded-FD fragments — their
  ``X``-groups may be split across shards, so each shard evaluates only
  their *pattern projection* (:meth:`repro.core.ecfd.ECFD.pattern_projection`,
  which carries the identical SV semantics) and emits compact
  ``(cid, xv) → (yv multiset, witness tids)`` group summaries
  (:mod:`repro.detection.summaries`); the coordinator merges the summaries
  across shards (:mod:`repro.parallel.summary`) to materialise the
  multi-tuple violations no single shard can witness.

The primary key is chosen by greedily clustering the embedded-FD fragments
by LHS intersection (fragments whose LHS sets share a non-empty common
subset cluster on that intersection) and taking the key that serves the
most fragments locally.  Empty-LHS embedded FDs (one global ``X``-group)
are always summary fragments — under summaries they parallelise like
everything else, instead of forcing the whole relation onto one shard as
the pre-1.4 ``colocate_all`` cluster did.

Hashing uses :func:`zlib.crc32`, not the builtin ``hash``: Python salts
string hashes per process, and shard assignment must agree between the
coordinating process and (potentially forked-then-respawned) workers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.instance import Relation
from repro.core.schema import Value

__all__ = [
    "PartitionCluster",
    "PartitionPlan",
    "bucket_rows",
    "cluster_replication_factor",
    "extract_partition_plan",
    "plan_partitions",
    "route_delta",
    "shard_index",
    "partition_rows",
]

#: Separator between projected values inside a hash key; chosen outside the
#: generated data's alphabet so composite keys cannot collide by juxtaposition.
_KEY_SEPARATOR = "\x1f"


@dataclass
class PartitionCluster:
    """One partition pass over the relation and the fragments it serves.

    Attributes
    ----------
    key:
        The attributes the relation is hash-partitioned on, in schema-lhs
        order.  Empty when the cluster holds only co-location-free fragments
        (tuples are then dealt round-robin by ``tid``) or when
        ``colocate_all`` is set.
    fragments:
        Normalized single-pattern fragments evaluated over this cluster's
        shards, as ``(cid, ecfd)`` pairs with their *global* constraint
        identifiers (the CIDs a whole-Σ detection would assign).
    colocate_all:
        ``True`` for the cluster holding embedded-FD fragments with an
        *empty* LHS: every tuple belongs to the one global ``X``-group, so
        the whole relation must go to a single shard — this cluster cannot
        be parallelised, only overlapped with the others.
    """

    key: tuple[str, ...]
    fragments: list[tuple[int, ECFD]] = field(default_factory=list)
    colocate_all: bool = False

    def fragment_cids(self) -> list[int]:
        """The global constraint identifiers served by this cluster, sorted."""
        return sorted(cid for cid, _ in self.fragments)


def extract_partition_plan(sigma: ECFDSet) -> list[PartitionCluster]:
    """Cluster Σ's normalized fragments into co-location-safe partition passes.

    Every fragment of ``sigma.normalize()`` is assigned to exactly one
    cluster; embedded-FD fragments only join clusters whose key is a subset
    of their LHS.  The plan is deterministic for a given Σ.

    This is the *clustered* (multi-pass) plan: detection would replicate
    the relation once per cluster.  The sharded backend no longer executes
    it — :func:`plan_partitions` builds the single-pass summary-merge plan
    instead — but the clustering still drives primary-key selection and the
    before/after replication accounting
    (:func:`cluster_replication_factor`).
    """
    fd_fragments: list[tuple[int, ECFD]] = []
    rider_fragments: list[tuple[int, ECFD]] = []
    for cid, fragment in sigma.normalize():
        if fragment.requires_colocation():
            fd_fragments.append((cid, fragment))
        else:
            rider_fragments.append((cid, fragment))

    clusters: list[PartitionCluster] = []
    for cid, fragment in fd_fragments:
        lhs_set = set(fragment.lhs)
        if not lhs_set:
            # X = ∅: one global group — single-shard cluster, never hashed.
            target = next((c for c in clusters if c.colocate_all), None)
            if target is None:
                target = PartitionCluster(key=(), colocate_all=True)
                clusters.append(target)
            target.fragments.append((cid, fragment))
            continue
        placed = False
        for cluster in clusters:
            common = [a for a in cluster.key if a in lhs_set]
            if common:
                cluster.key = tuple(common)
                cluster.fragments.append((cid, fragment))
                placed = True
                break
        if not placed:
            clusters.append(PartitionCluster(key=fragment.lhs, fragments=[(cid, fragment)]))

    if not clusters:
        clusters.append(PartitionCluster(key=()))
    for index, rider in enumerate(rider_fragments):
        clusters[index % len(clusters)].fragments.append(rider)

    # Drop clusters that ended up empty (possible only when Σ is empty) and
    # fix a deterministic fragment order inside each cluster.
    clusters = [c for c in clusters if c.fragments]
    for cluster in clusters:
        cluster.fragments.sort(key=lambda pair: pair[0])
    return clusters


@dataclass
class PartitionPlan:
    """The single-pass partition plan: one hash key, two fragment sides.

    Attributes
    ----------
    key:
        The attributes the relation is hash-partitioned on (the *primary
        key*); empty when no embedded-FD LHS offers one — tuples are then
        dealt round-robin by ``tid``.
    local_fragments:
        ``(global CID, fragment)`` pairs evaluated natively per shard:
        pattern-constraint riders and embedded-FD fragments whose LHS
        contains ``key`` (their ``X``-groups are complete within a shard).
    summary_fragments:
        ``(global CID, fragment)`` pairs whose embedded FD is resolved by
        the cross-shard summary merge; shards evaluate only their pattern
        projection locally and emit ``(cid, xv) → (yv multiset, tids)``
        group summaries.
    """

    key: tuple[str, ...]
    local_fragments: list[tuple[int, ECFD]] = field(default_factory=list)
    summary_fragments: list[tuple[int, ECFD]] = field(default_factory=list)

    @property
    def replication_factor(self) -> float:
        """Rows shipped to shards per stored row — 1.0 by construction.

        The single hash pass sends every tuple to exactly one shard; the
        pre-1.4 clustered plan replicated the relation once per LHS cluster
        (see :func:`cluster_replication_factor` for that baseline).
        """
        return 1.0

    def shard_fragments(self) -> list[tuple[int, ECFD]]:
        """The fragments every shard evaluates natively, in deterministic order.

        Local fragments verbatim, then the pattern projections of the
        summary fragments (identical SV semantics, no embedded FD) — the
        per-shard Σ a worker builds its delegate from.
        """
        return self.local_fragments + [
            (cid, fragment.pattern_projection())
            for cid, fragment in self.summary_fragments
        ]

    def fragment_cids(self) -> list[int]:
        """Every global constraint identifier served by the plan, sorted."""
        return sorted(
            cid for cid, _ in self.local_fragments + self.summary_fragments
        )

    def describe(self) -> dict:
        """A loggable description: key, fragment split and replication factor."""
        return {
            "key": self.key,
            "local_cids": sorted(cid for cid, _ in self.local_fragments),
            "summary_cids": sorted(cid for cid, _ in self.summary_fragments),
            "replication_factor": self.replication_factor,
        }


def plan_partitions(sigma: "ECFDSet | Sequence[ECFD]") -> PartitionPlan:
    """The single-pass partition plan for a workload — the public entry point.

    Accepts either an :class:`~repro.core.ecfd.ECFDSet` or any sequence of
    eCFDs, mirroring every other public constructor in the library.  The
    primary key is the greedy LHS-cluster key serving the most embedded-FD
    fragments locally (see the module docstring); every other embedded-FD
    fragment — including empty-LHS ones — lands on the summary side.  The
    plan is deterministic for a given Σ, and both ``detect`` and
    ``apply_update`` of the sharded backend route through the *same* plan,
    so a tuple always lands on the shard that examined it at load time.
    """
    ecfds = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
    plan = PartitionPlan(key=())
    fd_fragments: list[tuple[int, ECFD]] = []
    for cid, fragment in ecfds.normalize():
        if not fragment.requires_colocation():
            # Pattern-constraint rider: exact on any disjoint partition.
            plan.local_fragments.append((cid, fragment))
        elif fragment.lhs:
            fd_fragments.append((cid, fragment))
        else:
            # X = ∅: one global group — always summary-merged (the summary
            # protocol handles the split group exactly; forcing the whole
            # relation onto one shard would serialise everything else).
            plan.summary_fragments.append((cid, fragment))

    # Candidate keys come from the one greedy LHS-intersection clustering
    # (:func:`extract_partition_plan` — also the replication baseline, so
    # the two views can never drift); the primary key is the candidate
    # serving the most fragments locally (ties keep the earliest candidate
    # — deterministic for a given Σ).
    candidates = [
        cluster.key for cluster in extract_partition_plan(ecfds) if cluster.key
    ]

    def served(key: tuple[str, ...]) -> int:
        return sum(1 for _, f in fd_fragments if set(key) <= set(f.lhs))

    if candidates:
        plan.key = max(candidates, key=served)

    for cid, fragment in fd_fragments:
        if plan.key and set(plan.key) <= set(fragment.lhs):
            plan.local_fragments.append((cid, fragment))
        else:
            plan.summary_fragments.append((cid, fragment))
    plan.local_fragments.sort(key=lambda pair: pair[0])
    plan.summary_fragments.sort(key=lambda pair: pair[0])
    return plan


def cluster_replication_factor(sigma: "ECFDSet | Sequence[ECFD]") -> float:
    """Rows shipped per stored row under the *clustered* (pre-1.4) plan.

    One full hash pass per LHS cluster — the replication the single-pass
    summary-merge protocol removes.  Kept for before/after accounting in
    the benchmarks and docs.
    """
    ecfds = sigma if isinstance(sigma, ECFDSet) else ECFDSet(list(sigma))
    return float(max(1, len(extract_partition_plan(ecfds))))


def route_delta(
    plan: PartitionPlan,
    workers: int,
    delete_rows: Sequence[tuple[int, Mapping[str, str]]],
    insert_rows: Sequence[tuple[int, Mapping[str, str]]],
) -> dict[int, tuple[list[tuple[int, Mapping[str, str]]], list[tuple[int, Mapping[str, str]]]]]:
    """Route an update ΔD to the shards it touches (exactly one per tuple).

    Both deletions and insertions arrive as ``(tid, row)`` pairs — deletions
    need their row *values* (resolved before the tuple is dropped from
    storage) both for the hash projection and for the summary deltas the
    stateful lanes emit.  The shard assignment is exactly the one
    :func:`bucket_rows` used at load time: hash of the primary-key
    projection, or round-robin by ``tid`` for a keyless plan.

    Returns a mapping from ``shard_index`` to ``(delete_pairs,
    insert_pairs)`` containing *only* the touched shards — the caller
    dispatches incremental work to those and leaves every other shard
    untouched, which is what makes sharded INCDETECT's cost proportional to
    the delta rather than to |D|.
    """
    routed: dict[int, tuple[list, list]] = {}
    shards = max(1, workers)

    def slot(shard: int) -> tuple[list, list]:
        return routed.setdefault(shard, ([], []))

    for tid, row in delete_rows:
        slot(shard_index(row, plan.key, shards, tid))[0].append((tid, row))
    for tid, row in insert_rows:
        slot(shard_index(row, plan.key, shards, tid))[1].append((tid, row))
    return routed


def shard_index(row: Mapping[str, Value], key: Sequence[str], shards: int, tid: int = 0) -> int:
    """The shard a tuple belongs to under a partition key.

    Keyed clusters hash the stringified projection (values are compared as
    text throughout the detection substrate); keyless clusters deal tuples
    round-robin by ``tid`` for balance.
    """
    if shards <= 1:
        return 0
    if not key:
        return tid % shards
    projected = _KEY_SEPARATOR.join(str(row[attribute]) for attribute in key)
    return zlib.crc32(projected.encode("utf-8")) % shards


def bucket_rows(
    rows: Sequence[tuple[int, dict[str, str]]], key: Sequence[str], shards: int
) -> list[list[tuple[int, dict[str, str]]]]:
    """Bucket pre-materialised ``(tid, row)`` pairs into ``shards`` lists.

    The shard-assignment loop shared by :func:`partition_rows` and the
    sharded backend's task builder: tuples agreeing on ``key`` are
    guaranteed to share a shard; empty shards are kept (callers skip them)
    so shard indices stay aligned.  An empty ``key`` deals rows round-robin,
    which is only sound for co-location-free fragments — ``colocate_all``
    clusters need the whole relation in one shard instead.
    """
    buckets: list[list[tuple[int, dict[str, str]]]] = [[] for _ in range(max(1, shards))]
    for tid, row in rows:
        buckets[shard_index(row, key, shards, tid=tid)].append((tid, row))
    return buckets


def partition_rows(
    relation: Relation, key: Sequence[str], shards: int
) -> list[list[tuple[int, dict[str, str]]]]:
    """Split a relation into ``shards`` lists of ``(tid, stringified row)``.

    Rows are stringified exactly like every backend's storage layer does, so
    per-shard detection sees the same values a whole-relation pass would;
    sharding semantics are those of :func:`bucket_rows`.
    """
    attributes = relation.schema.attribute_names
    rows = []
    for t in relation.tuples():
        assert t.tid is not None
        rows.append((t.tid, {a: str(t[a]) for a in attributes}))
    return bucket_rows(rows, key, shards)
