"""Shared helpers for the benchmark suite.

Every benchmark regenerates one figure (or ablation) of the paper's
evaluation at a reduced scale, so the whole suite finishes in minutes.  All
detection work runs through the :class:`~repro.engine.DataQualityEngine`
façade — the same hot path the examples and experiment drivers exercise —
with the backend string selecting BATCHDETECT, INCDETECT or the naive
oracle.  Two environment knobs control the size:

* ``REPRO_BENCH_SIZE``  — base dataset size (default 5000 tuples);
* ``REPRO_BENCH_POINTS`` — number of sweep points per figure (default 3).

Set them higher (e.g. ``REPRO_BENCH_SIZE=100000``) to approach the paper's
own scale; the benchmark code is identical, only the parameters change.
Timings are reported by pytest-benchmark; violation counts and realised
sizes are attached to each benchmark's ``extra_info``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.updates import UpdateBatch, UpdateGenerator
from repro.datagen.workload import paper_workload, paper_workload_with_tableau_size
from repro.engine import DataQualityEngine

BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "5000"))
BENCH_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", "3"))
DEFAULT_NOISE = 5.0


def sweep(values: list) -> list:
    """Reduce a full sweep to ``BENCH_POINTS`` evenly spaced points."""
    if len(values) <= BENCH_POINTS:
        return list(values)
    step = (len(values) - 1) / (BENCH_POINTS - 1)
    indices = sorted({round(index * step) for index in range(BENCH_POINTS)})
    return [values[index] for index in indices]


def dataset_rows(size: int, noise: float = DEFAULT_NOISE, seed: int = 0) -> list[dict[str, str]]:
    """A deterministic noisy dataset of the requested size."""
    return DatasetGenerator(seed=seed).generate_rows(size, noise)


def prepared_engine(rows: list[dict[str, str]], backend: str, sigma=None) -> DataQualityEngine:
    """A loaded engine on the requested backend (encoding installed, data in)."""
    sigma = sigma if sigma is not None else paper_workload()
    engine = DataQualityEngine(cust_ext_schema(), sigma, backend=backend)
    engine.load(rows)
    return engine


def batch_engine(rows: list[dict[str, str]], sigma=None) -> DataQualityEngine:
    """A loaded engine on the BATCHDETECT backend."""
    return prepared_engine(rows, "batch", sigma)


def incremental_engine(rows: list[dict[str, str]], sigma=None) -> DataQualityEngine:
    """An initialised engine on the INCDETECT backend (flags and Aux(D) computed)."""
    engine = prepared_engine(rows, "incremental", sigma)
    engine.detect()
    return engine


def updated_batch_engine(
    rows: list[dict[str, str]], batch: UpdateBatch, sigma=None
) -> DataQualityEngine:
    """A batch-backend engine with the pre-update state computed and ΔD applied.

    Mirrors the paper's Experiment 2 baseline: the update is executed against
    storage (untimed) so the benchmark can time the from-scratch re-detection
    alone.
    """
    engine = batch_engine(rows, sigma)
    engine.detect()
    engine.database.delete_tuples(batch.delete_tids)
    engine.database.insert_tuples(list(batch.insert_rows))
    return engine


def update_batch(row_count: int, size: int, noise: float = DEFAULT_NOISE, seed: int = 7):
    """A disjoint insert/delete batch of ``size`` against ``row_count`` existing rows."""
    generator = DatasetGenerator(seed=seed)
    updates = UpdateGenerator(generator, seed=seed + 1)
    return updates.make_batch(
        existing_tids=range(1, row_count + 1),
        insert_count=size,
        delete_count=min(size, row_count),
        noise_percent=noise,
    )


def workload_with_tableau(tableau_size: int):
    """The 10-eCFD workload with the sweep constraint at the given tableau size."""
    return paper_workload_with_tableau_size(tableau_size)


@pytest.fixture(scope="session")
def base_workload():
    """The default 10-eCFD workload, shared across the benchmark session."""
    return paper_workload()
