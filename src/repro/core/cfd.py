"""Conditional Functional Dependencies (CFDs) — the baseline formalism.

CFDs were introduced by Bohannon, Fan, Geerts, Jia and Kementsietsidis
(ICDE 2007) and are the formalism the paper extends.  A CFD is a pair
``(R: X -> Y, Tp)`` whose pattern-tableau entries are either the unnamed
variable ``'_'`` or a *single constant*.  The paper's Remark in Section II
observes that a CFD is exactly an eCFD ``(R: X -> Y, ∅, T'p)`` in which
every constant ``a`` is replaced by the singleton set ``{a}`` — no
disjunction, no inequality, no ``Yp`` attributes.

This module implements CFDs as first-class objects so that

* the baseline comparisons of the experimental study can run real CFDs
  through the same detection pipeline,
* the lower-bound constructions of Section III (which reduce from CFD
  satisfiability / implication) are expressible, and
* users migrating from CFD tooling have a familiar constructor.

Internally a :class:`CFD` delegates all semantics to the eCFD obtained by
:meth:`CFD.to_ecfd`, which guarantees the two formalisms can never drift
apart.  The reverse direction, :func:`cfd_from_ecfd`, succeeds exactly when
:meth:`repro.core.ecfd.ECFD.is_cfd` holds.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.ecfd import ECFD, PatternTuple
from repro.core.instance import Relation
from repro.core.patterns import ValueSet, Wildcard
from repro.core.schema import RelationSchema, Value
from repro.core.violations import ViolationSet
from repro.exceptions import ConstraintError

__all__ = ["CFD", "cfd_from_ecfd"]


class CFD:
    """A conditional functional dependency ``(R: X -> Y, Tp)``.

    Tableau rows are mappings from attribute name to either the string
    ``"_"`` (or ``None``) for the unnamed variable, or a single constant.
    Every attribute of ``X ∪ Y`` must be covered by every row.
    """

    def __init__(
        self,
        schema: RelationSchema,
        lhs: Iterable[str],
        rhs: Iterable[str],
        tableau: Sequence[Mapping[str, Value | None]],
        name: str | None = None,
    ):
        self.schema = schema
        self.lhs = tuple(schema.check_attributes(lhs, context="CFD LHS"))
        self.rhs = tuple(schema.check_attributes(rhs, context="CFD RHS"))
        self.name = name
        if not self.rhs:
            raise ConstraintError("a CFD requires a non-empty RHS")
        if not tableau:
            raise ConstraintError("a CFD tableau must contain at least one pattern row")
        self.tableau: list[dict[str, Value | None]] = []
        for row in tableau:
            self.tableau.append(self._validate_row(row))

    def _validate_row(self, row: Mapping[str, Value | None]) -> dict[str, Value | None]:
        expected = set(self.lhs) | set(self.rhs)
        given = set(row)
        if given != expected:
            raise ConstraintError(
                f"CFD pattern row attributes {sorted(given)} must be exactly "
                f"X ∪ Y = {sorted(expected)}"
            )
        cleaned: dict[str, Value | None] = {}
        for attribute, value in row.items():
            if value is None or value == "_":
                cleaned[attribute] = None
            elif isinstance(value, (str, int)):
                cleaned[attribute] = value
            else:
                raise ConstraintError(
                    f"CFD pattern entries must be '_' or a single constant, got {value!r} "
                    f"for attribute {attribute!r}"
                )
        return cleaned

    # ------------------------------------------------------------------
    # Conversion (the Section II remark, made executable)
    # ------------------------------------------------------------------
    def to_ecfd(self) -> ECFD:
        """The equivalent eCFD ``(R: X -> Y, ∅, T'p)``.

        Constants become singleton :class:`~repro.core.patterns.ValueSet`
        entries; wildcards stay wildcards; ``Yp`` is empty.
        """
        patterns = []
        for row in self.tableau:
            lhs_map = {a: ("_" if row[a] is None else {row[a]}) for a in self.lhs}
            rhs_map = {a: ("_" if row[a] is None else {row[a]}) for a in self.rhs}
            patterns.append(PatternTuple(lhs_map, rhs_map))
        return ECFD(
            self.schema,
            self.lhs,
            self.rhs,
            pattern_rhs=(),
            tableau=patterns,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Semantics (delegated to the eCFD form)
    # ------------------------------------------------------------------
    def violations(self, relation: Relation, constraint_id: int = 0) -> ViolationSet:
        """All violations of this CFD in ``relation``."""
        return self.to_ecfd().violations(relation, constraint_id=constraint_id)

    def is_satisfied_by(self, relation: Relation) -> bool:
        """Whether ``relation ⊨`` this CFD."""
        return self.to_ecfd().is_satisfied_by(relation)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rhs = ", ".join(self.rhs)
        rows = "; ".join(
            "("
            + ", ".join(
                f"{a}: {'_' if row[a] is None else row[a]}" for a in self.lhs + self.rhs
            )
            + ")"
            for row in self.tableau
        )
        label = f"{self.name}: " if self.name else ""
        return f"{label}({self.schema.name}: [{lhs}] -> [{rhs}], {{{rows}}})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFD({self!s})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CFD):
            return (
                self.schema == other.schema
                and self.lhs == other.lhs
                and self.rhs == other.rhs
                and self.tableau == other.tableau
            )
        return NotImplemented


def cfd_from_ecfd(ecfd: ECFD) -> CFD:
    """Convert an eCFD back into a CFD when possible.

    Raises
    ------
    ConstraintError
        If the eCFD uses ``Yp`` attributes, complement sets, or non-singleton
        value sets — i.e. whenever :meth:`ECFD.is_cfd` is ``False``.
    """
    if not ecfd.is_cfd():
        raise ConstraintError(
            f"eCFD {ecfd} uses disjunction, inequality or Yp attributes and has no CFD form"
        )
    rows: list[dict[str, Value | None]] = []
    for pattern in ecfd.tableau:
        row: dict[str, Value | None] = {}
        for attribute in ecfd.lhs:
            entry = pattern.lhs_entry(attribute)
            row[attribute] = None if isinstance(entry, Wildcard) else next(iter(entry.constants()))
        for attribute in ecfd.rhs:
            entry = pattern.rhs_entry(attribute)
            row[attribute] = None if isinstance(entry, Wildcard) else next(iter(entry.constants()))
        rows.append(row)
    return CFD(ecfd.schema, ecfd.lhs, ecfd.rhs, rows, name=ecfd.name)
