"""The checker modules of repro.lint, one per RPL rule code.

Each module exports ``CODE`` plus a ``check_file(file, index)``
generator; project-level rules additionally export
``check_project(index)``.  The runner discovers both through the lists
below — adding a rule is: write the module, register its
:class:`~repro.lint.model.Rule` in :mod:`repro.lint.registry`, and add
it here.
"""

from __future__ import annotations

from repro.lint.checks import (
    asyncio_hygiene,
    determinism,
    engine_affinity,
    exception_taxonomy,
    registries,
    retry_idempotency,
    wire_safety,
)

__all__ = ["FILE_CHECKS", "PROJECT_CHECKS"]

#: ``(code, check_file)`` pairs, run per scanned file.
FILE_CHECKS = [
    (wire_safety.CODE, wire_safety.check_file),
    (retry_idempotency.CODE, retry_idempotency.check_file),
    (determinism.CODE, determinism.check_file),
    (asyncio_hygiene.CODE, asyncio_hygiene.check_file),
    (engine_affinity.CODE, engine_affinity.check_file),
    (exception_taxonomy.CODE, exception_taxonomy.check_file),
    (registries.CODE, registries.check_file),
]

#: ``(code, check_project)`` pairs, run once over the whole index.
PROJECT_CHECKS = [
    (retry_idempotency.CODE, retry_idempotency.check_project),
    (registries.CODE, registries.check_project),
]
