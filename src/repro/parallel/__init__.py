"""Sharded, multi-core violation detection.

* :mod:`repro.parallel.partition` — the single-pass partition planner
  (primary-key selection, local vs. summary fragment split, replication
  accounting) and deterministic hash partitioning of relations;
* :mod:`repro.parallel.summary` — the coordinator-side merge of the
  cross-shard ``(cid, xv, yv-multiset)`` group summaries emitted by the
  detectors' ``fd_group_summary`` hooks;
* :mod:`repro.parallel.sharded` — the ``"sharded"`` engine backend, which
  fans any delegate detector out over shared-nothing shards in a process or
  thread pool and merges per-shard flags and summaries exactly;
* :mod:`repro.parallel.repair` — the ``"sharded"`` repair strategy: fix
  deltas routed through the partition plan to the owning shards' INCDETECT
  lanes, cross-shard embedded-FD group fixes elected directly from the
  coordinator's merged summary store.
"""

from repro.parallel.partition import (
    PartitionCluster,
    PartitionPlan,
    cluster_replication_factor,
    extract_partition_plan,
    partition_rows,
    plan_partitions,
    route_delta,
    shard_index,
)
from repro.parallel.repair import ShardedRepairStrategy
from repro.parallel.sharded import DEFAULT_EXECUTOR, ShardedBackend, detect_sharded
from repro.parallel.summary import SummaryStore, summary_nbytes

__all__ = [
    "DEFAULT_EXECUTOR",
    "PartitionCluster",
    "PartitionPlan",
    "ShardedBackend",
    "ShardedRepairStrategy",
    "SummaryStore",
    "cluster_replication_factor",
    "detect_sharded",
    "extract_partition_plan",
    "partition_rows",
    "plan_partitions",
    "route_delta",
    "shard_index",
    "summary_nbytes",
]
