"""Fig. 6(a): INCDETECT vs BATCHDETECT as the database size |D| grows.

Paper setting: |ΔD⁺| = |ΔD⁻| = 10k, |D| swept from 10k to 100k; the batch
detector is re-run from scratch on the updated data, the incremental
detector processes only the update.  Expected shape: both scale with |D|,
and INCDETECT is faster than re-running BATCHDETECT at every size.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    incremental_engine,
    sweep,
    update_batch,
    updated_batch_engine,
)

SIZES = sweep([BENCH_SIZE, 2 * BENCH_SIZE, 3 * BENCH_SIZE, 4 * BENCH_SIZE, 5 * BENCH_SIZE])
UPDATE_FRACTION = 0.1


@pytest.mark.parametrize("size", SIZES)
def test_fig6a_incdetect_scalability_in_tuples(benchmark, size, base_workload):
    rows = dataset_rows(size)
    batch = update_batch(len(rows), int(size * UPDATE_FRACTION))

    def setup():
        return (incremental_engine(rows, base_workload),), {}

    def run(engine):
        # Deletions then insertions, maintained by one INCDETECT pass each.
        # Timed through the facade deliberately: apply_update is the
        # production hot path, so its bookkeeping is part of the measurement.
        return engine.apply_update(batch)

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tuples"] = size
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = result.dirty_count


@pytest.mark.parametrize("size", SIZES)
def test_fig6a_batchdetect_after_update_in_tuples(benchmark, size, base_workload):
    rows = dataset_rows(size)
    batch = update_batch(len(rows), int(size * UPDATE_FRACTION))

    def setup():
        return (updated_batch_engine(rows, batch, base_workload),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tuples"] = size
    benchmark.extra_info["update_size"] = batch.insert_count
    benchmark.extra_info["dirty"] = result.dirty_count
