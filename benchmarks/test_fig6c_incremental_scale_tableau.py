"""Fig. 6(c): INCDETECT vs BATCHDETECT as the tableau size |Tp| grows.

Paper setting: |D| = 100k, |ΔD⁺| = |ΔD⁻| = 10k, the selected eCFD's tableau
swept from 50 to 500.  Expected shape: both grow roughly linearly in |Tp|,
INCDETECT staying below BATCHDETECT.
"""

import pytest

from conftest import (
    BENCH_SIZE,
    dataset_rows,
    incremental_engine,
    sweep,
    update_batch,
    updated_batch_engine,
    workload_with_tableau,
)

TABLEAU_SIZES = sweep([50, 100, 200, 300, 400, 500])
UPDATE_SIZE = max(BENCH_SIZE // 10, 50)


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_fig6c_incdetect_scalability_in_tableau(benchmark, tableau_size):
    rows = dataset_rows(BENCH_SIZE)
    sigma = workload_with_tableau(tableau_size)
    batch = update_batch(len(rows), UPDATE_SIZE)

    def setup():
        return (incremental_engine(rows, sigma),), {}

    def run(engine):
        # Deletions then insertions, maintained by one INCDETECT pass each.
        # Timed through the facade deliberately: apply_update is the
        # production hot path, so its bookkeeping is part of the measurement.
        return engine.apply_update(batch)

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = result.dirty_count


@pytest.mark.parametrize("tableau_size", TABLEAU_SIZES)
def test_fig6c_batchdetect_after_update_in_tableau(benchmark, tableau_size):
    rows = dataset_rows(BENCH_SIZE)
    sigma = workload_with_tableau(tableau_size)
    batch = update_batch(len(rows), UPDATE_SIZE)

    def setup():
        return (updated_batch_engine(rows, batch, sigma),), {}

    def run(engine):
        return engine.detect()

    result = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    benchmark.extra_info["tableau_size"] = tableau_size
    benchmark.extra_info["dirty"] = result.dirty_count
