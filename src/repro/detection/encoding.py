"""Relational encoding of eCFDs (Section V-A, Fig. 3).

The batch and incremental detectors treat the constraint set Σ as *data*,
not as query text: Σ is encoded into auxiliary relations once, and a fixed
pair of SQL queries joins the data table with those relations.  Two kinds of
tables are produced:

``enc``
    One row per (normalized, single-pattern) eCFD.  Besides the constraint
    identifier ``CID`` it has two columns per schema attribute ``A`` —
    ``A_L`` for the left-hand side and ``A_R`` for the right-hand side —
    holding a small integer code:

    =========  ==============================================================
    code       meaning
    =========  ==============================================================
    ``0``      ``A`` does not occur on that side
    ``1``      ``A`` occurs with a value-set pattern ``S``
    ``2``      ``A`` occurs with a complement-set pattern ``S̄``
    ``3``      ``A`` occurs with the wildcard ``'_'``
    ``-1/-2/-3``  same as ``1/2/3`` but ``A`` belongs to ``Yp`` rather than
                  ``Y`` (only possible in the ``A_R`` column)
    =========  ==============================================================

``T_{A}_L`` / ``T_{A}_R``
    For every attribute ``A``, a binary relation ``(cid, val)`` listing the
    constants of the set ``S`` mentioned by constraint ``cid`` on that side
    (used both for ``S`` and ``S̄`` patterns; the ``enc`` code says which
    interpretation applies).

The encoding is linear in the size of Σ and its table *schema* depends only
on the relation schema R, exactly as the paper remarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.patterns import ComplementSet, PatternValue, ValueSet, Wildcard
from repro.core.schema import RelationSchema
from repro.detection.database import ECFDDatabase
from repro.exceptions import DetectionError

__all__ = [
    "ENC_TABLE",
    "AUX_TABLE",
    "MACRO_TABLE",
    "ConstraintEncoding",
    "encode_constraints",
    "install_encoding",
    "enc_column",
    "pattern_table",
]

#: Name of the enc relation.
ENC_TABLE = "ecfd_enc"
#: Name of the auxiliary relation maintained by the incremental detector.
AUX_TABLE = "ecfd_aux"
#: Name of the materialised macro relation (per-tuple, per-constraint rows)
#: that makes the incremental maintenance index-driven.
MACRO_TABLE = "ecfd_macro"

#: enc codes (positive = X or Y occurrence, negative = Yp occurrence).
CODE_ABSENT = 0
CODE_SET = 1
CODE_COMPLEMENT = 2
CODE_WILDCARD = 3


def enc_column(attribute: str, side: str) -> str:
    """Name of the enc column for ``attribute`` on side ``"L"`` or ``"R"``."""
    return f"{attribute}_{side}"


def pattern_table(attribute: str, side: str) -> str:
    """Name of the pattern-constant table for ``attribute`` on a side."""
    return f"ecfd_tp_{attribute}_{side}"


def _pattern_code(pattern: PatternValue) -> int:
    if isinstance(pattern, Wildcard):
        return CODE_WILDCARD
    if isinstance(pattern, ValueSet):
        return CODE_SET
    if isinstance(pattern, ComplementSet):
        return CODE_COMPLEMENT
    raise DetectionError(f"cannot encode pattern {pattern!r}")


@dataclass
class ConstraintEncoding:
    """The encoded form of a constraint set.

    Attributes
    ----------
    schema:
        The relation schema the constraints range over.
    fragments:
        The normalized single-pattern eCFDs, keyed by their ``CID``.
    enc_rows:
        Rows of the ``enc`` relation: ``(cid, code_A1_L, code_A1_R, ...)``
        following the attribute order of the schema.
    pattern_rows:
        Rows of the per-attribute constant tables:
        ``{(attribute, side): [(cid, value), ...]}``.
    """

    schema: RelationSchema
    fragments: dict[int, ECFD]
    enc_rows: list[tuple]
    pattern_rows: dict[tuple[str, str], list[tuple[int, str]]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of encoded single-pattern constraints."""
        return len(self.fragments)


def encode_constraints(sigma: ECFDSet | Sequence[ECFD]) -> ConstraintEncoding:
    """Encode Σ into ``enc`` / pattern-table rows (Fig. 3).

    Multi-pattern eCFDs are normalized into single-pattern fragments first;
    the fragment identifiers become the ``CID`` values.
    """
    constraints = list(sigma)
    if not constraints:
        raise DetectionError("cannot encode an empty set of eCFDs")
    schema = constraints[0].schema
    for constraint in constraints:
        if constraint.schema != schema:
            raise DetectionError("all eCFDs must be defined over the same schema")

    sigma_set = sigma if isinstance(sigma, ECFDSet) else ECFDSet(constraints)
    fragments = dict(sigma_set.normalize())

    enc_rows: list[tuple] = []
    pattern_rows: dict[tuple[str, str], list[tuple[int, str]]] = {
        (attribute, side): []
        for attribute in schema.attribute_names
        for side in ("L", "R")
    }

    for cid, fragment in fragments.items():
        pattern = fragment.tableau[0]
        codes: dict[tuple[str, str], int] = {
            (attribute, side): CODE_ABSENT
            for attribute in schema.attribute_names
            for side in ("L", "R")
        }
        for attribute in fragment.lhs:
            entry = pattern.lhs_entry(attribute)
            codes[(attribute, "L")] = _pattern_code(entry)
            for value in sorted(entry.constants(), key=str):
                pattern_rows[(attribute, "L")].append((cid, str(value)))
        for attribute in fragment.rhs:
            entry = pattern.rhs_entry(attribute)
            codes[(attribute, "R")] = _pattern_code(entry)
            for value in sorted(entry.constants(), key=str):
                pattern_rows[(attribute, "R")].append((cid, str(value)))
        for attribute in fragment.pattern_rhs:
            entry = pattern.rhs_entry(attribute)
            codes[(attribute, "R")] = -_pattern_code(entry)
            for value in sorted(entry.constants(), key=str):
                pattern_rows[(attribute, "R")].append((cid, str(value)))

        row = [cid]
        for attribute in schema.attribute_names:
            row.append(codes[(attribute, "L")])
            row.append(codes[(attribute, "R")])
        enc_rows.append(tuple(row))

    return ConstraintEncoding(
        schema=schema,
        fragments=fragments,
        enc_rows=enc_rows,
        pattern_rows=pattern_rows,
    )


def install_encoding(database: ECFDDatabase, encoding: ConstraintEncoding) -> None:
    """Create and populate the encoding tables inside ``database``.

    All DDL and DML are emitted through the database's dialect, so the same
    encoding installs identically on every engine (index DDL is skipped when
    the dialect declines it — columnar engines scan the tiny constant tables
    faster than they maintain indexes on them).  Existing encoding tables
    are dropped first, so re-installing a new Σ on the same database is
    safe.
    """
    if database.schema != encoding.schema:
        raise DetectionError("encoding and database must share the same relation schema")
    schema = database.schema
    dialect = database.dialect
    quote = dialect.quote_identifier
    integer = dialect.integer_type
    text = dialect.text_type

    # enc relation ------------------------------------------------------
    database.execute(dialect.drop_table(ENC_TABLE))
    enc_columns = [f"CID {integer} PRIMARY KEY"]
    for attribute in schema.attribute_names:
        enc_columns.append(f"{quote(enc_column(attribute, 'L'))} {integer} NOT NULL")
        enc_columns.append(f"{quote(enc_column(attribute, 'R'))} {integer} NOT NULL")
    database.execute(
        f"CREATE TABLE {quote(ENC_TABLE)} ({', '.join(enc_columns)})"
    )
    placeholders = ", ".join([dialect.placeholder] * (1 + 2 * len(schema)))
    database.executemany(
        f"INSERT INTO {quote(ENC_TABLE)} VALUES ({placeholders})",
        encoding.enc_rows,
    )

    # per-attribute constant tables --------------------------------------
    for (attribute, side), rows in encoding.pattern_rows.items():
        table = pattern_table(attribute, side)
        database.execute(dialect.drop_table(table))
        database.execute(
            f"CREATE TABLE {quote(table)} "
            f"(cid {integer} NOT NULL, val {text} NOT NULL)"
        )
        if rows:
            database.engine.bulk_insert(table, ["cid", "val"], rows)
        index_ddl = dialect.create_index("idx_" + table, table, ["cid", "val"])
        if index_ddl is not None:
            database.execute(index_ddl)
    database.commit()
