"""Unit tests for BATCHDETECT (Section V-A) on the paper's running example."""

import pytest

from repro.core import ECFD, ECFDSet, Relation
from repro.core.patterns import ComplementSet
from repro.detection import BatchDetector, ECFDDatabase, NaiveDetector
from repro.detection.sqlgen import qmv_query, qsv_query
from tests.conftest import FIG1_ROWS


@pytest.fixture
def loaded_db(schema, d0):
    with ECFDDatabase(schema) as db:
        db.load_relation(d0)
        yield db


class TestSqlGeneration:
    def test_qsv_query_is_schema_generic(self, schema):
        sql = qsv_query(schema)
        # One EXISTS-guard pair per attribute, never one per eCFD.
        assert sql.count("ecfd_tp_CT_L") == 2
        assert sql.count("ecfd_tp_ZIP_R") == 2
        assert "SELECT DISTINCT t.tid" in sql

    def test_qmv_query_groups_by_blanked_columns(self, schema):
        sql = qmv_query(schema)
        assert "GROUP BY" in sql and "HAVING COUNT(DISTINCT yv_key) > 1" in sql
        assert "CASE WHEN" in sql
        assert "'@'" in sql

    def test_restriction_is_injected(self, schema):
        sql = qsv_query(schema, restriction="t.tid IN (SELECT tid FROM x)")
        assert "t.tid IN (SELECT tid FROM x)" in sql


class TestBatchDetectOnPaperExample:
    def test_detects_t1_and_t4(self, loaded_db, paper_sigma):
        """Example 2.2: D0 violates ψ1 (t1) and ψ2 (t4), both single-tuple."""
        detector = BatchDetector(loaded_db, paper_sigma)
        violations = detector.detect()
        assert violations.sv_tids == frozenset({1, 4})
        assert violations.mv_tids == frozenset()
        assert violations.violating_tids == frozenset({1, 4})

    def test_agrees_with_naive_oracle(self, loaded_db, paper_sigma, d0):
        sql_result = BatchDetector(loaded_db, paper_sigma).detect()
        naive_result = NaiveDetector(paper_sigma).detect(d0)
        assert sql_result == naive_result

    def test_multi_tuple_violation_detected(self, schema, paper_sigma):
        """Adding a second Albany tuple with a different AC triggers the embedded FD."""
        rows = FIG1_ROWS + [
            {"AC": "519", "PN": "9999999", "NM": "Eve", "STR": "Pine St.",
             "CT": "Albany", "ZIP": "12240"},
        ]
        relation = Relation(schema, rows)
        with ECFDDatabase(schema) as db:
            db.load_relation(relation)
            violations = BatchDetector(db, paper_sigma).detect()
        # t1 (tid 1) and the new tuple (tid 7) share CT=Albany but differ on AC.
        assert {1, 7} <= violations.mv_tids
        # The new tuple also breaks the (Albany -> 518) pattern by itself.
        assert 7 in violations.sv_tids

    def test_clean_database_has_no_violations(self, schema, paper_sigma):
        rows = [
            {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Albany", "ZIP": "1"},
            {"AC": "212", "PN": "2", "NM": "b", "STR": "s", "CT": "NYC", "ZIP": "2"},
            {"AC": "917", "PN": "3", "NM": "c", "STR": "s", "CT": "NYC", "ZIP": "3"},
        ]
        with ECFDDatabase(schema) as db:
            db.load_relation(Relation(schema, rows))
            violations = BatchDetector(db, paper_sigma).detect()
        assert violations.is_clean()

    def test_detect_is_idempotent(self, loaded_db, paper_sigma):
        detector = BatchDetector(loaded_db, paper_sigma)
        first = detector.detect()
        second = detector.detect()
        assert first == second

    def test_aux_rows_reflect_fd_violations(self, schema, paper_sigma):
        rows = FIG1_ROWS + [
            {"AC": "519", "PN": "9", "NM": "Eve", "STR": "P", "CT": "Albany", "ZIP": "1"},
        ]
        with ECFDDatabase(schema) as db:
            db.load_relation(Relation(schema, rows))
            detector = BatchDetector(db, paper_sigma)
            assert detector.aux_rows() == []  # nothing before detection
            detector.detect()
            aux = detector.aux_rows()
        # Albany matches the LHS of both ψ1 pattern tuples (the complement
        # pattern, CID 1, and the {Albany, Troy, Colonie} pattern, CID 2),
        # so the violating group appears once per fragment.
        assert len(aux) == 2
        assert {row[0] for row in aux} == {1, 2}
        assert all("Albany" in row[1:] for row in aux)

    def test_violation_counts(self, loaded_db, paper_sigma):
        detector = BatchDetector(loaded_db, paper_sigma)
        detector.detect()
        assert detector.violation_counts() == {"sv": 2, "mv": 0, "dirty": 2}


class TestBatchDetectYpAndComplement:
    def test_yp_only_ecfd_never_produces_mv(self, schema, psi2):
        """ψ2 has an empty Y, so it can only yield single-tuple violations."""
        rows = [
            {"AC": "100", "PN": "1", "NM": "a", "STR": "s", "CT": "NYC", "ZIP": "1"},
            {"AC": "101", "PN": "2", "NM": "b", "STR": "s", "CT": "NYC", "ZIP": "2"},
        ]
        with ECFDDatabase(schema) as db:
            db.load_relation(Relation(schema, rows))
            violations = BatchDetector(db, ECFDSet([psi2])).detect()
        assert violations.sv_tids == frozenset({1, 2})
        assert violations.mv_tids == frozenset()

    def test_complement_rhs_pattern(self, schema):
        """An eCFD with a complement-set on the RHS: AC must NOT be 999 outside NYC."""
        ecfd = ECFD(
            schema,
            ["CT"],
            [],
            ["AC"],
            tableau=[({"CT": {"Troy"}}, {"AC": ComplementSet(["999"])})],
        )
        rows = [
            {"AC": "999", "PN": "1", "NM": "a", "STR": "s", "CT": "Troy", "ZIP": "1"},
            {"AC": "518", "PN": "2", "NM": "b", "STR": "s", "CT": "Troy", "ZIP": "2"},
        ]
        with ECFDDatabase(schema) as db:
            db.load_relation(Relation(schema, rows))
            violations = BatchDetector(db, [ecfd]).detect()
        assert violations.sv_tids == frozenset({1})
