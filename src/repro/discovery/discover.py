"""eCFD discovery from data samples (paper future work, Section VIII).

The paper's conclusion names "effective methods for automatically
discovering eCFDs from data samples" as an open practical topic.  This
module implements a first, support/confidence-based discovery algorithm in
the spirit of later CFD-discovery work (e.g. CFDMiner / CTANE): it mines,
for a given pair of attribute lists (X, A), pattern constraints of the form

    ( X: S_x  ||  A: S_a )

where ``S_x`` is a frequent left-hand-side value (as a singleton set) and
``S_a`` is the smallest set of right-hand-side values covering at least
``confidence`` of the matching tuples.  Constraints whose RHS set is a
singleton correspond to classic constant CFDs; larger sets use the eCFD
disjunction; and when the complement of the covered values is smaller than
the covered set, the constraint is emitted with a complement pattern
instead (the eCFD inequality construct).

The discovered eCFD is returned together with per-pattern support and
confidence statistics so callers can filter or rank.  Discovery is
deliberately restricted to single-attribute RHS and constant LHS patterns —
the same restriction the first generation of CFD-discovery algorithms
adopted — which keeps the search space linear in the number of distinct LHS
values.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.ecfd import ECFD, PatternTuple
from repro.core.instance import Relation
from repro.core.patterns import ComplementSet, ValueSet
from repro.core.schema import Value
from repro.exceptions import DiscoveryError

__all__ = ["DiscoveredPattern", "DiscoveryResult", "discover_patterns", "discover_ecfd"]


@dataclass(frozen=True)
class DiscoveredPattern:
    """One mined pattern constraint with its quality statistics.

    ``support`` is the number of tuples matching the LHS value; ``covered``
    is how many of those the RHS pattern accepts; ``confidence`` is their
    ratio.
    """

    lhs_value: Value
    rhs_values: frozenset[Value]
    complement: bool
    support: int
    covered: int

    @property
    def confidence(self) -> float:
        return self.covered / self.support if self.support else 0.0


@dataclass(frozen=True)
class DiscoveryResult:
    """The outcome of one discovery run: the eCFD plus per-pattern statistics."""

    ecfd: ECFD | None
    patterns: tuple[DiscoveredPattern, ...]


def discover_patterns(
    relation: Relation,
    lhs: Sequence[str],
    rhs: str,
    min_support: int = 2,
    min_confidence: float = 0.95,
    max_rhs_values: int = 5,
) -> list[DiscoveredPattern]:
    """Mine pattern constraints ``(lhs value -> rhs value set)`` from the data.

    Parameters
    ----------
    relation:
        The (possibly dirty) sample to mine.
    lhs / rhs:
        The candidate embedded-FD attributes; ``lhs`` may list several
        attributes (their value combination becomes the LHS key), ``rhs`` is
        a single attribute.
    min_support:
        Minimum number of tuples sharing the LHS value for a pattern to be
        considered.
    min_confidence:
        Minimum fraction of those tuples that the RHS set must cover.
    max_rhs_values:
        Upper bound on the size of the mined RHS value set; LHS values whose
        RHS distribution is more spread out than this produce no pattern.
    """
    if not lhs:
        raise DiscoveryError("discovery needs at least one LHS attribute")
    if rhs in lhs:
        raise DiscoveryError("the RHS attribute must not occur in the LHS")
    if not 0.0 < min_confidence <= 1.0:
        raise DiscoveryError("min_confidence must lie in (0, 1]")
    relation.schema.check_attributes(list(lhs) + [rhs], context="discovery")

    groups: dict[tuple[Value, ...], Counter] = defaultdict(Counter)
    for t in relation:
        groups[t.project(lhs)][t[rhs]] += 1

    mined: list[DiscoveredPattern] = []
    for key, distribution in sorted(groups.items(), key=lambda item: str(item[0])):
        support = sum(distribution.values())
        if support < min_support:
            continue
        # Take RHS values by decreasing frequency until the confidence target
        # is reached (or the size cap is hit).
        covered = 0
        chosen: list[Value] = []
        for value, count in distribution.most_common():
            if covered / support >= min_confidence:
                break
            if len(chosen) >= max_rhs_values:
                break
            chosen.append(value)
            covered += count
        if not chosen or covered / support < min_confidence:
            continue
        lhs_value = key[0] if len(lhs) == 1 else key
        # Prefer the complement form when it is strictly smaller than the
        # positive form (the eCFD inequality construct).
        excluded = [value for value in distribution if value not in chosen]
        use_complement = 0 < len(excluded) < len(chosen)
        mined.append(
            DiscoveredPattern(
                lhs_value=lhs_value,
                rhs_values=frozenset(excluded if use_complement else chosen),
                complement=use_complement,
                support=support,
                covered=covered,
            )
        )
    return mined


def discover_ecfd(
    relation: Relation,
    lhs: Sequence[str],
    rhs: str,
    min_support: int = 2,
    min_confidence: float = 0.95,
    max_rhs_values: int = 5,
    name: str | None = None,
) -> DiscoveryResult:
    """Mine a complete eCFD ``(R: X -> ∅, {A}, Tp)`` from the data sample.

    The mined pattern constraints become the tableau of a single eCFD whose
    ``Yp`` is the RHS attribute (pattern constraints only — the embedded FD
    is left empty so that dirty samples do not force spurious FD semantics).
    Returns a result with ``ecfd=None`` when nothing reaches the thresholds.
    """
    patterns = discover_patterns(
        relation, lhs, rhs, min_support, min_confidence, max_rhs_values
    )
    if not patterns:
        return DiscoveryResult(ecfd=None, patterns=())

    tableau = []
    for mined in patterns:
        if isinstance(mined.lhs_value, tuple):
            lhs_map = {a: ValueSet([v]) for a, v in zip(lhs, mined.lhs_value)}
        else:
            lhs_map = {lhs[0]: ValueSet([mined.lhs_value])}
        rhs_entry = (
            ComplementSet(mined.rhs_values) if mined.complement else ValueSet(mined.rhs_values)
        )
        tableau.append(PatternTuple(lhs_map, {rhs: rhs_entry}))

    ecfd = ECFD(
        relation.schema,
        lhs=list(lhs),
        rhs=[],
        pattern_rhs=[rhs],
        tableau=tableau,
        name=name or f"discovered_{'_'.join(lhs)}_to_{rhs}",
    )
    return DiscoveryResult(ecfd=ecfd, patterns=tuple(patterns))
