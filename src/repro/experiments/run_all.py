"""Command-line entry point: regenerate every figure of the paper's evaluation.

Usage::

    python -m repro.experiments.run_all                 # bench scale (default)
    REPRO_SCALE=paper python -m repro.experiments.run_all   # the paper's sizes
    python -m repro.experiments.run_all fig5a fig7b         # a subset of figures

Each driver prints its series as an aligned text table; redirect to a file
to keep a record (EXPERIMENTS.md was produced this way).
"""

from __future__ import annotations

import sys

from repro.experiments.figures import ALL_FIGURES, ablation_maxss
from repro.experiments.runner import current_scale

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Run the requested figure drivers (all of them by default)."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    scale = current_scale()
    requested = arguments or list(ALL_FIGURES) + ["ablation-maxss"]

    print(f"# eCFD reproduction experiments (scale: {scale.name})\n")
    for name in requested:
        if name == "ablation-maxss":
            result = ablation_maxss()
        elif name in ALL_FIGURES:
            result = ALL_FIGURES[name](scale)
        else:
            print(f"unknown experiment {name!r}; known: {sorted(ALL_FIGURES) + ['ablation-maxss']}")
            return 2
        print(result.to_table())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
