"""Per-rule coverage: one violating and one clean fixture per RPL code."""

from __future__ import annotations


def codes(result):
    return [violation.code for violation in result.violations]


# ----------------------------------------------------------------------
# RPL001 — wire-safety
# ----------------------------------------------------------------------
class TestWireSafety:
    def test_lambda_payload_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                def go(pool, lane):
                    pool.submit(lane, "echo", lambda row: row)
                """
            }
        )
        assert codes(result) == ["RPL001"]
        assert "lambda" in result.violations[0].message

    def test_bound_method_and_closure_fire(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                class Coordinator:
                    def _reduce(self, rows):
                        return rows

                    def go(self, pool, lane):
                        def local(row):
                            return row
                        pool.submit(lane, "echo", local)
                        pool.submit(lane, "echo", self._reduce)
                """
            }
        )
        assert codes(result) == ["RPL001", "RPL001"]

    def test_summary_cell_outside_summaries_fires(self, lint_tree):
        source = """
        def fold(groups, xv):
            counts, tids = groups.setdefault(xv, ({}, []))
            return counts, tids
        """
        fires = lint_tree({"src/repro/parallel/merge.py": source})
        assert codes(fires) == ["RPL001"]
        sanctioned = lint_tree({"src/repro/detection/summaries.py": source})
        assert codes(sanctioned) == []

    def test_plain_payload_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                def go(pool, lane, task):
                    pool.submit(lane, "echo", task)
                """
            }
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL002 — retry idempotency
# ----------------------------------------------------------------------
class TestRetryIdempotency:
    def test_retry_on_non_idempotent_op_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("update", idempotent=False)
                def _update(payload):
                    return payload

                def go(pool, lane, task):
                    pool.submit(lane, "update", task, retryable=True)
                """
            }
        )
        assert codes(result) == ["RPL002"]
        assert "not declared idempotent" in result.violations[0].message

    def test_retry_on_unregistered_op_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                def go(pool, lane, task):
                    pool.submit(lane, "ghost", task, retryable=True)
                """
            }
        )
        # RPL007 also flags the unregistered op name at the same site.
        assert sorted(codes(result)) == ["RPL002", "RPL007"]

    def test_freeform_retry_expression_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                SAFE = {"echo"}

                def go(pool, lane, op, task):
                    pool.submit(lane, "echo", task, retryable=op in SAFE)
                """
            }
        )
        assert codes(result) == ["RPL002"]

    def test_conflicting_declarations_fire(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/a.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _a(payload):
                    return payload
                """,
                "src/repro/parallel/b.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=False)
                def _b(payload):
                    return payload
                """,
            }
        )
        assert codes(result) == ["RPL002", "RPL002"]
        assert "conflicting idempotency" in result.violations[0].message

    def test_registered_idempotent_retry_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import is_idempotent, rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                def go(pool, lane, op, task):
                    pool.submit(lane, "echo", task, retryable=True)
                    pool.submit(lane, "echo", task, retryable=False)
                    pool.submit(lane, op, task, retryable=is_idempotent(op))
                """
            }
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL003 — determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_wall_clock_and_unseeded_random_fire(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/tiebreak.py": """
                import random
                import time

                def stamp():
                    return time.time()

                def pick(rows):
                    return random.choice(rows)
                """
            }
        )
        assert codes(result) == ["RPL003", "RPL003"]

    def test_set_iteration_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/order.py": """
                def emit(rows):
                    return [row for row in set(rows)]
                """
            }
        )
        assert codes(result) == ["RPL003"]
        assert "sorted()" in result.violations[0].message

    def test_engine_scope_only(self, lint_tree):
        source = """
        import time

        def stamp():
            return time.time()
        """
        assert codes(lint_tree({"tests/helpers.py": source})) == []
        assert codes(lint_tree({"src/repro/engine/clock.py": source})) == ["RPL003"]

    def test_seeded_and_sorted_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/tiebreak.py": """
                import random
                import time

                def pick(rows, seed):
                    rng = random.Random(seed)
                    started = time.perf_counter()
                    return rng.choice(sorted(rows)), started

                def emit(rows):
                    return [row for row in sorted(set(rows))]
                """
            }
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL004 — asyncio hygiene
# ----------------------------------------------------------------------
class TestAsyncioHygiene:
    def test_blocking_call_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/loop.py": """
                import time

                async def pump(queue):
                    time.sleep(0.1)
                    return await queue.get()
                """
            }
        )
        assert codes(result) == ["RPL004"]
        assert "time.sleep" in result.violations[0].message

    def test_unawaited_coroutine_and_orphan_task_fire(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/loop.py": """
                async def drain(queue):
                    await queue.join()

                async def pump(loop, queue):
                    drain(queue)
                    loop.create_task(drain(queue))
                """
            }
        )
        assert codes(result) == ["RPL004", "RPL004"]

    def test_nested_sync_helper_is_exempt(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/loop.py": """
                import time

                async def pump(loop, queue):
                    def blocking_probe():
                        time.sleep(0.1)
                        return 1
                    return await loop.run_in_executor(None, blocking_probe)
                """
            }
        )
        assert codes(result) == []

    def test_awaited_and_retained_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/loop.py": """
                import asyncio

                async def drain(queue):
                    await queue.join()

                async def pump(loop, queue):
                    await asyncio.sleep(0.1)
                    await drain(queue)
                    task = loop.create_task(drain(queue))
                    await task
                """
            }
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL005 — DB engine thread affinity
# ----------------------------------------------------------------------
class TestEngineAffinity:
    def test_sqlite_import_outside_engine_modules_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/cache.py": """
                import sqlite3

                def open_cache(path):
                    return sqlite3.connect(path)
                """
            }
        )
        assert codes(result) == ["RPL005"]

    def test_duckdb_import_outside_engine_modules_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/detection/database.py": """
                import duckdb

                def open_store(path):
                    return duckdb.connect(path)
                """
            }
        )
        assert codes(result) == ["RPL005"]
        assert "duckdb" in result.violations[0].message

    def test_connection_captured_in_closure_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/detection/engines/sqlite_engine.py": """
                import sqlite3

                def make_runner(path):
                    conn = sqlite3.connect(path)
                    return lambda sql: conn.execute(sql)
                """
            }
        )
        assert codes(result) == ["RPL005"]
        assert "closure" in result.violations[0].message

    def test_duckdb_connection_captured_in_closure_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/detection/engines/duckdb_engine.py": """
                import duckdb

                def make_runner(path):
                    conn = duckdb.connect(path)
                    def run(sql):
                        return conn.execute(sql)
                    return run
                """
            }
        )
        assert codes(result) == ["RPL005"]

    def test_engine_modules_without_capture_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/detection/engines/sqlite_engine.py": """
                import sqlite3

                def open_db(path):
                    conn = sqlite3.connect(path)
                    conn.execute("PRAGMA journal_mode=WAL")
                    return conn
                """,
                "src/repro/detection/engines/duckdb_engine.py": """
                import duckdb

                def open_columnar(path):
                    conn = duckdb.connect(path)
                    return conn
                """,
            }
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL006 — exception taxonomy
# ----------------------------------------------------------------------
class TestExceptionTaxonomy:
    def test_orphan_exception_class_and_raise_fire(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/errors.py": """
                class CacheError(Exception):
                    pass

                def lookup(cache, key):
                    if key not in cache:
                        raise CacheError(key)
                    return cache[key]
                """
            }
        )
        assert codes(result) == ["RPL006", "RPL006"]

    def test_unjustified_broad_except_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/guard.py": """
                def safe(fn):
                    try:
                        return fn()
                    except Exception:
                        return None
                """
            }
        )
        assert codes(result) == ["RPL006"]
        assert "BLE001" in result.violations[0].message

    def test_tests_may_define_throwaway_exceptions(self, lint_tree):
        result = lint_tree(
            {
                "tests/fabric/test_faults.py": """
                class InjectedFault(Exception):
                    pass

                def test_fault():
                    try:
                        raise InjectedFault()
                    except InjectedFault:
                        pass
                """
            }
        )
        assert codes(result) == []

    def test_repro_error_subclass_and_justified_except_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/engine/errors.py": """
                from repro.exceptions import ReproError

                class CacheError(ReproError):
                    pass

                def safe(fn):
                    try:
                        return fn()
                    except Exception:  # noqa: BLE001 - teardown is best-effort
                        return None
                """
            }
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL007 — registry consistency
# ----------------------------------------------------------------------
class TestRegistryConsistency:
    def test_duplicate_and_orphan_registrations_fire(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/reports/figures.py": """
                from repro.reports.registry import register_figure

                @register_figure("fig99", "growth", "first")
                def fig99_first(ctx):
                    return []

                @register_figure("fig99", "growth", "second")
                def fig99_second(ctx):
                    return []
                """,
                "src/repro/experiments/figures.py": """
                from repro.experiments.registry import register_driver

                @register_driver("ghost-figure")
                def drive_ghost(out_dir):
                    return None
                """,
            }
        )
        assert sorted(codes(result)) == ["RPL007", "RPL007"]
        messages = " | ".join(v.message for v in result.violations)
        assert "duplicate figure" in messages
        assert "no registered figure" in messages

    def test_tracked_benchmark_must_exist(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/reports/schema.py": """
                TRACKED_BENCHMARKS = {
                    "test_ghost_scaling[1]": "a benchmark that does not exist",
                }
                EXTRA_INFO_FIELDS = {
                    "test_real": ("tuples",),
                }
                """,
                "benchmarks/test_bench.py": """
                def test_real_scaling(benchmark):
                    pass
                """,
            }
        )
        assert codes(result) == ["RPL007", "RPL007"]
        messages = " | ".join(v.message for v in result.violations)
        assert "names no benchmark function" in messages
        assert "EXTRA_INFO_FIELDS" in messages

    def test_unregistered_op_dispatch_fires(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/parallel/pool.py": """
                from repro.parallel.transport import rpc_op

                @rpc_op("echo", idempotent=True)
                def _echo(payload):
                    return payload

                def go(pool, lane, task):
                    pool.submit(lane, "ghost", task, retryable=False)
                """
            }
        )
        assert codes(result) == ["RPL007"]

    def test_consistent_registries_are_clean(self, lint_tree):
        result = lint_tree(
            {
                "src/repro/reports/figures.py": """
                from repro.reports.registry import register_figure

                @register_figure("fig99", "growth", "the one figure")
                def fig99(ctx):
                    return []
                """,
                "src/repro/experiments/figures.py": """
                from repro.experiments.registry import register_driver

                @register_driver("fig99")
                def drive_fig99(out_dir):
                    return None
                """,
                "src/repro/reports/schema.py": """
                TRACKED_BENCHMARKS = {
                    "test_real_scaling[1]": "the tracked hot path",
                }
                EXTRA_INFO_FIELDS = {
                    "test_real": ("tuples",),
                }
                """,
                "benchmarks/test_bench.py": """
                def test_real_scaling(benchmark):
                    pass
                """,
            }
        )
        assert codes(result) == []
