"""Property suite: remote == thread == serial, under a seeded random sweep.

Each case draws a random constraint set (embedded FDs with overlapping,
disjoint and *empty* LHS sets, value-set and complement-set disjunction
patterns, pattern-only riders), random small-domain data and a random
update/delete mix, then runs the identical workload through the serial,
thread and remote executors.  Sharding is an execution strategy: every
violation set, breakdown and repaired relation must be bit-identical
across the three, at every round.

Seeds are in the parametrize ids, so a failing CI run names its exact
reproduction (``test_...[delete-heavy-2-seed3]`` reruns with ``-k``).
"""

from __future__ import annotations

import random

import pytest

from repro.engine import DataQualityEngine

from tests.parallel.test_summary_merge import (
    SCHEMA,
    _random_rows,
    _random_sigma,
)

#: update/delete mix profiles: (deletes per round, inserts per round).
PROFILES = {
    "delete-heavy": (lambda rng: rng.randint(30, 45), lambda rng: rng.randint(0, 4)),
    "insert-heavy": (lambda rng: rng.randint(3, 8), lambda rng: rng.randint(15, 25)),
    "balanced": (lambda rng: rng.randint(12, 20), lambda rng: rng.randint(10, 18)),
}


def _build(sigma, rows, executor, workers, addresses=None):
    kwargs = {}
    if executor == "remote":
        kwargs["remote_workers"] = [f"{h}:{p}" for h, p in addresses]
    engine = DataQualityEngine(
        SCHEMA,
        sigma,
        backend="incremental",
        workers=workers,
        executor=executor,
        **kwargs,
    )
    engine.load(rows)
    engine.backend.ensure_ready()
    return engine


def _relation(engine):
    return {t.tid: t.as_dict() for t in engine.to_relation().tuples()}


class TestRandomizedExecutorEquivalence:
    @pytest.mark.parametrize("workers", (2, 4))
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("seed", range(3))
    def test_detect_and_update_streams_agree(
        self, seed, profile, workers, worker_addresses
    ):
        rng = random.Random(f"{seed}:{profile}:{workers}")
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 140)
        deletes_of, inserts_of = PROFILES[profile]

        engines = {
            "serial": _build(sigma, rows, "serial", workers),
            "thread": _build(sigma, rows, "thread", workers),
            "remote": _build(sigma, rows, "remote", workers, worker_addresses),
        }
        baseline = engines["remote"].backend.full_detect_count
        try:
            live = list(range(1, len(rows) + 1))
            next_tid = len(rows) + 1
            for _ in range(3):
                deletes = rng.sample(live, k=min(len(live), deletes_of(rng)))
                inserts = _random_rows(rng, inserts_of(rng))
                results = {
                    name: engine.apply_update(
                        delete_tids=deletes, insert_rows=inserts
                    )
                    for name, engine in engines.items()
                }
                assert (
                    results["remote"].violations
                    == results["thread"].violations
                    == results["serial"].violations
                )
                live = [tid for tid in live if tid not in set(deletes)]
                live.extend(range(next_tid, next_tid + len(inserts)))
                next_tid += len(inserts)

            final = {
                name: engine.detect().violations for name, engine in engines.items()
            }
            assert final["remote"] == final["thread"] == final["serial"]
            breakdowns = {
                name: engine.backend.breakdown() for name, engine in engines.items()
            }
            assert breakdowns["remote"] == breakdowns["thread"] == breakdowns["serial"]
            # The whole sweep is recompute-free on the remote fabric.
            assert engines["remote"].backend.full_detect_count == baseline
        finally:
            for engine in engines.values():
                engine.close()

    @pytest.mark.parametrize("seed", range(2))
    def test_repair_lands_on_the_same_relation(self, seed, worker_addresses):
        rng = random.Random(9000 + seed)
        sigma = _random_sigma(rng)
        rows = _random_rows(rng, 120)
        engines = {
            "serial": _build(sigma, rows, "serial", 3),
            "thread": _build(sigma, rows, "thread", 3),
            "remote": _build(sigma, rows, "remote", 3, worker_addresses),
        }
        from repro.exceptions import RepairError

        def outcome(engine):
            # A random Σ may be unrepairable within the round budget; what
            # equivalence demands is that every executor lands on the SAME
            # outcome — converged with identical counts, or not at all.
            try:
                result = engine.repair(max_rounds=6)
                return ("converged", result.cells_changed, result.clean)
            except RepairError:
                return ("did-not-converge",)

        try:
            repairs = {name: outcome(engine) for name, engine in engines.items()}
            assert repairs["remote"] == repairs["thread"] == repairs["serial"]
            relations = {name: _relation(engine) for name, engine in engines.items()}
            assert relations["remote"] == relations["thread"] == relations["serial"]
            post = {
                name: engine.detect().violations for name, engine in engines.items()
            }
            assert post["remote"] == post["thread"] == post["serial"]
        finally:
            for engine in engines.values():
                engine.close()

    @pytest.mark.parametrize("seed", range(2))
    def test_empty_lhs_and_disjunction_heavy_sigma(self, seed, worker_addresses):
        """Force the summary-merge worst case through the remote fabric.

        Empty-LHS FDs put every group on every shard (the reduce stage's
        whole reason to exist); complement-set patterns exercise the
        disjunctive matching on both sides of the wire.
        """
        from repro.core import ECFD, ECFDSet
        from repro.core.patterns import ComplementSet

        rng = random.Random(7000 + seed)
        sigma = ECFDSet(
            [
                ECFD(SCHEMA, lhs=[], rhs=[a], tableau=[({}, {a: "_"})])
                for a in ("CT", "ZIP")
            ]
            + [
                ECFD(
                    SCHEMA,
                    lhs=["AC"],
                    rhs=["CT"],
                    tableau=[({"AC": ComplementSet({"ac-0"})}, {"CT": "_"})],
                )
            ]
        )
        rows = _random_rows(rng, 120)
        engines = {
            "serial": _build(sigma, rows, "serial", 4),
            "remote": _build(sigma, rows, "remote", 4, worker_addresses),
        }
        try:
            assert (
                engines["remote"].detect().violations
                == engines["serial"].detect().violations
            )
            live = list(range(1, len(rows) + 1))
            deletes = rng.sample(live, k=50)
            results = {
                name: engine.apply_update(delete_tids=deletes)
                for name, engine in engines.items()
            }
            assert results["remote"].violations == results["serial"].violations
        finally:
            for engine in engines.values():
                engine.close()
