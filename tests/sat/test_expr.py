"""Unit tests for the Boolean expression AST (repro.sat.expr)."""

from repro.sat.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    Not,
    Or,
    Var,
    conjoin,
    disjoin,
    implies_expr,
)


class TestEvaluation:
    def test_var_defaults_to_false(self):
        assert not Var("x").evaluate({})
        assert Var("x").evaluate({"x": True})

    def test_constants(self):
        assert TRUE.evaluate({})
        assert not FALSE.evaluate({})

    def test_not(self):
        assert Not(Var("x")).evaluate({"x": False})
        assert not Not(Var("x")).evaluate({"x": True})

    def test_and_or(self):
        x, y = Var("x"), Var("y")
        both = And([x, y])
        either = Or([x, y])
        assert both.evaluate({"x": True, "y": True})
        assert not both.evaluate({"x": True, "y": False})
        assert either.evaluate({"x": False, "y": True})
        assert not either.evaluate({"x": False, "y": False})

    def test_empty_and_is_true_empty_or_is_false(self):
        assert And([]).evaluate({})
        assert not Or([]).evaluate({})

    def test_implication(self):
        imp = implies_expr(Var("x"), Var("y"))
        assert imp.evaluate({"x": False, "y": False})
        assert imp.evaluate({"x": True, "y": True})
        assert not imp.evaluate({"x": True, "y": False})

    def test_operator_sugar(self):
        x, y = Var("x"), Var("y")
        assert (x & y).evaluate({"x": True, "y": True})
        assert (x | y).evaluate({"x": False, "y": True})
        assert (~x).evaluate({"x": False})


class TestVariables:
    def test_variable_collection(self):
        expression = Or([And([Var("a"), Not(Var("b"))]), Var("c"), TRUE])
        assert expression.variables() == frozenset({"a", "b", "c"})

    def test_constants_have_no_variables(self):
        assert TRUE.variables() == frozenset()


class TestSimplification:
    def test_conjoin_flattens_and_simplifies(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        nested = conjoin([And([x, y]), z])
        assert isinstance(nested, And)
        assert len(nested.operands) == 3
        assert conjoin([x, TRUE]) == x
        assert conjoin([x, FALSE]) == FALSE
        assert conjoin([]) == TRUE
        assert conjoin([x]) == x

    def test_disjoin_flattens_and_simplifies(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        nested = disjoin([Or([x, y]), z])
        assert isinstance(nested, Or)
        assert len(nested.operands) == 3
        assert disjoin([x, FALSE]) == x
        assert disjoin([x, TRUE]) == TRUE
        assert disjoin([]) == FALSE
        assert disjoin([x]) == x

    def test_hashable_and_equal(self):
        assert And([Var("x"), Var("y")]) == And([Var("x"), Var("y")])
        assert hash(Var("x")) == hash(Var("x"))
        assert Const(True) == TRUE

    def test_str_renders(self):
        assert str(Var("x")) == "x"
        assert "∧" in str(And([Var("x"), Var("y")]))
        assert "∨" in str(Or([Var("x"), Var("y")]))
        assert str(And([])) == "true"
        assert str(Or([])) == "false"
