"""INCDETECT — incremental detection of eCFD violations (Section V-B).

Re-running BATCHDETECT after every update wastes work when the update ΔD
touches only a small part of D.  The incremental algorithm maintains, across
updates, the invariant

    * the SV / MV flags of the data table describe vio(D) exactly,
    * the auxiliary relation Aux(D) (``ecfd_aux``) holds exactly the
      violating ``(cid, p)`` groups — the ``Q_mv`` result — of the current D,
    * the materialised macro relation (``ecfd_macro``) holds one row per
      (tuple, constraint) pair whose tuple matches the constraint's LHS
      pattern,

and repairs all three using a fixed number of SQL statements per update,
each of which touches only the *affected* part of the database (index-driven
joins on the ``(cid, xv_key)`` group identity and on ``tid``).

Deletions (ΔD⁻)
    Deletions can only remove violations.  The affected groups are read off
    the macro rows of the deleted tuples; those macro rows are dropped; the
    affected groups are re-derived from the remaining macro rows and the
    auxiliary rows of groups that stopped violating are deleted; finally
    ``MV`` is cleared on flagged tuples that no longer belong to any
    violating group.  ``SV`` needs no attention (a deleted tuple takes its
    flag with it).

Insertions (ΔD⁺)
    New single-tuple violations can only be inserted tuples, so ``Q_sv`` is
    run restricted to the new tids.  The macro rows of the new tuples are
    computed (a scan of ΔD⁺ only) and appended; the affected groups are the
    groups of those new rows; they are re-derived over the (updated) macro
    relation and merged into Aux(D); finally ``MV`` is set on tuples
    belonging to a (re)derived affected group.  Groups untouched by the
    insertion keep their auxiliary rows unchanged — an insertion can never
    repair an existing violation.

This matches the paper's steps (1)-(2.e); consecutive sub-steps are fused
where one SQL statement covers several of them, which the paper explicitly
allows ("they can all be performed using SQL statements").
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.ecfd import ECFD, ECFDSet
from repro.core.schema import Value
from repro.core.violations import ViolationSet
from repro.detection.batch import BatchDetector
from repro.detection.database import ECFDDatabase
from repro.detection.encoding import AUX_TABLE, MACRO_TABLE
from repro.detection.sqlgen import (
    aux_columns,
    group_key_join,
    group_query,
    macro_query,
    mv_clear_statement,
    mv_set_statement,
    sv_update_statement,
)

__all__ = ["IncrementalDetector"]

#: Temporary table names used inside one update transaction.
_NEW_TIDS = "ecfd_tmp_new_tids"
_AFFECTED_GROUPS = "ecfd_tmp_affected"
_REGROUPED = "ecfd_tmp_regrouped"


class IncrementalDetector:
    """The INCDETECT algorithm, maintaining vio(D) across updates.

    The detector wraps a :class:`BatchDetector` for the initial state (the
    paper assumes the SV/MV flags and Aux(D) are initialised by a batch run)
    and then processes updates through :meth:`delete_tuples` /
    :meth:`insert_tuples`, each of which returns the violation set of the
    updated database.
    """

    def __init__(self, database: ECFDDatabase, sigma: ECFDSet | Sequence[ECFD]):
        self.database = database
        self._dialect = database.dialect
        self._q = database.dialect.quote_identifier
        self.batch = BatchDetector(database, sigma)
        self.sigma = self.batch.sigma
        self._initialized = False
        #: The maintained violation set, updated by *flag deltas*: each
        #: update probes only the flags that can have changed, never the
        #: whole table (see :meth:`delete_tuples` / :meth:`insert_tuples`).
        self._cached: ViolationSet | None = None
        #: Diagnostics of the most recent update's readback: ``op``,
        #: ``scanned`` (tids whose flags were probed — bounded by the
        #: maintained violation set, never |D|) and the delta size.
        self.last_readback: dict | None = None
        #: Full BATCHDETECT passes run (initialisation / re-initialisation
        #: after resets).  Updates never move it — the counter the repair
        #: strategies' zero-re-detection guarantee is asserted on.
        self.full_detect_count = 0

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def initialize(self) -> ViolationSet:
        """Run the initial batch detection (computes flags, Aux(D) and the macro rows)."""
        result = self.batch.detect()
        self.full_detect_count += 1
        self._initialized = True
        self._cached = result
        return result

    def _ensure_initialized(self) -> None:
        if not self._initialized:
            self.initialize()

    @property
    def initialized(self) -> bool:
        """Whether the maintained state (flags, Aux(D), macro rows) is current."""
        return self._initialized

    def reset(self) -> None:
        """Discard the maintained state; the next call re-runs the batch pass.

        Used after out-of-band changes to the data table (e.g. the engine
        façade applying a storage-only delta or reloading a repaired
        relation) that invalidate the SV / MV flags, Aux(D) and the macro
        rows.  The stale state is *cleared*, not merely marked dirty:
        readers that go straight to the flags or the per-pattern group
        counters (``flag_counts``, ``aux_rows``, the engine's per-constraint
        breakdown) would otherwise see the pre-update violation state mixed
        with the post-update data, so after a reset the database must look
        exactly like a fresh, never-detected store.  The SQL work only runs
        when there is maintained state to discard, keeping repeated resets
        (e.g. one per chunk during a chunked load) free.
        """
        if self._initialized:
            self.database.reset_flags()
            self.database.execute(f"DELETE FROM {self._q(AUX_TABLE)}")
            self.database.execute(f"DELETE FROM {self._q(MACRO_TABLE)}")
            self.database.commit()
        self._initialized = False
        self._cached = None
        self.last_readback = None

    def detect(self) -> ViolationSet:
        """The violation set of the current database, batch-initialising once.

        This gives INCDETECT the same no-argument ``detect()`` call
        convention as the other detectors: the first call runs the full
        BATCHDETECT pass (establishing the flags and Aux(D)); later calls
        read the incrementally maintained flags without recomputation.
        """
        if not self._initialized:
            return self.initialize()
        return self._current_violations()

    # ------------------------------------------------------------------
    # Shared steps
    # ------------------------------------------------------------------
    def _current_violations(self) -> ViolationSet:
        """The maintained violation set, without touching the data table.

        Served from the flag-delta cache when available; the full-table flag
        scan only runs as a defensive fallback (a fresh detector attached to
        a database whose flags were maintained elsewhere).
        """
        if self._cached is None:
            self._cached = self.database.violations()
        return self._cached

    #: IN-list chunk for the flag probes; far below any engine's variable cap.
    _PROBE_CHUNK = 400

    def _flag_dropped(self, tids: Sequence[int], flag: str) -> set[int]:
        """Of the given tids, those whose ``flag`` column is now 0.

        Chunked primary-key probes — cost is linear in ``len(tids)`` with no
        scan of the data table or the macro relation.
        """
        table = self._q(self.database.schema.name)
        column = self._q(flag)
        dropped: set[int] = set()
        for start in range(0, len(tids), self._PROBE_CHUNK):
            chunk = tids[start : start + self._PROBE_CHUNK]
            placeholders = ", ".join(self._dialect.placeholder for _ in chunk)
            dropped.update(
                tid
                for (tid,) in self.database.query(
                    f"SELECT tid FROM {table} "
                    f"WHERE {column} = 0 AND tid IN ({placeholders})",
                    list(chunk),
                )
            )
        return dropped

    def _fill_new_tids(self, tids: Sequence[int]) -> None:
        """(Re)create the ΔD tid temp table and fill it with ``tids``."""
        self.database.execute(self._dialect.drop_table(_NEW_TIDS))
        self.database.execute(
            self._dialect.create_temp_table(
                _NEW_TIDS, [f"tid {self._dialect.integer_type} PRIMARY KEY"]
            )
        )
        self.database.executemany(
            f"INSERT INTO {self._q(_NEW_TIDS)} (tid) "
            f"VALUES ({self._dialect.placeholder})",
            [(tid,) for tid in tids],
        )

    def _regroup_affected(self) -> None:
        """Re-derive the groups listed in the affected-groups temp table.

        The still/newly violating groups among them are written to the
        ``_REGROUPED`` temp table; the computation joins the macro relation
        down to the affected groups, so its cost is proportional to the
        number of tuples in those groups.
        """
        schema = self.database.schema
        source = (
            f"(SELECT m.* FROM {self._q(MACRO_TABLE)} m "
            f"JOIN {self._q(_AFFECTED_GROUPS)} g ON {group_key_join('m', 'g')}) AS affected_macro"
        )
        self.database.execute(self._dialect.drop_table(_REGROUPED))
        self.database.execute(
            self._dialect.create_temp_table_as(
                _REGROUPED, group_query(schema, source, dialect=self._dialect)
            )
        )

    def _aux_group_filter(self, groups_table: str, negate: bool = False) -> str:
        """An EXISTS filter testing Aux rows' membership in a groups temp table."""
        keyword = "NOT EXISTS" if negate else "EXISTS"
        return (
            f"{keyword} (SELECT 1 FROM {self._q(groups_table)} x "
            f"WHERE {group_key_join('x', self._q(AUX_TABLE))})"
        )

    # ------------------------------------------------------------------
    # Deletions
    # ------------------------------------------------------------------
    def delete_tuples(self, tids: Iterable[int]) -> ViolationSet:
        """Apply ΔD⁻ (a set of tuple identifiers) and repair vio(D)."""
        self._ensure_initialized()
        schema = self.database.schema
        tid_list = [int(tid) for tid in tids]

        self._fill_new_tids(tid_list)

        # Affected groups: the groups the deleted tuples belonged to.
        self.database.execute(self._dialect.drop_table(_AFFECTED_GROUPS))
        self.database.execute(
            self._dialect.create_temp_table_as(
                _AFFECTED_GROUPS,
                f"SELECT DISTINCT m.cid AS cid, m.xv_key AS xv_key "
                f"FROM {self._q(MACRO_TABLE)} m "
                f"WHERE m.tid IN (SELECT tid FROM {self._q(_NEW_TIDS)})",
            )
        )

        # Remove the deleted tuples from the data and from the macro relation.
        self.database.execute(
            f"DELETE FROM {self._q(MACRO_TABLE)} "
            f"WHERE tid IN (SELECT tid FROM {self._q(_NEW_TIDS)})"
        )
        self.database.delete_tuples(tid_list)

        # Re-derive the affected groups; drop auxiliary rows that stopped violating.
        self._regroup_affected()
        self.database.execute(
            f"DELETE FROM {self._q(AUX_TABLE)} "
            f"WHERE {self._aux_group_filter(_AFFECTED_GROUPS)} "
            f"AND {self._aux_group_filter(_REGROUPED, negate=True)}"
        )

        # Clear MV on flagged tuples that no longer belong to any violating group.
        self.database.execute(
            mv_clear_statement(schema, MACRO_TABLE, AUX_TABLE, dialect=self._dialect)
        )
        self.database.commit()

        # Delta readback: a deletion only ever *clears* flags — SV leaves
        # with the deleted tuples, and MV can flip 1 → 0 solely on tuples
        # the maintained set already lists as violating.  Probe exactly
        # those tids (primary-key lookups, chunked) for a dropped MV flag
        # and patch the maintained set — readback is bounded by |vio(D)|,
        # never by |D| or by the size of the affected groups.
        cached = self._current_violations()
        removed = set(tid_list)
        candidates = [tid for tid in cached.mv_tids if tid not in removed]
        cleared = self._flag_dropped(candidates, "MV")
        self._cached = ViolationSet.from_flags(
            sv_tids=set(cached.sv_tids) - removed,
            mv_tids=set(cached.mv_tids) - removed - cleared,
        )
        self.last_readback = {
            "op": "delete",
            "delta": len(tid_list),
            "scanned": len(candidates),
        }
        return self._cached

    # ------------------------------------------------------------------
    # Insertions
    # ------------------------------------------------------------------
    def insert_tuples(
        self, rows: Sequence[Mapping[str, Value]], tids: Sequence[int] | None = None
    ) -> ViolationSet:
        """Apply ΔD⁺ (new tuples) and repair vio(D); returns the new violation set.

        ``tids`` optionally pins the identifiers of the inserted tuples
        (it must align with ``rows``).  Shard-local detectors need this: a
        shard stores a *subset* of the relation, so fresh ``max(tid) + 1``
        identifiers assigned locally would diverge from the global tid
        sequence and break cross-shard violation-set merging.  Without
        ``tids`` the database assigns fresh identifiers as usual.
        """
        self._ensure_initialized()
        schema = self.database.schema
        new_tids = self.database.insert_tuples(rows, tids=tids)

        self._fill_new_tids(new_tids)
        new_tid_restriction = f"t.tid IN (SELECT tid FROM {self._q(_NEW_TIDS)})"

        # Single-tuple violations among the inserted tuples only.
        self.database.execute(
            sv_update_statement(
                schema, restriction=new_tid_restriction, dialect=self._dialect
            )
        )

        # Extend the macro relation with the new tuples' rows (a ΔD⁺-only scan).
        macro_columns = (
            ["cid", "tid"]
            + [self._q(name) for name in aux_columns(schema)]
            + ["xv_key", "yv_key"]
        )
        self.database.execute(
            f"INSERT INTO {self._q(MACRO_TABLE)} ({', '.join(macro_columns)})\n"
            f"{macro_query(schema, restriction=new_tid_restriction, dialect=self._dialect)}"
        )

        # Affected groups: the groups the new tuples belong to.
        self.database.execute(self._dialect.drop_table(_AFFECTED_GROUPS))
        self.database.execute(
            self._dialect.create_temp_table_as(
                _AFFECTED_GROUPS,
                f"SELECT DISTINCT m.cid AS cid, m.xv_key AS xv_key "
                f"FROM {self._q(MACRO_TABLE)} m "
                f"WHERE m.tid IN (SELECT tid FROM {self._q(_NEW_TIDS)})",
            )
        )

        # Re-derive the affected groups and merge them into Aux(D).
        self._regroup_affected()
        aux_insert_columns = (
            ["cid"] + [self._q(name) for name in aux_columns(schema)] + ["xv_key"]
        )
        self.database.execute(
            f"DELETE FROM {self._q(AUX_TABLE)} "
            f"WHERE {self._aux_group_filter(_REGROUPED)}"
        )
        self.database.execute(
            f"INSERT INTO {self._q(AUX_TABLE)} ({', '.join(aux_insert_columns)}) "
            f"SELECT {', '.join(aux_insert_columns)} FROM {self._q(_REGROUPED)}"
        )

        # Flag every tuple belonging to a (re)derived affected group.
        self.database.execute(
            mv_set_statement(schema, MACRO_TABLE, _REGROUPED, dialect=self._dialect)
        )
        self.database.commit()

        # Delta readback: an insertion sets SV only on the inserted tuples
        # and MV only on members of the re-derived affected groups (it can
        # never clear a flag).  Read those back and patch the maintained
        # set — never a whole-table flag scan.
        new_flag_rows = self.database.query(
            f"SELECT t.tid, t.SV FROM {self._q(schema.name)} t "
            f"JOIN {self._q(_NEW_TIDS)} n ON n.tid = t.tid"
        )
        flagged_rows = self.database.query(
            f"SELECT DISTINCT m.tid FROM {self._q(MACRO_TABLE)} m "
            f"JOIN {self._q(_REGROUPED)} r ON {group_key_join('m', 'r')}"
        )
        cached = self._current_violations()
        self._cached = ViolationSet.from_flags(
            sv_tids=set(cached.sv_tids) | {tid for tid, sv in new_flag_rows if sv},
            mv_tids=set(cached.mv_tids) | {tid for (tid,) in flagged_rows},
        )
        self.last_readback = {
            "op": "insert",
            "delta": len(new_tids),
            "scanned": len(new_flag_rows) + len(flagged_rows),
        }
        return self._cached

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def violations(self) -> ViolationSet:
        """The current violation set (from the maintained SV / MV flags)."""
        self._ensure_initialized()
        return self._current_violations()

    def fd_group_summary(self, fragments) -> "dict":
        """Embedded-FD group summaries of the stored data (see BatchDetector).

        Shares the batch detector's pushed-down scan; the maintained
        INCDETECT state is not consulted (summaries are emitted at shard
        bootstrap — afterwards the lanes emit *deltas* via
        :func:`repro.detection.summaries.summary_delta`).
        """
        return self.batch.fd_group_summary(fragments)

    def aux_rows(self) -> list[tuple]:
        """The current auxiliary relation contents."""
        return self.batch.aux_rows()

    def aux_size(self) -> int:
        """Number of violating ``(cid, p)`` groups currently in Aux(D).

        A single ``COUNT(*)`` over the auxiliary relation — cheap enough to
        poll after every update.  This is the memory INCDETECT carries
        between updates (besides the macro rows), so per-shard monitors and
        the sharded backend report it instead of guessing from violation
        counts.
        """
        [(count,)] = self.database.query(
            f"SELECT COUNT(*) FROM {self._q(AUX_TABLE)}"
        )
        return count

    def state_stats(self) -> dict[str, int]:
        """Size of the maintained state, as cheap ``COUNT(*)`` aggregates.

        Keys: ``tuples`` (data rows), ``aux_groups`` (violating groups in
        Aux(D)), ``macro_rows`` (materialised (tuple, constraint) LHS
        matches) and ``initialized`` (1 when the maintained state is
        current, 0 before the first batch pass or after a reset).  Used by
        the sharded backend's per-shard statistics and the docs examples.
        """
        [(macro,)] = self.database.query(
            f"SELECT COUNT(*) FROM {self._q(MACRO_TABLE)}"
        )
        return {
            "tuples": self.database.count(),
            "aux_groups": self.aux_size(),
            "macro_rows": macro,
            "initialized": int(self._initialized),
        }

    def violation_counts(self) -> dict[str, int]:
        """SV / MV / dirty row counts from the maintained flags."""
        self._ensure_initialized()
        return self.database.flag_counts()
