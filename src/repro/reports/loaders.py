"""Loaders: ``BENCH_<sha>.json`` artifacts and experiment-result JSON.

Everything downstream of these loaders (figure generators, the trajectory
report, the docs emitter) consumes one normalized row shape — the same
shape :meth:`repro.experiments.reporting.ExperimentResult.rows` produces::

    {"series": <label>, "parameter": <x>, "seconds": <y>, **extra}

so a figure can be fed indifferently from a benchmark artifact or from an
experiment driver's dumped sweep.

Tolerance policy: a *structurally broken* artifact (no ``benchmarks``
list, entries without names or means) raises :class:`ReportDataError`
with the file and the problems; everything else degrades gracefully —
unknown benchmark names are simply never selected, and missing
``extra_info`` readings fall back to the benchmark's parametrization or
drop an annotation.  An empty directory raises an actionable error that
says how to produce artifacts, because every caller downstream would
otherwise emit an empty report that *looks* like a measurement.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.experiments.reporting import ExperimentResult
from repro.reports.model import ReportDataError
from repro.reports.schema import artifact_sha, validate_benchmark_payload

__all__ = [
    "BenchEntry",
    "BenchRun",
    "load_bench_file",
    "load_bench_dirs",
    "load_experiment_file",
    "load_experiment_dir",
]

#: ``test_name[param]`` → (base, param).
_PARAMETRIZED = re.compile(r"^(?P<base>[^\[]+)(?:\[(?P<param>.*)\])?$")


def _as_number(value: object, default: float | None = None) -> float | None:
    """``value`` as a float when it is one (or parses as one), else ``default``."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return default
    return default


@dataclass
class BenchEntry:
    """One benchmark's readings inside an artifact."""

    name: str          #: full pytest id, e.g. ``test_fig8_...[4]``
    base: str          #: id without the parametrization
    param: str | None  #: the raw parametrization string, if any
    mean: float        #: mean seconds
    stddev: float
    rounds: int
    extra: dict[str, object] = field(default_factory=dict)

    def number(self, key: str, default: float | None = None) -> float | None:
        """A numeric ``extra_info`` reading, ``default`` when absent/non-numeric."""
        return _as_number(self.extra.get(key), default)

    def parameter(self, prefer: Sequence[str] = ()) -> float:
        """The entry's x value: a preferred ``extra_info`` field, else its param."""
        for key in prefer:
            value = self.number(key)
            if value is not None:
                return value
        return _as_number(self.param, 0.0) or 0.0


@dataclass
class BenchRun:
    """One parsed ``BENCH_<sha>.json`` artifact."""

    sha: str
    date: str  #: ISO timestamp of the measured commit (falls back to run time)
    path: Path
    entries: dict[str, BenchEntry] = field(default_factory=dict)

    @property
    def short_sha(self) -> str:
        return self.sha[:7]

    def entry(self, name: str) -> BenchEntry | None:
        return self.entries.get(name)

    def parametrized(self, base: str) -> list[BenchEntry]:
        """All entries of one benchmark family, in numeric-aware param order."""
        found = [e for e in self.entries.values() if e.base == base]

        def order(entry: BenchEntry) -> tuple[float, str]:
            numeric = _as_number(entry.param)
            return (numeric if numeric is not None else float("inf"), entry.param or "")

        return sorted(found, key=order)

    def rows(self, base: str, label: str | None = None,
             prefer: Sequence[str] = ()) -> list[dict[str, object]]:
        """The family's entries as normalized rows (see module docstring)."""
        rows: list[dict[str, object]] = []
        for entry in self.parametrized(base):
            row: dict[str, object] = {
                "series": label if label is not None else base,
                "parameter": entry.parameter(prefer),
                "seconds": entry.mean,
            }
            row.update(entry.extra)
            rows.append(row)
        return rows


def load_bench_file(path: Path | str, sha: str | None = None) -> BenchRun:
    """Parse and validate one artifact file.

    The commit sha comes from the payload's ``commit_info.id`` when
    present, else the ``BENCH_<sha>.json`` filename, else the explicit
    ``sha`` argument — in that priority order (the payload is
    self-describing; the filename is the CI convention).
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ReportDataError(f"{path}: unreadable benchmark artifact ({error})") from error
    problems = validate_benchmark_payload(payload)
    if problems:
        listed = "; ".join(problems[:5]) + ("; ..." if len(problems) > 5 else "")
        raise ReportDataError(f"{path}: not a pytest-benchmark payload ({listed})")

    commit_info = payload.get("commit_info") or {}
    resolved_sha = commit_info.get("id") or artifact_sha(path.name) or sha or "unknown"
    date = commit_info.get("time") or payload.get("datetime") or ""
    run = BenchRun(sha=str(resolved_sha), date=str(date), path=path)
    for raw in payload["benchmarks"]:
        match = _PARAMETRIZED.match(raw["name"])
        base = match.group("base") if match else raw["name"]
        param = match.group("param") if match else None
        stats = raw["stats"]
        run.entries[raw["name"]] = BenchEntry(
            name=raw["name"],
            base=base,
            param=param,
            mean=float(stats["mean"]),
            stddev=float(_as_number(stats.get("stddev"), 0.0) or 0.0),
            rounds=int(_as_number(stats.get("rounds"), 0) or 0),
            extra=dict(raw.get("extra_info") or {}),
        )
    return run


def load_bench_dirs(directories: Iterable[Path | str]) -> list[BenchRun]:
    """Every ``BENCH_*.json`` under the given directories, oldest first.

    Runs are ordered by (commit date, sha) so the trajectory reads
    left-to-right in history order; when the same sha appears in several
    directories the last one loaded wins (a fresh CI artifact overrides a
    committed copy of the same commit).
    """
    paths: list[Path] = []
    searched: list[str] = []
    for directory in directories:
        directory = Path(directory)
        searched.append(str(directory))
        if directory.is_file():
            paths.append(directory)
            continue
        if directory.is_dir():
            paths.extend(sorted(directory.glob("BENCH_*.json")))
    if not paths:
        raise ReportDataError(
            "no BENCH_*.json artifacts found in: " + ", ".join(searched) + ".\n"
            "Produce one with:\n"
            "  PYTHONPATH=src python -m pytest benchmarks -q "
            "--benchmark-json BENCH_$(git rev-parse HEAD).json\n"
            "or point --bench-dir at a directory of CI artifacts "
            "(the committed history lives in benchmarks/artifacts/)."
        )
    by_sha: dict[str, BenchRun] = {}
    for path in paths:
        run = load_bench_file(path)
        by_sha[run.sha] = run
    return sorted(by_sha.values(), key=lambda run: (run.date, run.sha))


def load_experiment_file(path: Path | str) -> ExperimentResult:
    """One ``run_all --json-out`` dump, as an :class:`ExperimentResult`."""
    path = Path(path)
    try:
        return ExperimentResult.from_json(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ReportDataError(f"{path}: unreadable experiment result ({error})") from error


def load_experiment_dir(directory: Path | str) -> dict[str, ExperimentResult]:
    """Every ``*.json`` experiment dump in a directory, keyed by experiment id.

    Unlike the benchmark loader an empty (or missing) directory is fine —
    experiment sweeps are an optional enrichment over the artifacts.
    """
    directory = Path(directory)
    results: dict[str, ExperimentResult] = {}
    if not directory.is_dir():
        return results
    for path in sorted(directory.glob("*.json")):
        result = load_experiment_file(path)
        results[result.experiment_id] = result
    return results
