"""The shared schema of ``BENCH_<sha>.json`` benchmark artifacts.

CI's ``perf`` job runs the benchmark suite with ``--benchmark-json`` and
uploads the resulting pytest-benchmark payload as ``BENCH_<sha>.json``.
Three consumers read those files and must agree on their shape:

* :mod:`benchmarks.check_regression <benchmarks>` — the perf gate
  (``benchmarks/check_regression.py`` imports this module);
* :mod:`repro.reports.loaders` — the figure registry's artifact loader;
* :mod:`repro.reports.trajectory` — the cross-commit perf report over the
  committed artifacts in ``benchmarks/artifacts/``.

This module is that agreement: the artifact filename convention, the
minimal required payload shape, and the tracked hot paths (with their
human descriptions, so the generated documentation tables and the gate
version together).
"""

from __future__ import annotations

import re
from typing import Any

__all__ = [
    "ARTIFACT_PATTERN",
    "TRACKED_BENCHMARKS",
    "OPTIONAL_BENCHMARK_REQUIRES",
    "EXTRA_INFO_FIELDS",
    "artifact_sha",
    "validate_benchmark_payload",
]

#: Artifact filename convention: ``BENCH_<git sha>.json`` (7-40 hex chars).
ARTIFACT_PATTERN = re.compile(r"^BENCH_(?P<sha>[0-9a-f]{7,40})\.json$")

#: The hot paths tracked by the perf gate and plotted by the trajectory
#: report, with the description shown in the generated documentation
#: tables.  Order is the presentation order.
TRACKED_BENCHMARKS: dict[str, str] = {
    "test_fig8_sharded_batch_detect_scaling[1]": (
        "single-threaded BATCHDETECT `detect()` at `REPRO_BENCH_SIZE` "
        "(Figs. 5–7 workhorse)"
    ),
    "test_fig9_sharded_incremental_update[1]": (
        "single-threaded INCDETECT `apply_update()` of a 2% batch "
        "(the incremental update path)"
    ),
    "test_fig10_repair_convergence[incremental]": (
        "full repair of the 5%-noise dataset re-validated by INCDETECT "
        "deltas only (the repair path)"
    ),
    "test_fig11_service_sustained_throughput[1]": (
        "the always-on service draining a Poisson update stream through "
        "admission + coalescing + the pump into INCDETECT "
        "(the streaming-serving path)"
    ),
    "test_fig13_duckdb_batch_detect": (
        "BATCHDETECT `detect()` at `REPRO_BENCH_SIZE` on the DuckDB "
        "columnar engine (the cross-engine path; requires the optional "
        "`duckdb` extra)"
    ),
}

#: Tracked hot paths that depend on an optional package.  The perf gate
#: *skips* (never fails) these entries when they are absent from a run —
#: the core CI jobs stay dependency-free and only the ``engines`` job
#: produces them.  A baseline entry for one of these may carry
#: ``"mean": null`` (provisional: reported but not timing-compared) until a
#: baseline is regenerated on a runner with the package installed.
OPTIONAL_BENCHMARK_REQUIRES: dict[str, str] = {
    "test_fig13_duckdb_batch_detect": "duckdb",
}

#: Where each benchmark family writes its ``extra_info`` readings.  Keys are
#: benchmark-name prefixes; values the fields the reports layer consumes.
#: Loaders treat every field as optional — a missing reading degrades the
#: figure (an annotation is dropped), it never crashes the render.
EXTRA_INFO_FIELDS: dict[str, tuple[str, ...]] = {
    "test_fig5": ("tuples", "noise_percent", "tableau_size", "dirty"),
    "test_fig6": ("tuples", "noise_percent", "tableau_size", "update_size", "dirty"),
    "test_fig7a": ("update_fraction", "update_size", "dirty"),
    "test_fig7b": ("update_size", "sv_before", "mv_before", "sv_after", "mv_after"),
    "test_fig8": (
        "workers", "tuples", "replication_factor", "summary_bytes",
        "summary_groups", "speedup_vs_serial",
    ),
    "test_fig9": (
        "workers", "tuples", "update_size", "readback_tids",
        "summary_groups_touched",
    ),
    "test_fig10": (
        "strategy", "tuples", "rounds", "cells_changed", "full_detects",
        "redetect_rows_avoided",
    ),
    "test_fig11": (
        "workers", "tuples", "updates_per_second", "p99_latency_ms",
        "mean_latency_ms", "ships", "shipped_batches", "coalesced_away",
    ),
    "test_fig13": (
        "engine", "tuples", "dirty", "sqlite_seconds", "duckdb_seconds",
        "speedup_vs_sqlite",
    ),
    "test_ablation_sql": ("tableau_size", "dirty"),
    "test_ablation_naive": ("tableau_size", "dirty"),
    "test_ablation_maxss": ("sigma_size", "exact_optimum", "approx_cardinality", "ratio"),
}


def artifact_sha(filename: str) -> str | None:
    """The commit sha encoded in an artifact filename, or ``None``."""
    match = ARTIFACT_PATTERN.match(filename)
    return match.group("sha") if match else None


def validate_benchmark_payload(payload: Any) -> list[str]:
    """Structural problems in a parsed ``BENCH_*.json`` payload.

    Returns an empty list when the payload has the minimal shape every
    consumer relies on: a mapping with a ``benchmarks`` list whose entries
    each carry a string ``name`` and a ``stats`` mapping with a numeric
    ``mean``.  Everything else (``extra_info``, ``commit_info``,
    ``datetime``, ...) is optional by design — old artifacts stay loadable.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected a JSON object"]
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        return ["payload has no 'benchmarks' list"]
    for index, entry in enumerate(benchmarks):
        where = f"benchmarks[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: entry is {type(entry).__name__}, expected an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing benchmark 'name'")
        else:
            where = f"benchmarks[{index}] ({name})"
        stats = entry.get("stats")
        if not isinstance(stats, dict):
            problems.append(f"{where}: missing 'stats' object")
        elif not isinstance(stats.get("mean"), (int, float)):
            problems.append(f"{where}: stats.mean missing or non-numeric")
        extra = entry.get("extra_info")
        if extra is not None and not isinstance(extra, dict):
            problems.append(f"{where}: extra_info is {type(extra).__name__}, expected an object")
    return problems
