"""Error paths of the TCP skin: bad frames, dead peers, reply deadlines.

The fix under test: ``QualityClient.request`` used to wait forever on a
dead or wedged server.  Every request now carries a reply deadline that
raises the typed :class:`~repro.exceptions.ServiceTimeoutError`; the server
side gets the matching hardening — malformed JSON answers an error reply,
an oversized line answers then closes (the stream cannot be resynchronised
past it), and a client vanishing mid-request never takes the server down.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.schema import cust_ext_schema
from repro.datagen.workload import paper_workload
from repro.exceptions import ReproError, ServiceTimeoutError
from repro.service import QualityClient, QualityServer, QualityService
from repro.service.server import DEFAULT_MAX_LINE, DEFAULT_REQUEST_TIMEOUT

SCHEMA = cust_ext_schema()


def _service():
    return QualityService(SCHEMA, paper_workload(SCHEMA), workers=1)


class TestServerErrorPaths:
    def test_malformed_json_line_gets_an_error_reply_not_a_dead_server(self):
        async def scenario():
            async with _service() as service:
                async with QualityServer(service) as server:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    writer.write(b"{not json at all\n")
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["ok"] is False
                    # Same connection, next request: fully functional.
                    writer.write(b'{"op": "ping"}\n')
                    await writer.drain()
                    assert json.loads(await reader.readline()) == {
                        "ok": True,
                        "pong": True,
                    }
                    # A JSON line that is not an object is a request error too.
                    writer.write(b"[1, 2, 3]\n")
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["ok"] is False and "object" in reply["error"]
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())

    def test_oversized_line_is_answered_then_the_connection_closes(self):
        async def scenario():
            async with _service() as service:
                async with QualityServer(service, max_line=1024) as server:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    huge = b'{"op": "ping", "pad": "' + b"x" * 4096 + b'"}\n'
                    writer.write(huge)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["ok"] is False
                    assert "1024" in reply["error"]
                    # Past an oversized line the stream cannot be re-framed;
                    # the server closes rather than guess.
                    assert await reader.read() == b""
                    writer.close()
                    # ...but fresh connections are served as usual.
                    async with QualityClient("127.0.0.1", server.port) as client:
                        assert (await client.request("ping"))["pong"] is True

        asyncio.run(scenario())

    def test_default_line_bound_is_generous(self):
        assert DEFAULT_MAX_LINE == 8 * 1024 * 1024

    def test_disconnect_mid_request_leaves_the_server_serving(self):
        async def scenario():
            async with _service() as service:
                async with QualityServer(service) as server:
                    # Half a request, then gone — no newline ever arrives.
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    writer.write(b'{"op": "detect"')
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()
                    # The torn connection is not a request and kills nothing.
                    async with QualityClient("127.0.0.1", server.port) as client:
                        assert (await client.request("ping"))["pong"] is True
                    assert server.connections == 2

        asyncio.run(scenario())


class TestClientTimeout:
    def test_dead_server_raises_a_typed_timeout_not_a_hang(self):
        async def swallow(reader, writer):
            await reader.read()  # accept, read, never reply

        async def scenario():
            server = await asyncio.start_server(swallow, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = QualityClient("127.0.0.1", port, request_timeout=0.2)
            await client.connect()
            with pytest.raises(ServiceTimeoutError, match="within 0.2s"):
                await client.request("ping")
            # The timed-out connection is closed: a late reply must never be
            # read as the answer to a later request.
            assert client._writer is None
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_per_call_timeout_overrides_the_client_default(self):
        async def swallow(reader, writer):
            await reader.read()

        async def scenario():
            server = await asyncio.start_server(swallow, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = QualityClient("127.0.0.1", port)  # default 30s
            await client.connect()
            with pytest.raises(ServiceTimeoutError, match="within 0.1s"):
                await client.request("ping", timeout=0.1)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_timeout_error_is_both_typed_and_a_timeout(self):
        # Callers can catch it as the library's error or as TimeoutError.
        assert issubclass(ServiceTimeoutError, ReproError)
        assert issubclass(ServiceTimeoutError, TimeoutError)
        assert DEFAULT_REQUEST_TIMEOUT == 30.0

    def test_real_requests_finish_well_inside_the_deadline(self):
        async def scenario():
            async with _service() as service:
                async with QualityServer(service) as server:
                    async with QualityClient(
                        "127.0.0.1", server.port, request_timeout=10.0
                    ) as client:
                        tids = await client.update(
                            insert_rows=[
                                {a: "x" for a in SCHEMA.attribute_names}
                            ]
                        )
                        assert len(tids) == 1
                        counts = await client.detect()
                        assert counts["tuples"] == 1

        asyncio.run(scenario())
