"""eCFD discovery from data samples (paper future work, Section VIII)."""

from repro.discovery.discover import (
    DiscoveredPattern,
    DiscoveryResult,
    discover_ecfd,
    discover_patterns,
)

__all__ = ["DiscoveredPattern", "DiscoveryResult", "discover_ecfd", "discover_patterns"]
