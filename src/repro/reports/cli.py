"""``python -m repro.reports`` — one command from BENCH artifacts to figures.

Commands::

    python -m repro.reports list                      # registry contents
    python -m repro.reports all [--only fig8 growth]  # every (selected) figure
    python -m repro.reports fig10                     # one figure by name
    python -m repro.reports docs [--check]            # (re)generate doc tables

``all`` and single-figure runs read ``BENCH_*.json`` artifacts (default:
the committed history in ``benchmarks/artifacts/``; override with
``--bench-dir``, repeatable) plus optional experiment sweeps
(``--experiments-dir``, produced by ``run_all --json-out``) and write SVG
renders into ``--out`` (default ``docs/figures/``).  When run against the
default committed artifacts, ``all`` also refreshes the generated tables
inside ``README.md`` / ``docs/PERFORMANCE.md`` — the docs tables are
pinned to committed inputs so the staleness check stays deterministic;
against a fresh ``--bench-dir`` only the figures are written.

No benchmarks are ever (re)run here: reporting is a pure function of the
artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.reports import docs_sync
from repro.reports.context import DEFAULT_BENCH_DIR, ReportContext, repo_root
from repro.reports.model import ReportError
from repro.reports.registry import available_figures, resolve_figure, select_figures
from repro.reports.render import png_available, render_png, render_svg

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reports",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("command",
                        help="'all', 'list', 'docs', or a registered figure name")
    parser.add_argument("--bench-dir", action="append", type=Path, default=None,
                        metavar="DIR",
                        help="directory of BENCH_*.json artifacts (repeatable; "
                             f"default: {DEFAULT_BENCH_DIR})")
    parser.add_argument("--experiments-dir", type=Path, default=None, metavar="DIR",
                        help="directory of run_all --json-out experiment dumps")
    parser.add_argument("--out", type=Path, default=None, metavar="DIR",
                        help=f"output directory for renders (default: {docs_sync.FIGURES_DIR})")
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        help="restrict 'all' to figure or group names (repeatable)")
    parser.add_argument("--png", action="store_true",
                        help="also write PNG renders (needs matplotlib)")
    parser.add_argument("--check", action="store_true",
                        help="with 'docs': report staleness instead of rewriting")
    return parser


def _render_specs(specs, ctx: ReportContext, out: Path, png: bool) -> int:
    out.mkdir(parents=True, exist_ok=True)
    written = skipped = 0
    png_possible = png_available()
    if png and not png_possible:
        print("note: --png skipped (matplotlib is not installed); SVG renders "
              "carry the same figures", file=sys.stderr)
    for spec in specs:
        try:
            figures = spec.generator(ctx)
        except ReportError as error:
            print(f"skipped {spec.name}: {error}", file=sys.stderr)
            skipped += 1
            continue
        for figure in figures:
            path = out / f"{figure.name}.svg"
            path.write_text(render_svg(figure), encoding="utf-8")
            print(f"wrote {path}")
            written += 1
            if png and png_possible:
                png_path = out / f"{figure.name}.png"
                render_png(figure, str(png_path))
                print(f"wrote {png_path}")
    if written == 0:
        print("error: no figure could be rendered from the given artifacts",
              file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    root = repo_root()

    try:
        if args.command == "list":
            print(f"{'figure':<20} {'group':<12} title")
            print(f"{'-' * 20} {'-' * 12} {'-' * 40}")
            for spec in available_figures().values():
                print(f"{spec.name:<20} {spec.group:<12} {spec.title}")
            return 0

        if args.command == "docs":
            if args.check:
                problems = docs_sync.check_stale(root)
                for problem in problems:
                    print(f"STALE  {problem}", file=sys.stderr)
                return 1 if problems else 0
            for changed in docs_sync.write_docs(root):
                print(f"updated {changed}")
            print("docs are fresh")
            return 0

        using_default_artifacts = args.bench_dir is None
        ctx = ReportContext.load(
            bench_dirs=args.bench_dir,
            experiments_dir=args.experiments_dir,
        )
        out = args.out if args.out is not None else root / docs_sync.FIGURES_DIR

        if args.command == "all":
            specs = select_figures(args.only)
            status = _render_specs(specs, ctx, out, args.png)
            if status == 0 and using_default_artifacts and args.only is None:
                for changed in docs_sync.write_docs(root):
                    print(f"updated {changed}")
            elif not using_default_artifacts:
                print("note: docs tables are pinned to the committed "
                      f"{DEFAULT_BENCH_DIR}; run 'python -m repro.reports docs' "
                      "to refresh them", file=sys.stderr)
            return status

        spec = resolve_figure(args.command)
        return _render_specs([spec], ctx, out, args.png)
    except ReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
