"""Serialization round-trip tests for the engine result dataclasses."""

import json

from repro.core import ViolationSet
from repro.core.schema import cust_ext_schema
from repro.datagen import DatasetGenerator, paper_workload
from repro.engine import DataQualityEngine, DetectionResult, QualityReport, RepairResult


def roundtrip(obj, cls):
    """to_dict → JSON → from_dict; returns the reconstructed object."""
    payload = json.dumps(obj.to_dict())
    return cls.from_dict(json.loads(payload))


class TestDetectionResult:
    def make(self, **overrides) -> DetectionResult:
        violations = ViolationSet.from_flags(sv_tids=[1, 4], mv_tids=[2, 3, 4])
        fields = dict(
            backend="batch",
            violations=violations,
            tuple_count=10,
            seconds=0.125,
            apply_seconds=0.5,
            incremental=True,
            per_constraint={1: {"sv": 2, "mv_groups": 1, "mv_tuples": 3}},
        )
        fields.update(overrides)
        return DetectionResult.from_violations(**fields)

    def test_counts_derived_from_violations(self):
        result = self.make()
        assert (result.sv_count, result.mv_count, result.dirty_count) == (2, 3, 4)
        assert not result.clean
        assert result.dirty_ratio == 0.4

    def test_json_round_trip_is_equal(self):
        result = self.make()
        rebuilt = roundtrip(result, DetectionResult)
        assert rebuilt == result
        assert rebuilt.violations == result.violations
        assert rebuilt.per_constraint[1]["mv_tuples"] == 3  # int keys restored

    def test_empty_result_is_clean(self):
        result = DetectionResult.from_violations(
            backend="naive", violations=ViolationSet(), tuple_count=0, seconds=0.0
        )
        assert result.clean and result.dirty_ratio == 0.0
        assert roundtrip(result, DetectionResult) == result


class TestRepairResult:
    def make(self) -> RepairResult:
        return RepairResult(
            backend="batch",
            clean=True,
            cells_changed=3,
            tuples_changed=2,
            cost=3.0,
            rounds=1,
            seconds=0.01,
            changes=(
                {"tid": 1, "attribute": "AC", "before": "718", "after": "518"},
                {"tid": 2, "attribute": "CT", "before": "LI", "after": "NYC"},
            ),
            relation=object(),  # must not affect equality or serialization
        )

    def test_json_round_trip_is_equal(self):
        result = self.make()
        rebuilt = roundtrip(result, RepairResult)
        assert rebuilt == result
        assert rebuilt.relation is None
        assert rebuilt.changes[0]["attribute"] == "AC"

    def test_relation_excluded_from_dict(self):
        assert "relation" not in self.make().to_dict()


class TestQualityReport:
    def test_json_round_trip_through_live_engine(self):
        schema = cust_ext_schema()
        with DataQualityEngine(schema, paper_workload(schema), backend="batch") as engine:
            engine.load(DatasetGenerator(seed=0).generate_rows(150, 5.0))
            report = engine.report()
        rebuilt = roundtrip(report, QualityReport)
        assert rebuilt == report
        assert rebuilt.detection.violations == report.detection.violations
        assert rebuilt.dirty_ratio == report.dirty_ratio

    def test_report_dict_is_json_serializable_with_nested_detection(self):
        schema = cust_ext_schema()
        with DataQualityEngine(schema, paper_workload(schema), backend="naive") as engine:
            engine.load(DatasetGenerator(seed=0).generate_rows(60, 5.0))
            payload = engine.report().to_dict()
        text = json.dumps(payload)
        decoded = json.loads(text)
        assert decoded["schema_name"] == schema.name
        assert decoded["detection"]["backend"] == "naive"
        assert isinstance(decoded["detection"]["sv_tids"], list)
