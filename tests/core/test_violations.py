"""Unit tests for violation records and violation sets (repro.core.violations)."""

from repro.core.violations import (
    MultiTupleViolation,
    SingleTupleViolation,
    ViolationSet,
)


class TestViolationSet:
    def test_empty_set_is_clean(self):
        vset = ViolationSet()
        assert vset.is_clean()
        assert len(vset) == 0
        assert vset.violating_tids == frozenset()
        assert vset.summary() == {"sv": 0, "mv": 0, "dirty": 0}

    def test_single_violation_sets_sv(self):
        vset = ViolationSet()
        vset.add_single(SingleTupleViolation(tid=3, constraint_id=1, attribute="AC"))
        assert vset.sv_tids == frozenset({3})
        assert vset.mv_tids == frozenset()
        assert 3 in vset
        assert not vset.is_clean()
        assert vset.single_records[0].attribute == "AC"

    def test_multi_violation_sets_mv_for_all_group_members(self):
        vset = ViolationSet()
        vset.add_multi(
            MultiTupleViolation(constraint_id=1, lhs_values=("Troy",), tids=frozenset({1, 2}))
        )
        assert vset.mv_tids == frozenset({1, 2})
        assert vset.violating_tids == frozenset({1, 2})
        assert vset.summary() == {"sv": 0, "mv": 2, "dirty": 2}

    def test_from_flags(self):
        vset = ViolationSet.from_flags(sv_tids=[1, 2], mv_tids=[2, 3])
        assert vset.sv_tids == frozenset({1, 2})
        assert vset.mv_tids == frozenset({2, 3})
        assert vset.violating_tids == frozenset({1, 2, 3})
        assert len(vset) == 3

    def test_equality_is_flag_based(self):
        detailed = ViolationSet(
            single=[SingleTupleViolation(tid=1, constraint_id=9, attribute="AC")],
            multi=[MultiTupleViolation(constraint_id=9, lhs_values=("x",), tids=frozenset({2, 3}))],
        )
        flags_only = ViolationSet.from_flags(sv_tids=[1], mv_tids=[2, 3])
        assert detailed == flags_only
        assert hash(detailed) == hash(flags_only)
        assert detailed != ViolationSet.from_flags(sv_tids=[1], mv_tids=[2])

    def test_merge(self):
        left = ViolationSet.from_flags(sv_tids=[1], mv_tids=[])
        right = ViolationSet.from_flags(sv_tids=[], mv_tids=[2])
        merged = left.merge(right)
        assert merged.sv_tids == frozenset({1})
        assert merged.mv_tids == frozenset({2})
        # Merge does not mutate the operands.
        assert left.mv_tids == frozenset()
        assert right.sv_tids == frozenset()

    def test_iteration_is_sorted(self):
        vset = ViolationSet.from_flags(sv_tids=[5, 1], mv_tids=[3])
        assert list(vset) == [1, 3, 5]

    def test_dirty_counts_tuple_once_for_both_flags(self):
        vset = ViolationSet.from_flags(sv_tids=[1], mv_tids=[1])
        assert vset.summary() == {"sv": 1, "mv": 1, "dirty": 1}
