"""A complete data-cleaning pipeline on a synthetic customer/order dataset.

The scenario the paper's introduction motivates: a customer database with
geographic and purchase attributes accumulates errors, and a set of eCFDs
expressing the real-life semantics (area codes per city, zip/city bindings,
item types, price bands) is used to find and then fix them.

The whole lifecycle runs through the :class:`~repro.engine.DataQualityEngine`
façade:

1. validate the constraint set (satisfiability analysis of Section III);
2. generate a noisy dataset with the Section VI generator and load it;
3. detect all violations with BATCHDETECT on SQLite;
4. repair the data with the greedy value-modification repairer;
5. report the resulting quality state.

Run with::

    python examples/data_cleaning_pipeline.py
"""

from repro import DataQualityEngine, cust_ext_schema
from repro.datagen import DatasetGenerator, paper_workload


def main() -> None:
    schema = cust_ext_schema()
    sigma = paper_workload(schema)

    engine = DataQualityEngine(schema, sigma, backend="batch")
    print(f"Workload: {len(sigma)} eCFDs, {sigma.pattern_count()} pattern constraints")
    print(f"Constraint set is satisfiable: {engine.validate()}\n")

    generator = DatasetGenerator(seed=42)
    loaded = engine.load(generator.generate(2_000, noise_percent=5.0))
    print(f"Generated and loaded {loaded} tuples with 5% injected noise")

    result = engine.detect()
    print("\nBATCHDETECT results:")
    print(f"  single-tuple violations (SV): {result.sv_count}")
    print(f"  multi-tuple violations  (MV): {result.mv_count}")
    print(f"  dirty tuples in vio(D):       {result.dirty_count}")

    print("\nRepairing with greedy value modification ...")
    repair = engine.repair(max_rounds=15)
    print(f"  changed cells: {repair.cells_changed} (cost {repair.cost}) "
          f"across {repair.tuples_changed} tuples in {repair.rounds} rounds")
    print(f"  repaired data is clean: {repair.clean}")

    report = engine.report()
    print("\nQuality report after repair:")
    print(f"  backend={report.backend}, tuples={report.tuple_count}, "
          f"dirty_ratio={report.dirty_ratio:.4f}")
    engine.close()


if __name__ == "__main__":
    main()
