"""Unit tests for the pattern language (repro.core.patterns)."""

import pytest

from repro.core.patterns import (
    WILDCARD,
    ComplementSet,
    ValueSet,
    Wildcard,
    constant,
    pattern_from_literal,
)
from repro.core.schema import Domain
from repro.exceptions import PatternError


class TestMatching:
    """The ≍ relation of Section II."""

    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches("NYC")
        assert WILDCARD.matches(42)
        assert WILDCARD.matches("")

    def test_value_set_matches_members_only(self):
        pattern = ValueSet(["Albany", "Troy"])
        assert pattern.matches("Albany")
        assert pattern.matches("Troy")
        assert not pattern.matches("NYC")

    def test_complement_set_matches_non_members(self):
        pattern = ComplementSet(["NYC", "LI"])
        assert pattern.matches("Albany")
        assert not pattern.matches("NYC")
        assert not pattern.matches("LI")

    def test_paper_example_t1_t4(self):
        """t1[CT]=Albany matches {NYC,LI}̄ ; t4[CT]=NYC does not (Section II)."""
        pattern = ComplementSet(["NYC", "LI"])
        assert pattern.matches("Albany")
        assert not pattern.matches("NYC")


class TestConstruction:
    def test_empty_sets_rejected(self):
        with pytest.raises(PatternError):
            ValueSet([])
        with pytest.raises(PatternError):
            ComplementSet([])

    def test_non_scalar_values_rejected(self):
        with pytest.raises(PatternError):
            ValueSet([("tuple",)])

    def test_constant_is_singleton_set(self):
        pattern = constant("518")
        assert isinstance(pattern, ValueSet)
        assert pattern.constants() == frozenset({"518"})

    def test_pattern_from_literal(self):
        assert isinstance(pattern_from_literal("_"), Wildcard)
        assert isinstance(pattern_from_literal(None), Wildcard)
        assert pattern_from_literal("NYC") == constant("NYC")
        assert pattern_from_literal({"a", "b"}) == ValueSet(["a", "b"])
        assert pattern_from_literal(ValueSet(["x"])) == ValueSet(["x"])
        with pytest.raises(PatternError):
            pattern_from_literal(3.14)


class TestConstants:
    def test_constants_reported(self):
        assert WILDCARD.constants() == frozenset()
        assert ValueSet(["a", "b"]).constants() == frozenset({"a", "b"})
        assert ComplementSet(["a"]).constants() == frozenset({"a"})


class TestSubsumption:
    def test_wildcard_subsumes_everything(self):
        assert WILDCARD.subsumes(ValueSet(["a"]))
        assert WILDCARD.subsumes(ComplementSet(["a"]))
        assert WILDCARD.subsumes(WILDCARD)

    def test_value_set_subsumption(self):
        big = ValueSet(["a", "b", "c"])
        small = ValueSet(["a", "b"])
        assert big.subsumes(small)
        assert not small.subsumes(big)
        assert not small.subsumes(WILDCARD)

    def test_complement_subsumes_disjoint_set(self):
        comp = ComplementSet(["NYC", "LI"])
        assert comp.subsumes(ValueSet(["Albany"]))
        assert not comp.subsumes(ValueSet(["NYC", "Albany"]))

    def test_complement_subsumes_larger_complement(self):
        assert ComplementSet(["a"]).subsumes(ComplementSet(["a", "b"]))
        assert not ComplementSet(["a", "b"]).subsumes(ComplementSet(["a"]))


class TestIntersection:
    def test_wildcard_is_identity(self):
        pattern = ValueSet(["a"])
        assert WILDCARD.intersect(pattern) == pattern
        assert pattern.intersect(WILDCARD) == pattern

    def test_set_set_intersection(self):
        left = ValueSet(["a", "b"])
        right = ValueSet(["b", "c"])
        assert left.intersect(right) == ValueSet(["b"])
        assert ValueSet(["a"]).intersect(ValueSet(["b"])) is None

    def test_set_complement_intersection(self):
        values = ValueSet(["a", "b"])
        comp = ComplementSet(["b"])
        assert values.intersect(comp) == ValueSet(["a"])
        assert comp.intersect(values) == ValueSet(["a"])
        assert ValueSet(["b"]).intersect(ComplementSet(["b"])) is None

    def test_complement_complement_intersection(self):
        assert ComplementSet(["a"]).intersect(ComplementSet(["b"])) == ComplementSet(["a", "b"])

    def test_intersection_soundness_samples(self):
        """Any value matching the intersection matches both operands."""
        left = ValueSet(["a", "b", "c"])
        right = ComplementSet(["b"])
        both = left.intersect(right)
        assert both is not None
        for value in ["a", "b", "c", "d"]:
            if both.matches(value):
                assert left.matches(value) and right.matches(value)


class TestAdmitsAndPick:
    def test_admits_infinite_domain(self):
        domain = Domain("string")
        assert WILDCARD.admits(domain)
        assert ValueSet(["x"]).admits(domain)
        assert ComplementSet(["x"]).admits(domain)

    def test_admits_finite_domain(self):
        domain = Domain("bool", frozenset(["T", "F"]))
        assert ValueSet(["T"]).admits(domain)
        assert not ValueSet(["Z"]).admits(domain)
        assert ComplementSet(["T"]).admits(domain)
        assert not ComplementSet(["T", "F"]).admits(domain)

    def test_pick_returns_matching_value(self):
        domain = Domain("string")
        for pattern in [WILDCARD, ValueSet(["a", "b"]), ComplementSet(["a"])]:
            value = pattern.pick(domain)
            assert value is not None
            assert pattern.matches(value)

    def test_pick_respects_avoid_when_possible(self):
        domain = Domain("string")
        value = ValueSet(["a", "b"]).pick(domain, avoid=["a"])
        assert value == "b"
        # When everything is avoided the pattern still yields some member.
        value = ValueSet(["a", "b"]).pick(domain, avoid=["a", "b"])
        assert value in {"a", "b"}

    def test_pick_on_exhausted_finite_domain(self):
        domain = Domain("bool", frozenset(["T", "F"]))
        assert ComplementSet(["T", "F"]).pick(domain) is None
        assert ValueSet(["Z"]).pick(domain) is None


class TestText:
    def test_to_text_round_trips_semantics(self):
        assert WILDCARD.to_text() == "_"
        assert ValueSet(["b", "a"]).to_text() == "{a, b}"
        assert ComplementSet(["NYC"]).to_text() == "!{NYC}"

    def test_str_delegates_to_text(self):
        assert str(ComplementSet(["x"])) == "!{x}"
