"""RPL002 — retries are only ever attached to registered-idempotent ops.

The ``@rpc_op(name, idempotent=...)`` registry in
:mod:`repro.parallel.transport` is the single authority on what may be
blindly retried.  This checker enforces the static half of the
contract:

* every ``retryable=`` keyword is a literal ``False``, a literal
  ``True`` on an op declared ``idempotent=True``, or a direct
  ``is_idempotent(...)`` call — nothing free-form;
* ``@rpc_op`` idempotency flags are literal booleans;
* one op name is never declared with conflicting flags (project-level,
  mirrors the runtime ``FabricError`` so the conflict fails in lint
  before it fails at import).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.astutil import call_name
from repro.lint.model import SourceFile, Violation
from repro.lint.project import ProjectIndex

CODE = "RPL002"


def _retry_value_ok(value: ast.expr, call: ast.Call, index: ProjectIndex) -> str | None:
    """``None`` if the retryable value is acceptable, else the problem."""
    if isinstance(value, ast.Constant) and value.value is False:
        return None
    if isinstance(value, ast.Call):
        target = call_name(value) or ""
        if target.rsplit(".", 1)[-1] == "is_idempotent":
            return None
        return (
            "retryable= must be a literal or an is_idempotent(...) call, "
            f"not {ast.unparse(value)!r}"
        )
    if isinstance(value, ast.Constant) and value.value is True:
        op = None
        if len(call.args) >= 2:
            arg = call.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                op = arg.value
        if op is None:
            return (
                "retryable=True with a non-literal op name — the idempotency "
                "claim cannot be statically checked; use "
                "retryable=is_idempotent(op)"
            )
        decl = index.rpc_ops.get(op)
        if decl is None:
            return (
                f"retryable=True attached to unregistered op {op!r} — declare "
                "it with @rpc_op before claiming it is safe to retry"
            )
        if not decl.idempotent:
            return (
                f"retryable=True attached to op {op!r}, which is not declared "
                "idempotent — a retried reply loss would double-apply it"
            )
        return None
    return (
        "retryable= must be a literal or an is_idempotent(...) call, "
        f"not {ast.unparse(value)!r}"
    )


def check_file(file: SourceFile, index: ProjectIndex) -> Iterator[Violation]:
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        target = call_name(node)
        tail = target.rsplit(".", 1)[-1] if target else None
        if tail == "rpc_op":
            for kw in node.keywords:
                if kw.arg == "idempotent" and not (
                    isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, bool)
                ):
                    yield Violation(
                        CODE,
                        file.rel,
                        node.lineno,
                        node.col_offset,
                        "@rpc_op idempotent= must be a literal bool — the "
                        "flag is a static contract, not a runtime decision",
                    )
            continue
        for kw in node.keywords:
            if kw.arg != "retryable":
                continue
            problem = _retry_value_ok(kw.value, node, index)
            if problem is not None:
                yield Violation(
                    CODE, file.rel, kw.value.lineno, kw.value.col_offset, problem
                )


def check_project(index: ProjectIndex) -> Iterator[Violation]:
    for name in sorted(index.rpc_ops):
        decl = index.rpc_ops[name]
        if len(decl.flags) > 1:
            for rel, line in decl.sites:
                yield Violation(
                    CODE,
                    rel,
                    line,
                    0,
                    f"RPC op {name!r} declared with conflicting idempotency "
                    "flags across the project",
                )
