"""Pipelined multi-batch updates: ``incremental_update_many`` exactness.

The service's pump ships whole windows of routed batches in one call:
``incremental_update_many`` submits batch ``N+1``'s shard tasks while the
lanes still hold batch ``N``, with a single coordinator barrier at the end.
Single-worker lanes process their queue in submission order, so the
pipelined call must land the *same* maintained state as applying the
batches one ``incremental_update`` at a time — these tests pin that down
per executor, plus the facade's ``apply_updates`` on every backend kind.
"""

import pytest

from repro.core import ECFD, ECFDSet
from repro.core.schema import cust_ext_schema
from repro.datagen.generator import DatasetGenerator
from repro.datagen.updates import UpdateGenerator
from repro.datagen.workload import paper_workload
from repro.engine import DataQualityEngine

EXECUTORS = ("serial", "thread", "process")
BASE_SIZE = 1_200
BATCHES = 5


@pytest.fixture(scope="module")
def ext_schema():
    return cust_ext_schema()


@pytest.fixture(scope="module")
def sigma(ext_schema):
    """Paper workload plus an empty-LHS rider so the summary-merge path
    (cross-shard group deltas) is exercised by every pipelined batch."""
    phi = ECFD(ext_schema, lhs=[], rhs=["CT"], tableau=[({}, {"CT": "_"})])
    return ECFDSet(list(paper_workload()) + [phi])


@pytest.fixture(scope="module")
def base_rows():
    return DatasetGenerator(seed=12).generate_rows(BASE_SIZE, 6.0)


@pytest.fixture(scope="module")
def update_workload(base_rows):
    updates = UpdateGenerator(DatasetGenerator(seed=21), seed=2)
    return updates.make_workload(
        range(1, len(base_rows) + 1),
        batches=BATCHES,
        insert_count=60,
        delete_count=45,
        noise_percent=12.0,
    )


@pytest.fixture(scope="module")
def sequential_reference(ext_schema, sigma, base_rows, update_workload):
    """Final state after one-batch-at-a-time single-threaded application."""
    with DataQualityEngine(ext_schema, sigma, backend="incremental") as engine:
        engine.load(base_rows)
        engine.detect()
        for batch in update_workload:
            engine.apply_update(batch)
        flags = engine.backend.detect()
        cells = {t.tid: t.values() for t in engine.to_relation().tuples()}
    return flags, cells


class TestPipelinedBatchesBitExactness:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_one_call_matches_sequential_application(
        self, ext_schema, sigma, base_rows, update_workload, sequential_reference, executor
    ):
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor=executor
        )
        try:
            engine.load(base_rows)
            engine.backend.ensure_ready()
            violations = engine.backend.incremental_update_many(
                [(b.delete_tids, b.insert_rows, None) for b in update_workload]
            )
            assert violations == sequential_reference[0]
            cells = {t.tid: t.values() for t in engine.to_relation().tuples()}
            assert cells == sequential_reference[1]
            trace = engine.backend.last_update_trace
            assert trace["batches"] == BATCHES
            # Pipelining fanned out per-batch shard tasks, one barrier total.
            assert trace["lane_tasks"] >= BATCHES
            assert engine.backend.full_detect_count == 0
        finally:
            engine.close()

    def test_empty_sequence_is_a_detect(self, ext_schema, sigma, base_rows):
        with DataQualityEngine(ext_schema, sigma, backend="incremental") as engine:
            engine.load(base_rows)
            violations = engine.backend.incremental_update_many([])
            assert violations == engine.backend.detect()

    def test_pinned_tids_inside_a_pipeline(self, ext_schema, sigma, base_rows):
        """Delete + reinsert under pinned identifiers across batches —
        the coalescer's flush shape (all deletes, then pinned inserts)."""
        with DataQualityEngine(ext_schema, sigma, backend="incremental", workers=3,
                               executor="serial") as engine:
            engine.load(base_rows)
            engine.backend.ensure_ready()
            mirror = engine.to_relation()
            tids = [1, 2, BASE_SIZE]
            rows = [mirror.get(tid).as_dict() for tid in tids]
            before = engine.backend.detect()
            engine.backend.incremental_update_many(
                [(tids, [], None), ([], rows, tids)]
            )
            after = engine.backend.detect()
            assert after == before
            assert engine.count() == BASE_SIZE


class TestFacadeApplyUpdates:
    @pytest.mark.parametrize("backend", ("incremental", "batch", "naive"))
    def test_matches_sequential_apply_update(
        self, ext_schema, sigma, base_rows, update_workload, backend
    ):
        with DataQualityEngine(ext_schema, sigma, backend=backend) as reference:
            reference.load(base_rows)
            for batch in update_workload:
                expected = reference.apply_update(batch)

        with DataQualityEngine(ext_schema, sigma, backend=backend) as engine:
            engine.load(base_rows)
            result = engine.apply_updates(update_workload)
            assert result.violations == expected.violations
            assert result.tuple_count == expected.tuple_count
            assert result.incremental == engine.backend.supports_incremental

    def test_sharded_pipeline_through_the_facade(
        self, ext_schema, sigma, base_rows, update_workload, sequential_reference
    ):
        engine = DataQualityEngine(
            ext_schema, sigma, backend="incremental", workers=4, executor="thread"
        )
        try:
            engine.load(base_rows)
            result = engine.apply_updates(
                [{"delete_tids": b.delete_tids, "insert_rows": b.insert_rows}
                 for b in update_workload]
            )
            assert result.incremental
            assert result.violations == sequential_reference[0]
        finally:
            engine.close()

    def test_empty_iterable_returns_current_state(self, ext_schema, sigma, base_rows):
        with DataQualityEngine(ext_schema, sigma, backend="incremental") as engine:
            engine.load(base_rows)
            baseline = engine.detect()
            result = engine.apply_updates([])
            assert result.violations == baseline.violations
            assert result.tuple_count == baseline.tuple_count
