"""Tier-1 guard over the documentation: links resolve, examples run.

Runs the same checks as CI's ``docs`` job (``tools/check_docs.py``) so a
broken doc link or a drifted example fails locally before it reaches CI.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def _documentation_files():
    files = check_docs.documentation_files()
    assert files, "README.md and docs/*.md must exist"
    return files


@pytest.mark.parametrize("path", _documentation_files(), ids=lambda p: p.name)
def test_links_and_referenced_paths_resolve(path):
    assert check_docs.check_links(path) == []


def test_generated_docs_and_figures_are_fresh():
    """The committed generated blocks and figure renders match regeneration.

    Same check as CI's ``tools/check_docs.py --stale``: every
    ``<!-- generated: ... -->`` block and every ``docs/figures/*.svg`` is
    regenerated in-memory from the committed ``benchmarks/artifacts/``
    history and compared byte-for-byte.
    """
    assert check_docs.check_generated() == []


@pytest.mark.parametrize("path", _documentation_files(), ids=lambda p: p.name)
def test_doctest_examples_pass(path):
    src = str(check_docs.REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    failed, attempted, log = check_docs.run_doctests(path)
    assert failed == 0, log


def test_required_documents_exist():
    names = {path.name for path in _documentation_files()}
    assert {"README.md", "ARCHITECTURE.md", "PERFORMANCE.md"} <= names
