"""repro — extended Conditional Functional Dependencies (eCFDs).

A complete, from-scratch Python implementation of

    L. Bravo, W. Fan, F. Geerts, S. Ma.
    "Increasing the Expressivity of Conditional Functional Dependencies
    without Extra Complexity", ICDE 2008.

The library provides:

* the eCFD constraint language (:mod:`repro.core`) — pattern tableaux with
  wildcards, value sets (disjunction) and complement sets (inequality),
  together with CFDs and standard FDs as special cases;
* static analyses (:mod:`repro.analysis`) — exact satisfiability and
  implication checkers based on the paper's small-model properties, and the
  MAXSS approximation algorithm built on the MAXGSAT reduction of
  Section IV;
* a MAXGSAT solver suite (:mod:`repro.sat`) — exact, greedy and local-search
  solvers over a small Boolean-expression AST;
* SQL-based violation detection on SQLite (:mod:`repro.detection`) — the
  BATCHDETECT and INCDETECT algorithms of Section V plus a pure-Python
  oracle;
* synthetic data / workload generation (:mod:`repro.datagen`) matching the
  experimental setting of Section VI;
* experiment drivers (:mod:`repro.experiments`) that regenerate every figure
  of the paper's evaluation;
* extensions sketched as future work in the paper: violation repair
  (:mod:`repro.repair`) and eCFD discovery (:mod:`repro.discovery`).

Quickstart
----------

>>> from repro import cust_schema, parse_ecfd, Relation
>>> schema = cust_schema()
>>> phi = parse_ecfd(
...     "(cust: [CT] -> [AC], { (!{NYC, LI} || _);"
...     " ({Albany, Troy, Colonie} || {518}) })", schema)
>>> d0 = Relation(schema, [
...     {"AC": "718", "PN": "1111111", "NM": "Mike", "STR": "Tree Ave.",
...      "CT": "Albany", "ZIP": "12238"},
... ])
>>> phi.is_satisfied_by(d0)
False
"""

from repro.core import (
    CFD,
    ECFD,
    ECFDSet,
    FunctionalDependency,
    PatternTuple,
    Relation,
    RelationSchema,
    RelationTuple,
    ViolationSet,
    ComplementSet,
    ValueSet,
    Wildcard,
    cfd_from_ecfd,
    cust_ext_schema,
    cust_schema,
    format_ecfd,
    parse_ecfd,
    parse_ecfd_set,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "CFD",
    "ComplementSet",
    "ECFD",
    "ECFDSet",
    "FunctionalDependency",
    "PatternTuple",
    "Relation",
    "RelationSchema",
    "RelationTuple",
    "ReproError",
    "ValueSet",
    "ViolationSet",
    "Wildcard",
    "cfd_from_ecfd",
    "cust_ext_schema",
    "cust_schema",
    "format_ecfd",
    "parse_ecfd",
    "parse_ecfd_set",
    "__version__",
]
