"""Sharded repair: routed fix deltas plus summary-elected group fixes.

The ``"sharded"`` repair strategy runs the violation-driven repair loop of
:class:`~repro.repair.strategies.IncrementalRepairStrategy` over a
:class:`~repro.parallel.ShardedBackend`, reusing the two sharding layers the
detection path already built instead of bypassing them:

* **fix application is routed**: each round's cell-change batch ships as a
  delete+reinsert delta under pinned tuple identifiers through
  ``ShardedBackend.incremental_update`` — the single-pass partition plan
  hashes every fixed tuple to the one shard that owns it, that shard's
  stateful INCDETECT lane maintains its flags and emits the slice's summary
  delta, and untouched shards do no work at all.  Re-validation cost per
  round is proportional to the routed fixes, never |D|, and the per-shard
  INCDETECT states stay live across the whole repair;
* **cross-shard group fixes are summary-elected**: an embedded-FD fragment
  whose ``X``-groups straddle shards (a *summary fragment* of the partition
  plan) is repaired by electing the majority RHS **directly from the
  coordinator's merged ``(cid, xv) → yv-multiset`` state**
  (:meth:`~repro.parallel.summary.SummaryStore.group_counts`) — the same
  sufficient statistics that detect the violation also decide its fix, so
  no shard ever replicates rows to the coordinator for the vote.  The
  elected values then travel back to the owning shards inside the routed
  delta.

Because the summary store is only advanced by the *previous* round's deltas,
its multisets describe exactly the start-of-round state the shared
:class:`~repro.repair.fixes.FixPlanner` plans multi-tuple fixes against —
summary-elected and row-counted elections agree bit-for-bit, which is what
makes sharded repair produce the identical clean relation (and identical
cell-change audit) as the single-threaded greedy baseline.

The strategy registers itself as ``"sharded"`` in the repair-strategy
registry; :meth:`repro.engine.DataQualityEngine.repair` selects it
automatically for sharded engines with an incremental-capable delegate.
"""

from __future__ import annotations

from repro.exceptions import EngineError
from repro.parallel.sharded import ShardedBackend
from repro.repair.fixes import GroupCountsHook
from repro.repair.repairer import RepairOutcome
from repro.repair.strategies import IncrementalRepairStrategy, register_strategy

__all__ = ["ShardedRepairStrategy"]


class ShardedRepairStrategy(IncrementalRepairStrategy):
    """Routed, summary-elected repair over the sharded detection backend."""

    name = "sharded"

    def repair(self, backend) -> RepairOutcome:
        if not isinstance(backend, ShardedBackend):
            raise EngineError(
                f"the 'sharded' repair strategy runs over the sharded detection "
                f"backend; got backend {backend.name!r} (construct the engine "
                "with workers > 1 over an incremental delegate, or use "
                "strategy='incremental')"
            )
        return super().repair(backend)

    def _group_counts_hook(self, backend) -> GroupCountsHook | None:
        """Elect summary-fragment group fixes from the merged summary store.

        Local fragments (LHS ⊇ partition key: their groups are complete on
        one shard, and their flags fold into the coordinator's merged
        violation set) keep the planner's row-counted election; only the
        fragments whose evidence already lives in the store as merged
        ``yv`` multisets are elected from it.
        """
        summary_cids = backend.summary_fragment_cids()
        if not summary_cids:
            return None  # workers <= 1: one whole-Σ shard, nothing summarised
        store = backend.summary_store

        def lookup(cid: int, xv: tuple):
            if cid not in summary_cids:
                return None
            return store.group_counts(cid, xv)

        return lookup


register_strategy(ShardedRepairStrategy.name, ShardedRepairStrategy)
