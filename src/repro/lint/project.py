"""The cross-file index the project-level checks resolve against.

One pass over every scanned file collects the facts no single-file
checker can know: which RPC ops are declared (and with what idempotency
flag), the project exception hierarchy, every string-keyed registry
registration, the tracked-benchmark schema, and the benchmark function
definitions.  Authoritative declarations are collected from ``src/``
only — tests legitimately register throwaway backends and ops, and must
not pollute the registries the real tree is checked against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.astutil import call_name, dotted_name
from repro.lint.model import SourceFile

__all__ = ["OpDecl", "ProjectIndex", "build_index"]

#: Builtin exception names a project class may (transitively) subclass.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "RuntimeError",
        "ValueError",
        "TypeError",
        "KeyError",
        "OSError",
        "ConnectionError",
        "TimeoutError",
        "ArithmeticError",
        "LookupError",
    }
)


@dataclass
class OpDecl:
    """Everything the index knows about one ``@rpc_op`` name."""

    name: str
    #: idempotency flags seen across declarations (True/False/None for
    #: a non-literal flag); more than one distinct value is a conflict.
    flags: set[bool | None] = field(default_factory=set)
    sites: list[tuple[str, int]] = field(default_factory=list)

    @property
    def idempotent(self) -> bool:
        return self.flags == {True}


@dataclass
class ClassInfo:
    """One class definition: its base names and where it lives."""

    name: str
    bases: tuple[str, ...]
    rel: str
    line: int


@dataclass
class ProjectIndex:
    files: list[SourceFile] = field(default_factory=list)
    #: op name -> declaration record (src/ only).
    rpc_ops: dict[str, OpDecl] = field(default_factory=dict)
    #: class name -> definition info (src/ only; last definition wins).
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: registry kind -> key -> registration sites (src/ only).
    registry_keys: dict[str, dict[str, list[tuple[str, int]]]] = field(
        default_factory=lambda: {
            "backend": {},
            "strategy": {},
            "figure": {},
            "driver": {},
        }
    )
    #: TRACKED_BENCHMARKS keys -> site (from reports/schema.py if scanned).
    tracked_benchmarks: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: EXTRA_INFO_FIELDS benchmark-name prefixes.
    extra_info_prefixes: tuple[str, ...] = ()
    has_schema: bool = False
    #: test_* function names defined under benchmarks/.
    benchmark_funcs: set[str] = field(default_factory=set)
    has_benchmarks: bool = False
    has_figures: bool = False
    has_drivers: bool = False

    def is_exception_like(self, name: str) -> bool:
        """Does ``name``'s base chain reach a builtin exception?"""
        return self._reaches(name, _BUILTIN_EXCEPTIONS)

    def is_repro_error(self, name: str) -> bool:
        """Is ``name`` ``ReproError`` or a transitive subclass of it?"""
        return name == "ReproError" or self._reaches(name, {"ReproError"})

    def _reaches(self, name: str, targets: frozenset[str] | set[str]) -> bool:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            for base in info.bases:
                if base in targets:
                    return True
                frontier.append(base)
        return False


def _class_attr_constants(tree: ast.Module) -> dict[str, dict[str, str]]:
    """class name -> {attr: string constant} for simple class-body assigns.

    Resolves the ``register_backend(NaiveBackend.name, NaiveBackend)``
    idiom, where the registry key is a class attribute, not a literal.
    """
    out: dict[str, dict[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: dict[str, str] = {}
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                attrs[stmt.targets[0].id] = stmt.value.value
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                attrs[stmt.target.id] = stmt.value.value
        out[node.name] = attrs
    return out


def _resolve_key(node: ast.expr, class_attrs: dict[str, dict[str, str]]) -> str | None:
    """A registry-key expression as a string, if statically resolvable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in class_attrs
    ):
        return class_attrs[node.value.id].get(node.attr)
    return None


_REGISTER_CALLS = {
    "register_backend": "backend",
    "register_strategy": "strategy",
}
_REGISTER_DECORATORS = {
    "register_figure": "figure",
    "register_driver": "driver",
}


def _index_src_file(index: ProjectIndex, file: SourceFile) -> None:
    class_attrs = _class_attr_constants(file.tree)
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ClassDef):
            bases = tuple(
                name
                for base in node.bases
                if (name := dotted_name(base)) is not None
            )
            base_tails = tuple(name.rsplit(".", 1)[-1] for name in bases)
            index.classes[node.name] = ClassInfo(
                name=node.name, bases=base_tails, rel=file.rel, line=node.lineno
            )
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Call):
                    _index_decorator(index, file, decorator)
        if isinstance(node, ast.Call):
            target = call_name(node)
            tail = target.rsplit(".", 1)[-1] if target else None
            if tail in _REGISTER_CALLS and node.args:
                key = _resolve_key(node.args[0], class_attrs)
                if key is not None:
                    kind = _REGISTER_CALLS[tail]
                    index.registry_keys[kind].setdefault(key, []).append(
                        (file.rel, node.lineno)
                    )

    if file.rel == "src/repro/reports/schema.py":
        _index_schema(index, file)
    if file.rel == "src/repro/reports/figures.py":
        index.has_figures = True
    if file.rel == "src/repro/experiments/figures.py":
        index.has_drivers = True


def _index_decorator(index: ProjectIndex, file: SourceFile, call: ast.Call) -> None:
    target = call_name(call)
    tail = target.rsplit(".", 1)[-1] if target else None
    if tail in _REGISTER_DECORATORS and call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            kind = _REGISTER_DECORATORS[tail]
            index.registry_keys[kind].setdefault(arg.value, []).append(
                (file.rel, call.lineno)
            )
    elif tail == "rpc_op" and call.args:
        arg = call.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return
        flag: bool | None = None
        for kw in call.keywords:
            if kw.arg == "idempotent":
                if isinstance(kw.value, ast.Constant) and isinstance(
                    kw.value.value, bool
                ):
                    flag = kw.value.value
        decl = index.rpc_ops.setdefault(arg.value, OpDecl(name=arg.value))
        decl.flags.add(flag)
        decl.sites.append((file.rel, call.lineno))


def _index_schema(index: ProjectIndex, file: SourceFile) -> None:
    index.has_schema = True
    for node in ast.walk(file.tree):
        target_name = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name):
                target_name = node.targets[0].id
                value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            target_name = node.target.id
            value = node.value
        if target_name == "TRACKED_BENCHMARKS" and isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    index.tracked_benchmarks[key.value] = (file.rel, key.lineno)
        elif target_name == "EXTRA_INFO_FIELDS" and isinstance(value, ast.Dict):
            prefixes = [
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
            index.extra_info_prefixes = tuple(prefixes)


def build_index(files: list[SourceFile]) -> ProjectIndex:
    index = ProjectIndex(files=list(files))
    for file in files:
        if file.in_src:
            _index_src_file(index, file)
        elif file.is_benchmark:
            index.has_benchmarks = True
            for node in ast.walk(file.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.startswith("test_"):
                        index.benchmark_funcs.add(node.name)
    return index
