"""Unit tests for the SQL dialect layer (repro.detection.dialect)."""

import pytest

from repro.detection.dialect import (
    KEY_SEPARATOR,
    DuckDBDialect,
    SqlDialect,
    SQLiteDialect,
    available_dialects,
    get_dialect,
    register_dialect,
)
from repro.exceptions import DatabaseError, DetectionError

SQLITE = SQLiteDialect()
DUCKDB = DuckDBDialect()


class TestIdentifiersAndExpressions:
    @pytest.mark.parametrize("dialect", [SQLITE, DUCKDB], ids=["sqlite", "duckdb"])
    def test_quote_identifier_escapes_double_quotes(self, dialect):
        assert dialect.quote_identifier("CT") == '"CT"'
        assert dialect.quote_identifier('we"ird') == '"we""ird"'

    @pytest.mark.parametrize("dialect", [SQLITE, DUCKDB], ids=["sqlite", "duckdb"])
    def test_string_literal_escapes_single_quotes(self, dialect):
        assert dialect.string_literal("plain") == "'plain'"
        assert dialect.string_literal("O'Hare") == "'O''Hare'"

    def test_concat_joins_with_the_key_separator(self):
        expression = SQLITE.concat(['"A"', '"B"', '"C"'])
        assert expression == f'"A" || \'{KEY_SEPARATOR}\' || "B" || \'{KEY_SEPARATOR}\' || "C"'

    def test_concat_single_part_is_the_part(self):
        assert SQLITE.concat(['"A"']) == '"A"'

    def test_both_dialects_share_the_concat_idiom(self):
        parts = ['"X"', '"Y"']
        assert SQLITE.concat(parts) == DUCKDB.concat(parts)


class TestTypeAffinity:
    def test_sqlite_types(self):
        assert SQLITE.text_type == "TEXT"
        assert SQLITE.integer_type == "INTEGER"
        assert SQLITE.placeholder == "?"

    def test_duckdb_types(self):
        assert DUCKDB.text_type == "VARCHAR"
        assert DUCKDB.integer_type == "INTEGER"
        assert DUCKDB.placeholder == "?"

    def test_blank_marker_is_shared(self):
        # The blank marker is part of the encoding, not the engine: both
        # dialects must agree or cross-engine violation sets would diverge.
        assert SQLITE.blank == DUCKDB.blank == "@"


class TestDdlForms:
    def test_drop_table(self):
        assert SQLITE.drop_table("aux") == 'DROP TABLE IF EXISTS "aux"'

    def test_create_temp_table(self):
        ddl = SQLITE.create_temp_table("new_tids", ["tid INTEGER PRIMARY KEY"])
        assert ddl == 'CREATE TEMP TABLE "new_tids" (tid INTEGER PRIMARY KEY)'

    def test_create_temp_table_as(self):
        ddl = DUCKDB.create_temp_table_as("groups", "SELECT 1 AS one")
        assert ddl == 'CREATE TEMP TABLE "groups" AS SELECT 1 AS one'

    def test_sqlite_builds_secondary_indexes(self):
        ddl = SQLITE.create_index("idx_aux", "aux", ["cid", "xv_key"])
        assert ddl == 'CREATE INDEX IF NOT EXISTS "idx_aux" ON "aux" ("cid", "xv_key")'

    def test_duckdb_skips_secondary_indexes(self):
        assert DUCKDB.create_index("idx_aux", "aux", ["cid", "xv_key"]) is None


class TestUpsertForms:
    def test_upsert_updates_non_key_columns(self):
        statement = SQLITE.upsert("data", ["tid", "CT", "ZIP"], ["tid"])
        assert statement == (
            'INSERT INTO "data" ("tid", "CT", "ZIP") VALUES (?, ?, ?) '
            'ON CONFLICT ("tid") DO UPDATE SET '
            '"CT" = excluded."CT", "ZIP" = excluded."ZIP"'
        )

    def test_upsert_all_key_columns_does_nothing_on_conflict(self):
        statement = DUCKDB.upsert("seen", ["cid", "val"], ["cid", "val"])
        assert statement == (
            'INSERT INTO "seen" ("cid", "val") VALUES (?, ?) '
            'ON CONFLICT ("cid", "val") DO NOTHING'
        )


class TestIngestionValidation:
    @pytest.mark.parametrize("dialect", [SQLITE, DUCKDB], ids=["sqlite", "duckdb"])
    def test_blank_marker_is_rejected(self, dialect):
        with pytest.raises(DatabaseError, match="blank marker"):
            dialect.validate_text_value(dialect.blank)

    @pytest.mark.parametrize("dialect", [SQLITE, DUCKDB], ids=["sqlite", "duckdb"])
    def test_key_separator_is_rejected(self, dialect):
        with pytest.raises(DatabaseError, match="separator"):
            dialect.validate_text_value(f"a{KEY_SEPARATOR}b")

    def test_values_containing_at_are_fine(self):
        # Only the exact marker is ambiguous; "user@host" is ordinary data.
        assert SQLITE.validate_text_value("user@host") == "user@host"

    def test_stringify_coerces_and_validates(self):
        assert SQLITE.stringify(42) == "42"
        with pytest.raises(DatabaseError):
            SQLITE.stringify("@")


class TestRegistry:
    def test_builtin_dialects_are_registered(self):
        assert set(available_dialects()) >= {"sqlite", "duckdb"}
        assert isinstance(get_dialect("sqlite"), SQLiteDialect)
        assert isinstance(get_dialect("duckdb"), DuckDBDialect)

    def test_unknown_dialect_lists_the_registry(self):
        with pytest.raises(DetectionError) as excinfo:
            get_dialect("postgres")
        message = str(excinfo.value)
        assert "postgres" in message and "sqlite" in message and "duckdb" in message

    def test_register_requires_a_name(self):
        with pytest.raises(DetectionError):
            register_dialect(SqlDialect())
