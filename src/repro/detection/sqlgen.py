"""SQL generation for eCFD violation detection (Section V-A, Fig. 4).

This module produces the text of the two detection queries and of the
auxiliary statements shared by :class:`~repro.detection.batch.BatchDetector`
and :class:`~repro.detection.incremental.IncrementalDetector`.  All queries
are *schema-generic*: their shape depends only on the relation schema R (one
condition group per attribute), never on the number of eCFDs, the number of
pattern tuples, or the size of the constant sets — those live in the
encoding tables of :mod:`repro.detection.encoding`.

Every generator takes an optional :class:`~repro.detection.dialect.SqlDialect`
and emits engine-specific idioms (identifier quoting, the blank marker, the
``xv_key`` / ``yv_key`` concatenation, parameter placeholders) through it,
defaulting to the SQLite dialect.  The query *shapes* are dialect-invariant —
that is the paper's portability claim made concrete.

``Q_sv`` — single-tuple violations (Fig. 4, top)
    A tuple *matches the LHS pattern* of an encoded constraint when, for
    every attribute, either the attribute is not a set/complement LHS entry
    or the EXISTS / NOT EXISTS probe against the constant table agrees.  It
    is a violation when additionally some RHS entry fails: a value-set entry
    whose probe finds nothing, or a complement-set entry whose probe finds
    the value (``ABS`` handles the ``Yp`` sign convention).

``macro`` / ``Q_mv`` — multiple-tuple violations (Fig. 4, bottom)
    The ``macro`` query projects, for every tuple matching an encoded
    constraint's LHS pattern, the constraint identifier, the tuple
    identifier and the tuple's values on the embedded FD's attributes — all
    other attributes are blanked to ``'@'`` with a ``CASE`` expression.  Two
    derived key columns concatenate the blanked LHS values (``xv_key``) and
    RHS values (``yv_key``); grouping by ``(cid, xv_key)`` and keeping
    groups with more than one distinct ``yv_key`` finds exactly the
    LHS-value groups with at least two distinct RHS combinations, i.e. the
    embedded-FD violations.  The grouped rows ``(cid, p)`` are what the
    paper stores in its auxiliary relation Aux(D).

Implementation refinement over the paper: besides Aux(D), the detectors
materialise the macro projection itself into a helper relation
(``ecfd_macro``, one row per matching (tuple, constraint) pair) indexed by
``(cid, xv_key)`` and by ``tid``.  This keeps every incremental maintenance
step expressible as index-driven joins whose cost is proportional to the
update and the affected groups rather than to |D| — which is precisely the
behaviour the paper reports for INCDETECT on a commercial DBMS.  The number
of SQL statements per update remains fixed and independent of Σ.
"""

from __future__ import annotations

from repro.core.ecfd import ECFD
from repro.core.patterns import ComplementSet
from repro.core.schema import RelationSchema
from repro.detection.dialect import KEY_SEPARATOR, SqlDialect, get_dialect
from repro.detection.encoding import ENC_TABLE, enc_column, pattern_table
from repro.exceptions import DetectionError

__all__ = [
    "XV_SEPARATOR",
    "aux_column",
    "aux_columns",
    "lhs_match_condition",
    "rhs_violation_condition",
    "qsv_query",
    "sv_update_statement",
    "macro_query",
    "group_query",
    "qmv_query",
    "group_key_join",
    "mv_set_statement",
    "mv_clear_statement",
    "summary_scan_query",
]

#: Separator used when concatenating blanked values into xv_key / yv_key.
#: Owned by the dialect layer since the cross-engine split; re-exported under
#: its historical name.
XV_SEPARATOR = KEY_SEPARATOR


def _resolve(dialect: SqlDialect | None) -> SqlDialect:
    """The given dialect, or the SQLite reference dialect."""
    return dialect if dialect is not None else get_dialect("sqlite")


def aux_column(attribute: str) -> str:
    """Name of the blanked LHS-value column for ``attribute`` in macro/aux rows."""
    return f"{attribute}_XV"


def aux_columns(schema: RelationSchema) -> list[str]:
    """All blanked LHS-value column names, in schema order."""
    return [aux_column(a) for a in schema.attribute_names]


def _probe(
    attribute: str, side: str, data_alias: str, enc_alias: str, dialect: SqlDialect
) -> str:
    """The EXISTS probe of the constant table for one attribute/side."""
    table = dialect.quote_identifier(pattern_table(attribute, side))
    return (
        f"SELECT 1 FROM {table} p WHERE p.cid = {enc_alias}.CID "
        f"AND p.val = {data_alias}.{dialect.quote_identifier(attribute)}"
    )


def lhs_match_condition(
    schema: RelationSchema,
    data_alias: str = "t",
    enc_alias: str = "c",
    dialect: SqlDialect | None = None,
) -> str:
    """The conjunction asserting ``t[X] ≍ tp[X]`` for the encoded constraint.

    One pair of guarded probes per attribute; attributes absent from the LHS
    (code 0) and wildcard entries (code 3) satisfy both guards vacuously.
    """
    dialect = _resolve(dialect)
    parts = []
    for attribute in schema.attribute_names:
        column = f"{enc_alias}.{dialect.quote_identifier(enc_column(attribute, 'L'))}"
        probe = _probe(attribute, "L", data_alias, enc_alias, dialect)
        parts.append(f"({column} <> 1 OR EXISTS ({probe}))")
        parts.append(f"({column} <> 2 OR NOT EXISTS ({probe}))")
    return "\n      AND ".join(parts)


def rhs_violation_condition(
    schema: RelationSchema,
    data_alias: str = "t",
    enc_alias: str = "c",
    dialect: SqlDialect | None = None,
) -> str:
    """The disjunction asserting ``t[Y ∪ Yp] ⋬ tp[Y ∪ Yp]``.

    ``ABS`` folds the ``Yp`` sign convention (negative codes) into the same
    probes used for ``Y`` attributes.
    """
    dialect = _resolve(dialect)
    parts = []
    for attribute in schema.attribute_names:
        column = f"ABS({enc_alias}.{dialect.quote_identifier(enc_column(attribute, 'R'))})"
        probe = _probe(attribute, "R", data_alias, enc_alias, dialect)
        parts.append(f"({column} = 1 AND NOT EXISTS ({probe}))")
        parts.append(f"({column} = 2 AND EXISTS ({probe}))")
    return "\n       OR ".join(parts)


def qsv_query(
    schema: RelationSchema,
    restriction: str | None = None,
    dialect: SqlDialect | None = None,
) -> str:
    """``Q_sv``: tids of tuples violating some pattern constraint.

    ``restriction`` is an optional extra SQL condition over the data alias
    ``t`` (the incremental detector passes ``t.tid IN (...)`` to scan only
    newly inserted tuples).
    """
    dialect = _resolve(dialect)
    data_table = dialect.quote_identifier(schema.name)
    extra = f"\n      AND ({restriction})" if restriction else ""
    return (
        f"SELECT DISTINCT t.tid\n"
        f"FROM {data_table} t, {dialect.quote_identifier(ENC_TABLE)} c\n"
        f"WHERE {lhs_match_condition(schema, dialect=dialect)}\n"
        f"      AND ({rhs_violation_condition(schema, dialect=dialect)}){extra}"
    )


def sv_update_statement(
    schema: RelationSchema,
    restriction: str | None = None,
    dialect: SqlDialect | None = None,
) -> str:
    """``UPDATE ... SET SV = 1`` for the tuples returned by ``Q_sv``."""
    dialect = _resolve(dialect)
    data_table = dialect.quote_identifier(schema.name)
    return (
        f"UPDATE {data_table} SET SV = 1 WHERE tid IN (\n"
        f"{qsv_query(schema, restriction, dialect=dialect)}\n)"
    )


def _blanked_value(
    attribute: str, side: str, data_alias: str, enc_alias: str, dialect: SqlDialect
) -> str:
    """The ``CASE`` expression blanking an attribute irrelevant to one FD side."""
    code = f"{enc_alias}.{dialect.quote_identifier(enc_column(attribute, side))}"
    value = f"{data_alias}.{dialect.quote_identifier(attribute)}"
    blank = dialect.string_literal(dialect.blank)
    return f"(CASE WHEN {code} > 0 THEN {value} ELSE {blank} END)"


def macro_query(
    schema: RelationSchema,
    restriction: str | None = None,
    dialect: SqlDialect | None = None,
) -> str:
    """The ``macro`` query of Fig. 4, extended with tid and the two key columns.

    One output row per (tuple, encoded constraint) pair where the tuple
    matches the constraint's LHS pattern; columns are the constraint id, the
    tuple id, the blanked LHS values (one column per attribute plus the
    concatenated ``xv_key``) and the concatenated blanked RHS values
    (``yv_key``).
    """
    dialect = _resolve(dialect)
    data_table = dialect.quote_identifier(schema.name)
    select_parts = ["c.CID AS cid", "t.tid AS tid"]
    xv_fragments = []
    yv_fragments = []
    for attribute in schema.attribute_names:
        xv = _blanked_value(attribute, "L", "t", "c", dialect)
        yv = _blanked_value(attribute, "R", "t", "c", dialect)
        select_parts.append(f"{xv} AS {dialect.quote_identifier(aux_column(attribute))}")
        xv_fragments.append(xv)
        yv_fragments.append(yv)
    select_parts.append(f"({dialect.concat(xv_fragments)}) AS xv_key")
    select_parts.append(f"({dialect.concat(yv_fragments)}) AS yv_key")
    conditions = [lhs_match_condition(schema, dialect=dialect)]
    if restriction:
        conditions.append(f"({restriction})")
    return (
        "SELECT " + ",\n       ".join(select_parts) + "\n"
        f"FROM {data_table} t, {dialect.quote_identifier(ENC_TABLE)} c\n"
        "WHERE " + "\n      AND ".join(conditions)
    )


def group_query(
    schema: RelationSchema, source: str, dialect: SqlDialect | None = None
) -> str:
    """The violating ``(cid, p)`` groups of a macro-shaped row source.

    ``source`` is either the name of a table with the macro columns (e.g.
    the materialised ``ecfd_macro`` helper, possibly joined down to the
    affected groups) or a parenthesised sub-select producing them.  A group
    is violating when it contains at least two distinct RHS combinations.
    """
    dialect = _resolve(dialect)
    columns = (
        ["cid"]
        + [dialect.quote_identifier(name) for name in aux_columns(schema)]
        + ["xv_key"]
    )
    return (
        f"SELECT {', '.join(columns)}\n"
        f"FROM {source}\n"
        f"GROUP BY cid, xv_key\n"
        f"HAVING COUNT(DISTINCT yv_key) > 1"
    )


def qmv_query(
    schema: RelationSchema,
    restriction: str | None = None,
    dialect: SqlDialect | None = None,
) -> str:
    """``Q_mv``: the violating groups computed directly from the data table."""
    dialect = _resolve(dialect)
    return group_query(
        schema,
        f"(\n{macro_query(schema, restriction, dialect=dialect)}\n) AS macro",
        dialect=dialect,
    )


def group_key_join(left_alias: str, right_alias: str) -> str:
    """Join condition equating the (cid, xv_key) group identity of two row sets."""
    return (
        f"{left_alias}.cid = {right_alias}.cid "
        f"AND {left_alias}.xv_key = {right_alias}.xv_key"
    )


def mv_set_statement(
    schema: RelationSchema,
    macro_table: str,
    groups_table: str,
    dialect: SqlDialect | None = None,
) -> str:
    """``UPDATE ... SET MV = 1`` for tuples belonging to a violating group.

    Driven by an index-assisted join between the materialised macro relation
    and the given groups table, so the cost is proportional to the number of
    tuples in those groups.
    """
    dialect = _resolve(dialect)
    data_table = dialect.quote_identifier(schema.name)
    return (
        f"UPDATE {data_table} SET MV = 1 WHERE MV = 0 AND tid IN (\n"
        f"  SELECT m.tid FROM {dialect.quote_identifier(macro_table)} m\n"
        f"  JOIN {dialect.quote_identifier(groups_table)} g ON {group_key_join('m', 'g')}\n"
        f")"
    )


def summary_scan_query(
    fragment: ECFD, dialect: SqlDialect | None = None
) -> tuple[str, list[str]]:
    """The pushed-down scan behind a SQL detector's ``fd_group_summary`` hook.

    Selects ``tid`` plus the LHS and RHS projections of every data tuple
    matching the (single-pattern) fragment's LHS pattern — returned as
    ``(sql, parameters)`` with the pattern constants bound as parameters,
    stringified exactly like the encoding's constant tables so the match
    semantics are identical to the encoded ``Q_sv`` / macro probes.  The
    grouping into ``(cid, xv) → (yv multiset, tids)`` summaries happens on
    the (far smaller) result in Python; the filtering runs inside the
    engine.
    """
    dialect = _resolve(dialect)
    if len(fragment.tableau) != 1:
        raise DetectionError(
            "summary scans operate on normalized single-pattern fragments; "
            f"got a tableau of {len(fragment.tableau)} patterns"
        )
    pattern = fragment.tableau[0]
    conditions: list[str] = []
    parameters: list[str] = []
    for attribute in fragment.lhs:
        entry = pattern.lhs_entry(attribute)
        if entry.is_wildcard:
            continue
        constants = sorted(entry.constants(), key=str)
        placeholders = ", ".join(dialect.placeholder for _ in constants)
        negate = "NOT " if isinstance(entry, ComplementSet) else ""
        conditions.append(
            f"{dialect.quote_identifier(attribute)} {negate}IN ({placeholders})"
        )
        parameters.extend(str(value) for value in constants)
    columns = ["tid"] + [
        dialect.quote_identifier(a) for a in fragment.lhs + fragment.rhs
    ]
    sql = (
        f"SELECT {', '.join(columns)} "
        f"FROM {dialect.quote_identifier(fragment.schema.name)}"
    )
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql, parameters


def mv_clear_statement(
    schema: RelationSchema,
    macro_table: str,
    aux_table: str,
    dialect: SqlDialect | None = None,
) -> str:
    """``UPDATE ... SET MV = 0`` for flagged tuples no longer in any violating group."""
    dialect = _resolve(dialect)
    data_table = dialect.quote_identifier(schema.name)
    return (
        f"UPDATE {data_table} SET MV = 0 WHERE MV = 1 AND tid NOT IN (\n"
        f"  SELECT m.tid FROM {dialect.quote_identifier(macro_table)} m\n"
        f"  JOIN {dialect.quote_identifier(aux_table)} a ON {group_key_join('m', 'a')}\n"
        f")"
    )
