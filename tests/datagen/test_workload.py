"""Unit tests for the eCFD workload generator."""

import pytest

from repro.core import cust_ext_schema
from repro.core.patterns import ComplementSet, ValueSet, Wildcard
from repro.datagen import (
    DatasetGenerator,
    paper_workload,
    paper_workload_with_tableau_size,
    tableau_sweep_ecfd,
)
from repro.detection import NaiveDetector
from repro.exceptions import ConstraintError


class TestPaperWorkload:
    def test_ten_ecfds(self):
        sigma = paper_workload()
        assert len(sigma) == 10

    def test_includes_fig2_constraints(self):
        sigma = paper_workload()
        names = [ecfd.name for ecfd in sigma]
        assert "psi1_city_determines_ac" in names
        assert "psi2_nyc_area_codes" in names
        psi2 = next(e for e in sigma if e.name == "psi2_nyc_area_codes")
        assert psi2.pattern_rhs == ("AC",)
        codes = psi2.tableau[0].rhs_entry("AC").constants()
        assert codes == frozenset({"212", "718", "646", "347", "917"})

    def test_uses_all_three_pattern_kinds(self):
        sigma = paper_workload()
        kinds = set()
        for ecfd in sigma:
            for pattern in ecfd.tableau:
                for entry in list(pattern.lhs.values()) + list(pattern.rhs.values()):
                    kinds.add(type(entry))
        assert kinds == {ValueSet, ComplementSet, Wildcard}

    def test_workload_is_satisfied_by_clean_data(self):
        relation = DatasetGenerator(seed=1).generate(150, noise_percent=0.0)
        assert NaiveDetector(paper_workload()).detect(relation).is_clean()

    def test_workload_over_custom_schema(self):
        schema = cust_ext_schema()
        sigma = paper_workload(schema)
        assert sigma.schema == schema


class TestTableauSweep:
    def test_requested_size(self):
        ecfd = tableau_sweep_ecfd(size=50)
        assert len(ecfd.tableau) == 50
        ecfd = tableau_sweep_ecfd(size=500)
        assert len(ecfd.tableau) == 500

    def test_uniform_mix_of_entry_kinds(self):
        ecfd = tableau_sweep_ecfd(size=90)
        kinds = {ValueSet: 0, ComplementSet: 0, Wildcard: 0}
        for pattern in ecfd.tableau:
            kinds[type(pattern.rhs_entry("AC"))] += 1
        assert kinds[ValueSet] == kinds[ComplementSet] == kinds[Wildcard] == 30

    def test_sweep_satisfied_by_clean_data(self):
        ecfd = tableau_sweep_ecfd(size=60)
        relation = DatasetGenerator(seed=2).generate(200, noise_percent=0.0)
        assert NaiveDetector([ecfd]).detect(relation).is_clean()

    def test_invalid_size_rejected(self):
        with pytest.raises(ConstraintError):
            tableau_sweep_ecfd(size=0)

    def test_size_larger_than_catalog_is_handled(self):
        ecfd = tableau_sweep_ecfd(size=320)
        assert len(ecfd.tableau) == 320
        # Each pattern constrains a distinct city.
        cities = [next(iter(p.lhs_entry("CT").constants())) for p in ecfd.tableau]
        assert len(set(cities)) == 320


class TestWorkloadWithTableauSize:
    def test_still_ten_constraints(self):
        sigma = paper_workload_with_tableau_size(100)
        assert len(sigma) == 10
        assert sigma.pattern_count() >= 100

    def test_sweep_constraint_is_first(self):
        sigma = paper_workload_with_tableau_size(75)
        assert sigma[0].name == "sweep_tableau_75"
        assert len(sigma[0].tableau) == 75

    def test_clean_data_still_satisfies(self):
        sigma = paper_workload_with_tableau_size(60)
        relation = DatasetGenerator(seed=3).generate(150, noise_percent=0.0)
        assert NaiveDetector(sigma).detect(relation).is_clean()
