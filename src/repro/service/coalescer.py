"""Delta coalescing: merge same-tid churn before it reaches the lanes.

A live update stream is full of short-lived work: a tuple inserted and
deleted within the same window, a delete immediately followed by a
re-insert of the freed identifier (the ``max(tid) + 1`` discipline reuses
freed maxima — the tid-reuse commute class the summary store's counted
witnesses were built for).  Shipping each raw event to the sharded lanes
pays routing and flag maintenance for work that cancels out;
:class:`DeltaCoalescer` nets it out at the coordinator instead:

* **insert → delete cancels**: a tuple born and killed inside the window
  never ships at all;
* **delete + insert of one tid folds**: when a freed identifier is reused
  inside the window, the old tuple's delete and the new tuple's insert
  travel in the *same* flushed batch — INCDETECT applies ΔD⁻ before ΔD⁺,
  so the pair lands as a single value update of that identifier;
* everything else accumulates into one pending delta per window.

Correctness rests on two invariants, both enforced here:

1. **tid assignment is the backend's.**  :meth:`add` assigns insert
   identifiers against the live tid population exactly like every
   backend's storage layer does (deletions first, then fresh
   ``max(live) + 1`` identifiers), so the assignment a client observes is
   identical to a single-threaded replay of the raw stream — a cancelled
   insert frees its identifier for the next insert to take, exactly as the
   replay would.
2. **a flush reproduces the replay's relation.**  Every pending delete
   references a tuple that existed before the window, every pending insert
   is new, so shipping all deletes before all inserts (the chunk order
   :meth:`flush` emits) drives the backend to the same final relation —
   and the violation flags are a function of the relation, so the
   maintained state after the flush is bit-exact with the raw replay.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.schema import Value

__all__ = ["DeltaCoalescer"]


class DeltaCoalescer:
    """Accumulates raw update events into one net delta per window.

    Parameters
    ----------
    existing_tids:
        The live tuple identifiers of the backing store at window start —
        the population deletes are validated against and insert identifiers
        are assigned over.
    """

    def __init__(self, existing_tids: Sequence[int] = ()):
        self._live = set(int(tid) for tid in existing_tids)
        self._max_live = max(self._live) if self._live else 0
        self._max_stale = False
        #: Pre-window tuples deleted inside the window.
        self._deletes: set[int] = set()
        #: Tuples born inside the window, still alive: tid -> row.
        self._inserts: dict[int, Mapping[str, Value]] = {}
        # --- lifetime counters (survive flushes; read by service stats) ---
        self.raw_ops = 0
        self.cancelled_inserts = 0
        self.skipped_deletes = 0
        self.folded_updates = 0
        self.flushed_ops = 0

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def _current_max(self) -> int:
        if self._max_stale:
            self._max_live = max(self._live) if self._live else 0
            self._max_stale = False
        return self._max_live

    def add(
        self,
        delete_tids: Sequence[int] = (),
        insert_rows: Sequence[Mapping[str, Value]] = (),
    ) -> list[int]:
        """Fold one raw update event in; returns the assigned insert tids.

        Deletions are processed before insertions (the ΔD⁻ / ΔD⁺ order of
        every backend); a delete of an identifier that is not live is
        silently skipped, matching backend behaviour.
        """
        self.raw_ops += len(delete_tids) + len(insert_rows)
        for tid in delete_tids:
            tid = int(tid)
            if tid in self._inserts:
                # Born and killed inside the window: never ships.
                del self._inserts[tid]
                self._live.discard(tid)
                self.cancelled_inserts += 1
            elif tid in self._live:
                self._deletes.add(tid)
                self._live.discard(tid)
            else:
                self.skipped_deletes += 1
                continue
            if tid == self._max_live:
                self._max_stale = True
        assigned: list[int] = []
        if insert_rows:
            start = self._current_max() + 1
            for offset, row in enumerate(insert_rows):
                tid = start + offset
                self._inserts[tid] = row
                self._live.add(tid)
                assigned.append(tid)
            self._max_live = assigned[-1]
            self._max_stale = False
        return assigned

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    @property
    def pending_ops(self) -> int:
        """Net operations currently pending (deletes + surviving inserts)."""
        return len(self._deletes) + len(self._inserts)

    def flush(
        self, max_batch: int | None = None
    ) -> list[tuple[list[int], list[Mapping[str, Value]], list[int] | None]]:
        """Drain the window into routed-delta batches, deletes first.

        Returns ``(delete_tids, insert_rows, insert_tids)`` triples ready
        for ``incremental_update_many``; insert identifiers are pinned so
        the backend lands them exactly where the raw replay would have.
        ``max_batch`` caps the operations per batch (admission control's
        routed-batch bound); all delete chunks precede all insert chunks so
        a reused identifier's delete is always applied before its insert.
        """
        deletes = sorted(self._deletes)
        inserts = sorted(self._inserts.items())
        self.folded_updates += sum(1 for tid, _ in inserts if tid in self._deletes)
        self.flushed_ops += len(deletes) + len(inserts)
        self._deletes = set()
        self._inserts = {}
        size = max_batch if max_batch and max_batch > 0 else None
        batches: list[tuple[list[int], list[Mapping[str, Value]], list[int] | None]] = []
        if size is None:
            if deletes or inserts:
                batches.append(
                    (deletes, [row for _, row in inserts], [tid for tid, _ in inserts])
                )
            return batches
        for start in range(0, len(deletes), size):
            batches.append((deletes[start : start + size], [], None))
        for start in range(0, len(inserts), size):
            chunk = inserts[start : start + size]
            batches.append(([], [row for _, row in chunk], [tid for tid, _ in chunk]))
        return batches

    def stats(self) -> dict[str, int]:
        """Lifetime coalescing counters (raw vs shipped work)."""
        return {
            "raw_ops": self.raw_ops,
            "flushed_ops": self.flushed_ops,
            "pending_ops": self.pending_ops,
            "cancelled_inserts": self.cancelled_inserts,
            "folded_updates": self.folded_updates,
            "skipped_deletes": self.skipped_deletes,
        }
