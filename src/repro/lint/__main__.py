"""Entry point: ``python -m repro.lint``."""

from repro.lint.cli import main

raise SystemExit(main())
