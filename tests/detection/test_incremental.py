"""Unit tests for INCDETECT (Section V-B)."""

import pytest

from repro.core import Relation
from repro.detection import BatchDetector, ECFDDatabase, IncrementalDetector
from tests.conftest import FIG1_ROWS


def fresh_db(schema, rows):
    db = ECFDDatabase(schema)
    db.load_relation(Relation(schema, rows))
    return db


def batch_reference(schema, rows, sigma):
    """The violation set a from-scratch batch run computes on `rows`."""
    with ECFDDatabase(schema) as db:
        db.load_relation(Relation(schema, rows))
        return BatchDetector(db, sigma).detect()


CLEAN_ROWS = [
    {"AC": "518", "PN": "1", "NM": "a", "STR": "s", "CT": "Albany", "ZIP": "1"},
    {"AC": "518", "PN": "2", "NM": "b", "STR": "s", "CT": "Troy", "ZIP": "2"},
    {"AC": "212", "PN": "3", "NM": "c", "STR": "s", "CT": "NYC", "ZIP": "3"},
]


class TestInitialization:
    def test_initialize_matches_batch(self, schema, paper_sigma, d0):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        result = detector.initialize()
        assert result == batch_reference(schema, FIG1_ROWS, paper_sigma)
        db.close()

    def test_lazy_initialization(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        # Calling violations() without initialize() runs the batch step first.
        assert detector.violations().violating_tids == {1, 4}
        db.close()


class TestInsertions:
    def test_insert_clean_tuple_adds_no_violations(self, schema, paper_sigma):
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.insert_tuples(
            [{"AC": "917", "PN": "4", "NM": "d", "STR": "s", "CT": "NYC", "ZIP": "4"}]
        )
        assert result.is_clean()
        db.close()

    def test_insert_single_tuple_violation(self, schema, paper_sigma):
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.insert_tuples(
            [{"AC": "100", "PN": "4", "NM": "d", "STR": "s", "CT": "NYC", "ZIP": "4"}]
        )
        assert result.sv_tids == frozenset({4})
        assert result.mv_tids == frozenset()
        db.close()

    def test_insert_creates_fd_violation_with_existing_tuple(self, schema, paper_sigma):
        """An inserted tuple may violate an embedded FD together with an old tuple."""
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.insert_tuples(
            [{"AC": "519", "PN": "4", "NM": "d", "STR": "s", "CT": "Troy", "ZIP": "4"}]
        )
        # tid 2 is the old Troy/518 tuple, tid 4 the new Troy/519 one.
        assert {2, 4} <= result.mv_tids
        db.close()

    def test_insert_matches_batch_recomputation(self, schema, paper_sigma):
        new_rows = [
            {"AC": "519", "PN": "4", "NM": "d", "STR": "s", "CT": "Troy", "ZIP": "4"},
            {"AC": "100", "PN": "5", "NM": "e", "STR": "s", "CT": "NYC", "ZIP": "5"},
            {"AC": "518", "PN": "6", "NM": "f", "STR": "s", "CT": "Colonie", "ZIP": "6"},
        ]
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        incremental = detector.insert_tuples(new_rows)
        assert incremental == batch_reference(schema, CLEAN_ROWS + new_rows, paper_sigma)
        db.close()

    def test_insert_violations_among_new_tuples_only(self, schema, paper_sigma):
        """Two inserted tuples can violate the FD between themselves (step 2.d)."""
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.insert_tuples(
            [
                {"AC": "315", "PN": "4", "NM": "d", "STR": "s", "CT": "Utica", "ZIP": "4"},
                {"AC": "316", "PN": "5", "NM": "e", "STR": "s", "CT": "Utica", "ZIP": "5"},
            ]
        )
        assert {4, 5} <= result.mv_tids
        db.close()


class TestDeletions:
    def test_delete_violating_tuple_clears_flags(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.delete_tuples([1, 4])
        assert result.is_clean()
        assert result == batch_reference(
            schema, [row for i, row in enumerate(FIG1_ROWS, start=1) if i not in {1, 4}], paper_sigma
        )
        db.close()

    def test_delete_resolves_fd_violation(self, schema, paper_sigma):
        rows = CLEAN_ROWS + [
            {"AC": "519", "PN": "4", "NM": "d", "STR": "s", "CT": "Troy", "ZIP": "4"},
        ]
        db = fresh_db(schema, rows)
        detector = IncrementalDetector(db, paper_sigma)
        initial = detector.initialize()
        assert {2, 4} <= initial.mv_tids
        result = detector.delete_tuples([4])
        assert result.mv_tids == frozenset()
        db.close()

    def test_delete_keeps_unrelated_violations(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.delete_tuples([2])  # delete a clean tuple
        assert result.violating_tids == {1, 4}
        db.close()

    def test_delete_part_of_large_fd_group(self, schema, paper_sigma):
        """Deleting one of three conflicting tuples leaves the group violating."""
        rows = CLEAN_ROWS + [
            {"AC": "519", "PN": "4", "NM": "d", "STR": "s", "CT": "Troy", "ZIP": "4"},
            {"AC": "520", "PN": "5", "NM": "e", "STR": "s", "CT": "Troy", "ZIP": "5"},
        ]
        db = fresh_db(schema, rows)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        result = detector.delete_tuples([5])
        expected = batch_reference(schema, rows[:-1], paper_sigma)
        assert result == expected
        assert {2, 4} <= result.mv_tids
        db.close()


class TestMixedUpdateSequences:
    def test_interleaved_updates_match_batch(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()

        detector.insert_tuples(
            [{"AC": "519", "PN": "7", "NM": "g", "STR": "s", "CT": "Colonie", "ZIP": "7"}]
        )
        detector.delete_tuples([1])
        result = detector.insert_tuples(
            [{"AC": "347", "PN": "8", "NM": "h", "STR": "s", "CT": "NYC", "ZIP": "8"}]
        )

        # Reference: rebuild the final state from scratch with the batch detector.
        final_relation = db.to_relation()
        with ECFDDatabase(schema) as reference_db:
            reference_db.load_relation(final_relation)
            expected = BatchDetector(reference_db, paper_sigma).detect()
        assert result == expected

    def test_aux_relation_consistency_after_updates(self, schema, paper_sigma):
        """After any update sequence, Aux(D) equals a fresh Q_mv over the data."""
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        detector.insert_tuples(
            [
                {"AC": "519", "PN": "7", "NM": "g", "STR": "s", "CT": "Albany", "ZIP": "7"},
                {"AC": "520", "PN": "8", "NM": "h", "STR": "s", "CT": "Albany", "ZIP": "8"},
            ]
        )
        detector.delete_tuples([1])
        incremental_aux = sorted(detector.aux_rows())

        final_relation = db.to_relation()
        with ECFDDatabase(schema) as reference_db:
            reference_db.load_relation(final_relation)
            reference = BatchDetector(reference_db, paper_sigma)
            reference.detect()
            batch_aux = sorted(reference.aux_rows())
        assert incremental_aux == batch_aux


class TestResetClearsMaintainedState:
    """Regression: reset() must discard stale flags and per-pattern counters.

    reset() used to only flip the initialized bit; after an out-of-band
    storage update (the engine's apply_delta path) the SV / MV flags, the
    Aux(D) group counters and the macro rows still described the *pre-update*
    database, so direct readers (flag_counts, aux_rows, the engine's
    breakdown) saw old violations mixed with new data.
    """

    def _updated_detector(self, schema, paper_sigma):
        """A detector whose storage was changed out-of-band after detection."""
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        # Out-of-band update: storage only, no violation maintenance.
        db.delete_tuples([2, 3])
        db.insert_tuples(
            [{"AC": "999", "PN": "7", "NM": "g", "STR": "s", "CT": "Albany", "ZIP": "7"}]
        )
        return db, detector

    def test_reset_clears_flags_and_counters(self, schema, paper_sigma):
        db, detector = self._updated_detector(schema, paper_sigma)
        detector.reset()
        # Before the next detection the store must look fresh: no flags set,
        # no per-pattern (cid, p) counter rows, no macro rows.
        assert db.flag_counts() == {"sv": 0, "mv": 0, "dirty": 0}
        assert detector.aux_rows() == []
        assert db.query("SELECT COUNT(*) FROM ecfd_macro") == [(0,)]
        db.close()

    def test_reset_then_detect_matches_fresh_detector(self, schema, paper_sigma):
        db, detector = self._updated_detector(schema, paper_sigma)
        detector.reset()
        result = detector.detect()

        # Reference: a fresh detector over the identical final storage
        # (tuple identifiers preserved).
        with ECFDDatabase(schema) as reference_db:
            reference_db.load_relation(db.to_relation())
            reference = BatchDetector(reference_db, paper_sigma)
            assert result == reference.detect()
            # The rebuilt Aux(D) must equal a from-scratch batch run's too.
            assert sorted(detector.aux_rows()) == sorted(reference.aux_rows())
        db.close()

    def test_reset_without_initialization_is_cheap_noop(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.reset()  # never initialized: nothing to discard
        assert not detector.initialized
        assert detector.detect() == batch_reference(schema, FIG1_ROWS, paper_sigma)
        db.close()


class TestShardStateHooks:
    """The hooks sharded INCDETECT builds on: pinned tids and state stats."""

    def test_insert_with_explicit_tids_preserves_identity(self, schema, paper_sigma):
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        row = {"AC": "518", "PN": "9", "NM": "z", "STR": "s", "CT": "Albany", "ZIP": "1"}
        detector.insert_tuples([row], tids=[41])
        assert 41 in db.all_tids()
        # Equivalent to a from-scratch batch pass over the same storage.
        with ECFDDatabase(schema) as reference_db:
            reference_db.load_relation(db.to_relation())
            assert detector.violations() == BatchDetector(reference_db, paper_sigma).detect()
        db.close()

    def test_pinned_tids_round_trip_through_delete(self, schema, paper_sigma):
        """A shard-style sequence: insert at a pinned gap tid, delete it again."""
        db = fresh_db(schema, CLEAN_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        before = detector.violations()
        row = {"AC": "518", "PN": "1", "NM": "dup", "STR": "s", "CT": "Troy", "ZIP": "9"}
        detector.insert_tuples([row], tids=[100])
        detector.delete_tuples([100])
        assert detector.violations() == before
        assert 100 not in db.all_tids()
        db.close()

    def test_aux_size_tracks_violating_groups(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        detector.initialize()
        assert detector.aux_size() == len(detector.aux_rows())
        stats = detector.state_stats()
        assert stats["aux_groups"] == detector.aux_size()
        assert stats["tuples"] == db.count()
        assert stats["macro_rows"] == db.query("SELECT COUNT(*) FROM ecfd_macro")[0][0]
        assert stats["initialized"] == 1
        db.close()

    def test_state_stats_before_initialization(self, schema, paper_sigma):
        db = fresh_db(schema, FIG1_ROWS)
        detector = IncrementalDetector(db, paper_sigma)
        stats = detector.state_stats()
        assert stats["initialized"] == 0
        assert stats["aux_groups"] == 0
        db.close()
