"""The synthetic dataset generator of the experimental study (Section VI).

The paper generated datasets D over an extension of the ``cust`` relation,
parameterised by

* ``|D|`` — the number of tuples (10k to 100k in the scalability sweeps), and
* ``noise%`` — the percentage of tuples modified "in attributes in the
  right-hand side of some eCFDs from a correct to an incorrect value"
  (0% to 9%).

:class:`DatasetGenerator` reproduces that process over the synthetic
geography and item catalogues:

1. a *clean* tuple is drawn by picking a city (its area code and one of its
   zip codes follow), a customer name/phone/street, and a catalogue item
   (its type, title and in-band price follow) — by construction a clean
   dataset satisfies the whole :func:`repro.datagen.workload.paper_workload`;
2. a deterministic ``noise%`` fraction of tuples is then corrupted by
   overwriting one RHS attribute (area code, zip code, item type or price)
   with an out-of-catalogue value, which is exactly the kind of error the
   workload eCFDs are designed to catch.

All randomness flows through one seeded :class:`random.Random`, so a given
``(size, noise, seed)`` triple always produces the same dataset — the
experiment harness relies on this for repeatability.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.instance import Relation
from repro.core.schema import RelationSchema, cust_ext_schema
from repro.datagen.geography import CityRecord, city_catalog
from repro.datagen.items import ItemRecord, item_catalog

__all__ = ["DatasetGenerator", "FIRST_NAMES", "STREET_NAMES"]

FIRST_NAMES = [
    "Mike", "Joe", "Jim", "Rick", "Ben", "Ian", "Ann", "Sue", "Eve", "Tom",
    "Lily", "Omar", "Nina", "Paul", "Rosa", "Sam", "Tara", "Umar", "Vera", "Walt",
]

STREET_NAMES = [
    "Tree Ave.", "Elm Str.", "Oak Ave.", "8th Ave.", "5th Ave.", "High St.",
    "Main St.", "Park Rd.", "Lake Dr.", "Hill Ln.", "Mill Rd.", "Bay St.",
]

#: Out-of-catalogue values used when corrupting each attribute.
_BAD_AREA_CODE = "000"
_BAD_ZIP = "99999"
_BAD_ITEM_TYPE = "vinyl"
_BAD_PRICE = "9999"


class DatasetGenerator:
    """Generates (optionally noisy) customer/item datasets.

    Parameters
    ----------
    seed:
        Seed of the internal pseudo-random generator.
    schema:
        Target schema; defaults to the extended customer schema.
    catalog / items:
        The geography and item catalogues to draw from; the defaults are the
        deterministic synthetic catalogues.
    """

    def __init__(
        self,
        seed: int = 0,
        schema: RelationSchema | None = None,
        catalog: Sequence[CityRecord] | None = None,
        items: Sequence[ItemRecord] | None = None,
    ):
        self.schema = schema if schema is not None else cust_ext_schema()
        self.catalog = list(catalog) if catalog is not None else city_catalog()
        self.items = list(items) if items is not None else item_catalog()
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Clean tuples
    # ------------------------------------------------------------------
    def clean_row(self) -> dict[str, str]:
        """One clean tuple (satisfies the paper workload by construction)."""
        city = self.rng.choice(self.catalog)
        item = self.rng.choice(self.items)
        row = {
            "AC": self.rng.choice(city.area_codes),
            "PN": f"{self.rng.randrange(1_000_000, 9_999_999)}",
            "NM": self.rng.choice(FIRST_NAMES),
            "STR": self.rng.choice(STREET_NAMES),
            "CT": city.name,
            "ZIP": self.rng.choice(city.zip_codes),
            "ITEM_TYPE": item.item_type,
            "ITEM_TITLE": item.title,
            "PRICE": item.price,
        }
        return {a: row[a] for a in self.schema.attribute_names if a in row}

    def clean_rows(self, count: int) -> list[dict[str, str]]:
        """``count`` clean tuples."""
        return [self.clean_row() for _ in range(count)]

    # ------------------------------------------------------------------
    # Noise injection
    # ------------------------------------------------------------------
    def corrupt_row(self, row: dict[str, str]) -> dict[str, str]:
        """Overwrite one RHS attribute of ``row`` with an incorrect value."""
        corrupted = dict(row)
        choice = self.rng.randrange(4)
        if choice == 0 and "AC" in corrupted:
            corrupted["AC"] = _BAD_AREA_CODE
        elif choice == 1 and "ZIP" in corrupted:
            corrupted["ZIP"] = _BAD_ZIP
        elif choice == 2 and "ITEM_TYPE" in corrupted:
            corrupted["ITEM_TYPE"] = _BAD_ITEM_TYPE
        elif "PRICE" in corrupted:
            corrupted["PRICE"] = _BAD_PRICE
        else:  # pragma: no cover - only reachable with unusual schemas
            corrupted[self.schema.attribute_names[0]] = _BAD_AREA_CODE
        return corrupted

    # ------------------------------------------------------------------
    # Dataset assembly
    # ------------------------------------------------------------------
    def generate_rows(self, size: int, noise_percent: float = 0.0) -> list[dict[str, str]]:
        """``size`` tuples of which ``noise_percent`` % are corrupted.

        The corrupted positions are chosen uniformly without replacement, so
        the realised noise rate matches the requested one exactly (up to
        rounding), mirroring the paper's controlled error rate.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if not 0.0 <= noise_percent <= 100.0:
            raise ValueError("noise_percent must lie in [0, 100]")
        rows = self.clean_rows(size)
        dirty_count = int(round(size * noise_percent / 100.0))
        dirty_positions = self.rng.sample(range(size), dirty_count) if dirty_count else []
        for position in dirty_positions:
            rows[position] = self.corrupt_row(rows[position])
        return rows

    def generate(self, size: int, noise_percent: float = 0.0) -> Relation:
        """Like :meth:`generate_rows` but materialised as an in-memory relation."""
        return Relation(self.schema, self.generate_rows(size, noise_percent))
