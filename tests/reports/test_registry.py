"""The figure registry: resolution, grouping and ``--only`` selection."""

import pytest

from repro.reports import (
    UnknownFigureError,
    available_figures,
    figure_groups,
    resolve_figure,
    select_figures,
)
from repro.reports.registry import register_figure


def test_registry_is_populated_and_name_sorted():
    figures = available_figures()
    assert len(figures) >= 15
    assert list(figures) == sorted(figures)
    for name, spec in figures.items():
        assert spec.name == name
        assert spec.title
        assert callable(spec.generator)


def test_every_group_is_represented():
    assert set(figure_groups()) == {"paper", "ablation", "growth", "trajectory"}


def test_resolve_known_figure():
    spec = resolve_figure("fig8")
    assert spec.group == "growth"


def test_resolve_unknown_figure_lists_the_registry():
    with pytest.raises(UnknownFigureError) as excinfo:
        resolve_figure("fig99")
    message = str(excinfo.value)
    assert "fig99" in message
    assert "fig8" in message  # the error teaches the valid names


def test_select_all_by_default():
    assert {spec.name for spec in select_figures(None)} == set(available_figures())


def test_select_by_group():
    selected = select_figures(["growth"])
    assert {spec.name for spec in selected} == {"fig8", "fig9", "fig10", "fig11", "fig13"}


def test_select_by_name_and_group_combined():
    selected = select_figures(["fig5a", "trajectory"])
    assert {spec.name for spec in selected} == {"fig5a", "perf-trajectory"}


def test_select_unknown_token_raises_instead_of_selecting_nothing():
    with pytest.raises(UnknownFigureError) as excinfo:
        select_figures(["growht"])  # typo
    assert "growht" in str(excinfo.value)


def test_duplicate_registration_is_an_error():
    available_figures()  # make sure the built-ins are registered
    with pytest.raises(ValueError):
        register_figure("fig8", "growth", "duplicate")(lambda ctx: [])
