"""Unit tests for repro.core.schema."""

import pytest

from repro.core.schema import (
    Attribute,
    Domain,
    RelationSchema,
    cust_ext_schema,
    cust_schema,
)
from repro.exceptions import DomainError, SchemaError


class TestDomain:
    def test_infinite_domain_contains_any_string(self):
        domain = Domain("string")
        assert "anything" in domain
        assert 42 in domain
        assert not domain.is_finite
        assert domain.size() is None

    def test_finite_domain_membership(self):
        domain = Domain("bool", frozenset(["T", "F"]))
        assert "T" in domain
        assert "F" in domain
        assert "maybe" not in domain
        assert domain.is_finite
        assert domain.size() == 2

    def test_finite_domain_requires_two_values(self):
        with pytest.raises(DomainError):
            Domain("unary", frozenset(["only"]))

    def test_fresh_value_avoids_exclusions_infinite(self):
        domain = Domain("string")
        fresh = domain.fresh_value(exclude=["_fresh_0", "_fresh_1"])
        assert fresh not in {"_fresh_0", "_fresh_1"}
        assert fresh in domain

    def test_fresh_value_finite_domain_exhausted(self):
        domain = Domain("bool", frozenset(["T", "F"]))
        assert domain.fresh_value(exclude=["T", "F"]) is None
        assert domain.fresh_value(exclude=["T"]) == "F"

    def test_sample_deterministic(self):
        domain = Domain("abc", frozenset(["c", "a", "b"]))
        assert domain.sample(2) == ["a", "b"]
        assert Domain("string").sample(3) == ["_v0", "_v1", "_v2"]


class TestAttribute:
    def test_equality_and_hash_by_name(self):
        a1 = Attribute("CT")
        a2 = Attribute("CT", Domain("other"))
        assert a1 == a2
        assert hash(a1) == hash(a2)

    def test_invalid_names_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("bad name")


class TestRelationSchema:
    def test_basic_lookup(self):
        schema = cust_schema()
        assert schema.name == "cust"
        assert schema.attribute_names == ("AC", "PN", "NM", "STR", "CT", "ZIP")
        assert schema.attribute("CT").name == "CT"
        assert "CT" in schema
        assert "XX" not in schema
        assert schema.index_of("CT") == 4
        assert len(schema) == 6

    def test_unknown_attribute_raises(self):
        schema = cust_schema()
        with pytest.raises(SchemaError):
            schema.attribute("NOPE")
        with pytest.raises(SchemaError):
            schema.index_of("NOPE")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ["A", "B", "A"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [])

    def test_check_attributes_validates_and_preserves_order(self):
        schema = cust_schema()
        assert schema.check_attributes(["CT", "AC"]) == ["CT", "AC"]
        with pytest.raises(SchemaError):
            schema.check_attributes(["CT", "NOPE"])

    def test_check_value_against_finite_domain(self):
        schema = RelationSchema("r", [Attribute("A", Domain("bool", frozenset(["T", "F"])))])
        assert schema.check_value("A", "T") == "T"
        with pytest.raises(DomainError):
            schema.check_value("A", "Z")

    def test_equality(self):
        assert cust_schema() == cust_schema()
        assert cust_schema() != cust_ext_schema()

    def test_cust_ext_extends_cust(self):
        base = set(cust_schema().attribute_names)
        ext = set(cust_ext_schema().attribute_names)
        assert base <= ext
        assert {"ITEM_TYPE", "ITEM_TITLE", "PRICE"} <= ext

    def test_string_attributes_promoted(self):
        schema = RelationSchema("r", ["A", Attribute("B")])
        assert all(isinstance(a, Attribute) for a in schema.attributes)
